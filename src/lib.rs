#![warn(missing_docs)]
//! # tcf — Extended PRAM-NUMA model of computation for TCF programming
//!
//! Umbrella crate re-exporting the whole workspace under one name. See the
//! README for an architecture overview, DESIGN.md for the system inventory,
//! and EXPERIMENTS.md for the reproduction results.
//!
//! * [`isa`] — instruction set, assembler, disassembler, binary encoding.
//! * [`mem`] — shared-memory modules, local memories, multioperations.
//! * [`net`] — distance-aware interconnection network.
//! * [`machine`] — cycle-level CESM pipeline with TCF storage buffer.
//! * [`pram`] — the original PRAM-NUMA model (baseline).
//! * [`core`] — the extended model: thick control flows and its six
//!   execution variants.
//! * [`lang`] — the tce language: compiler and runtime for TCF programs.

pub use tcf_core as core;
pub use tcf_isa as isa;
pub use tcf_lang as lang;
pub use tcf_machine as machine;
pub use tcf_mem as mem;
pub use tcf_net as net;
pub use tcf_pram as pram;
