#!/usr/bin/env python3
"""Unit tests for the bench regression gate itself (tools/bench_gate.py).

The gate guards CI; these tests guard the gate — in particular that a
workload key silently disappearing from a fresh run hard-fails instead of
being skipped, and that each per-variant scaling pair is actually
enforced.

Run: python3 tools/test_bench_gate.py
"""

import copy
import unittest

import bench_gate
from bench_gate import GateFailure, VARIANT_SCALING, run_gate

BASE_WORKLOADS = [
    "thick_pram_flow",
    "thin_numa_flow",
    "mixed_multitasking",
    "broadcast_stride_sweep",
    "lane_id_reduction",
    "branchy_divergence",
    "obs_overhead_off",
    "obs_overhead_record",
    "obs_overhead_stream",
]


def entry(steps=1_000_000.0, instrs=2_000_000.0):
    return {
        "steps": 100,
        "instrs": 200,
        "elapsed_sec": 0.001,
        "steps_per_sec": steps,
        "instrs_per_sec": instrs,
    }


def healthy_doc():
    """A doc that passes every gate when compared against itself."""
    workloads = {name: entry() for name in BASE_WORKLOADS}
    # The compressed path must beat branchy_divergence >= 10x on
    # instrs/sec.
    workloads["branchy_divergence"] = entry(steps=1_000_000.0, instrs=100_000.0)
    for base, scaled, _metric in VARIANT_SCALING:
        workloads[base] = entry()
        workloads[scaled] = entry()
    return {"schema": "tcf-bench-hotpath/v1", "workloads": workloads}


class GateTests(unittest.TestCase):
    def test_healthy_doc_passes(self):
        doc = healthy_doc()
        lines = run_gate(doc, copy.deepcopy(doc))
        self.assertTrue(any("ok" not in l for l in lines))  # report emitted
        self.assertTrue(any("divergent_spmd_100x" in l for l in lines))

    def test_bad_schema_fails(self):
        doc = healthy_doc()
        bad = copy.deepcopy(doc)
        bad["schema"] = "tcf-bench-hotpath/v0"
        with self.assertRaisesRegex(GateFailure, "schema"):
            run_gate(bad, doc)

    def test_dropped_workload_key_hard_fails(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        del fresh["workloads"]["divergent_balanced_100x"]
        with self.assertRaisesRegex(GateFailure, "divergent_balanced_100x"):
            run_gate(fresh, committed)

    def test_new_fresh_workload_is_allowed(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        fresh["workloads"]["brand_new_probe"] = entry()
        run_gate(fresh, committed)  # no reference yet: measured, not gated

    def test_regression_beyond_hard_gate_fails(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        fresh["workloads"]["thin_numa_flow"] = entry(
            steps=500_000.0, instrs=1_000_000.0
        )  # 0.5x < 0.65 hard gate
        with self.assertRaisesRegex(GateFailure, "35% hard gate"):
            run_gate(fresh, committed)

    def test_warning_band_regression_passes(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        fresh["workloads"]["thin_numa_flow"] = entry(
            steps=750_000.0, instrs=1_500_000.0
        )  # 0.75x: warn, don't fail
        lines = run_gate(fresh, committed)
        self.assertTrue(any("::warning" in l for l in lines))

    def test_each_variant_scaling_pair_is_enforced(self):
        for base, scaled, metric in VARIANT_SCALING:
            # Degrade the committed reference identically so the
            # fresh-vs-committed regression gate stays quiet and the
            # flatness gate is what trips.
            committed = healthy_doc()
            committed["workloads"][scaled][metric] = (
                committed["workloads"][base][metric] * 0.4
            )
            fresh = copy.deepcopy(committed)
            with self.assertRaisesRegex(GateFailure, "not flat in thickness"):
                run_gate(fresh, committed)

    def test_obs_overhead_budget_enforced(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        fresh["workloads"]["obs_overhead_off"] = entry(
            steps=900_000.0, instrs=1_800_000.0
        )  # 0.9x of thick_pram_flow < the 5% budget
        with self.assertRaisesRegex(GateFailure, "overhead exceeds 5%"):
            run_gate(fresh, committed)

    def test_nonpositive_rate_fails(self):
        committed = healthy_doc()
        fresh = copy.deepcopy(committed)
        fresh["workloads"]["thin_numa_flow"] = entry(steps=0.0)
        with self.assertRaisesRegex(GateFailure, "non-positive"):
            run_gate(fresh, committed)


if __name__ == "__main__":
    unittest.main()
