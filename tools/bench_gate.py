#!/usr/bin/env python3
"""Hot-path bench regression gate (CI `bench-smoke` legs).

Compares a fresh `repro bench-json` run against the committed
`BENCH_hotpath.json` reference on both steps/sec and instrs/sec for every
workload, and enforces the observability overhead budgets on the fresh
run alone (docs/OBSERVABILITY.md "Measured overhead"):

* a drop of more than 20% below the committed rate prints a ::warning;
* more than 35% below on either metric FAILS the job;
* disabled sinks (`obs_overhead_off`) must stay within 5% of the plain
  hot path (`thick_pram_flow`);
* live streaming (`obs_overhead_stream`) must stay within 5x of disabled
  sinks — the batched-drain + run-compressed wire budget;
* `divergent_compressed_100x` must hold at least half the steps/sec of
  `divergent_compressed` — per-step cost of a divergent-but-compressed
  flow stays flat in thickness (the lane-mask scaling gate).

Usage: bench_gate.py FRESH_JSON [COMMITTED_JSON]

Both bench-smoke legs (portable codegen and `-C target-cpu=native`) run
this same gate: rates are compared fresh-vs-committed per leg, so the
committed portable reference only has to be beaten up to the gate margin,
which native codegen comfortably clears.
"""

import json
import sys


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    fresh = json.load(open(sys.argv[1]))
    assert fresh["schema"] == "tcf-bench-hotpath/v1", fresh.get("schema")
    committed_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_hotpath.json"
    committed = json.load(open(committed_path))
    missing = set(committed["workloads"]) - set(fresh["workloads"])
    assert not missing, f"workloads dropped from bench-json: {missing}"
    failed = False
    for w, entry in fresh["workloads"].items():
        ref = committed["workloads"].get(w)
        for metric in ("steps_per_sec", "instrs_per_sec"):
            assert entry[metric] > 0, (w, entry)
            if ref is None:
                continue  # new workload, no reference yet
            ratio = entry[metric] / ref[metric]
            line = (
                f"{w} {metric}: {entry[metric]:.0f} "
                f"vs committed {ref[metric]:.0f} ({ratio:.2f}x)"
            )
            if ratio < 0.65:
                print(f"::error title=bench regression::{line}")
                failed = True
            elif ratio < 0.8:
                print(f"::warning title=bench regression::{line}")
            else:
                print(line)
    if failed:
        sys.exit("bench regression beyond the 35% hard gate")

    # Observability budgets: every rate comes from the same fresh run, so
    # machine speed cancels out of the ratios.
    base = fresh["workloads"]["thick_pram_flow"]["steps_per_sec"]
    off = fresh["workloads"]["obs_overhead_off"]["steps_per_sec"]
    ratio = off / base
    line = (
        f"obs_overhead_off: {off:.0f} steps/s vs thick_pram_flow "
        f"{base:.0f} ({ratio:.2f}x)"
    )
    if ratio < 0.95:
        print(f"::error title=obs overhead budget::{line}")
        sys.exit("disabled-sink observability overhead exceeds 5%")
    print(line)

    stream = fresh["workloads"]["obs_overhead_stream"]["steps_per_sec"]
    ratio = off / stream
    line = (
        f"obs_overhead_stream: {stream:.0f} steps/s vs obs_overhead_off "
        f"{off:.0f} ({ratio:.2f}x slower)"
    )
    if ratio > 5.0:
        print(f"::error title=stream overhead budget::{line}")
        sys.exit("live-stream observability overhead exceeds 5x disabled sinks")
    print(line)

    # Lane-mask scaling: a divergent-but-compressed step costs O(#mask
    # runs), not O(thickness), so the same workload at 100x thickness must
    # sustain a comparable step rate (docs/PERFORMANCE.md "Lane masks").
    div = fresh["workloads"]["divergent_compressed"]["steps_per_sec"]
    div100 = fresh["workloads"]["divergent_compressed_100x"]["steps_per_sec"]
    ratio = div100 / div
    line = (
        f"divergent_compressed_100x: {div100:.0f} steps/s vs "
        f"divergent_compressed {div:.0f} at 100x thickness ({ratio:.2f}x)"
    )
    if ratio < 0.5:
        print(f"::error title=lane-mask scaling::{line}")
        sys.exit("divergent_compressed step cost is not flat in thickness")
    print(line)

    # And the absolute win over the per-lane fallback: thickness-weighted
    # instruction throughput (lane-ops/sec) of the masked compressed path
    # must beat the SoA per-lane path by >= 10x even though it runs at
    # ~1000x the thickness.
    lanes = fresh["workloads"]["divergent_compressed"]["instrs_per_sec"]
    perlane = fresh["workloads"]["branchy_divergence"]["instrs_per_sec"]
    ratio = lanes / perlane
    line = (
        f"divergent_compressed lane throughput: {lanes:.3g} lane-instrs/s vs "
        f"branchy_divergence {perlane:.3g} ({ratio:.0f}x)"
    )
    if ratio < 10.0:
        print(f"::error title=lane-mask throughput::{line}")
        sys.exit("masked compressed path is not >= 10x the per-lane path")
    print(line)
    print(f"{committed_path} ok")


if __name__ == "__main__":
    main()
