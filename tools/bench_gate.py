#!/usr/bin/env python3
"""Hot-path bench regression gate (CI `bench-smoke` legs).

Compares a fresh `repro bench-json` run against the committed
`BENCH_hotpath.json` reference on both steps/sec and instrs/sec for every
workload, and enforces the observability overhead budgets on the fresh
run alone (docs/OBSERVABILITY.md "Measured overhead"):

* a committed workload key missing from the fresh run FAILS the job —
  a probe that silently disappears would otherwise dodge every gate;
* a drop of more than 20% below the committed rate prints a ::warning;
* more than 35% below on either metric FAILS the job;
* disabled sinks (`obs_overhead_off`) must stay within 5% of the plain
  hot path (`thick_pram_flow`);
* live streaming (`obs_overhead_stream`) must stay within 5x of disabled
  sinks — the batched-drain + run-compressed wire budget;
* every `divergent_*_100x` leg must hold at least half the rate of its
  baseline leg — per-step (or per-instruction, for the SPMD-shaped
  variants) cost of a divergent-but-compressed flow stays flat in
  thickness on all six execution variants (docs/PERFORMANCE.md
  "Compression across variants").

Usage: bench_gate.py FRESH_JSON [COMMITTED_JSON]

Both bench-smoke legs (portable codegen and `-C target-cpu=native`) run
this same gate: rates are compared fresh-vs-committed per leg, so the
committed portable reference only has to be beaten up to the gate margin,
which native codegen comfortably clears.

Unit-tested by tools/test_bench_gate.py (run in the CI `tests` job).
"""

import json
import sys


class GateFailure(Exception):
    """A hard gate violation; the message is the exit diagnostic."""


# The per-variant thickness-scaling pairs: (baseline leg, 100x leg,
# compared metric). The thick-instruction variants are compared on step
# rate (same per-step work at both sizes if compression holds); the
# SPMD-shaped variants materialize one unit flow per thread, so their
# honest flat metric is per-instruction throughput.
VARIANT_SCALING = [
    ("divergent_compressed", "divergent_compressed_100x", "steps_per_sec"),
    ("divergent_balanced", "divergent_balanced_100x", "steps_per_sec"),
    ("divergent_async", "divergent_async_100x", "steps_per_sec"),
    ("divergent_fixed", "divergent_fixed_100x", "steps_per_sec"),
    ("divergent_numa", "divergent_numa_100x", "instrs_per_sec"),
    ("divergent_spmd", "divergent_spmd_100x", "instrs_per_sec"),
]


def run_gate(fresh: dict, committed: dict) -> list:
    """Applies every gate; returns the report lines, raises GateFailure on
    the first hard violation."""
    lines = []
    if fresh.get("schema") != "tcf-bench-hotpath/v1":
        raise GateFailure(f"unexpected fresh schema: {fresh.get('schema')!r}")

    # Key-drop gate: every committed workload must still be measured.
    missing = sorted(set(committed["workloads"]) - set(fresh["workloads"]))
    if missing:
        raise GateFailure(
            "committed workloads missing from the fresh bench-json run: "
            + ", ".join(missing)
            + " — a dropped probe dodges every regression gate; if the "
            "removal is intentional, regenerate BENCH_hotpath.json"
        )

    failed = False
    for w, entry in fresh["workloads"].items():
        ref = committed["workloads"].get(w)
        for metric in ("steps_per_sec", "instrs_per_sec"):
            if entry[metric] <= 0:
                raise GateFailure(f"{w} reports non-positive {metric}")
            if ref is None:
                continue  # new workload, no reference yet
            ratio = entry[metric] / ref[metric]
            line = (
                f"{w} {metric}: {entry[metric]:.0f} "
                f"vs committed {ref[metric]:.0f} ({ratio:.2f}x)"
            )
            if ratio < 0.65:
                lines.append(f"::error title=bench regression::{line}")
                failed = True
            elif ratio < 0.8:
                lines.append(f"::warning title=bench regression::{line}")
            else:
                lines.append(line)
    if failed:
        raise GateFailure(
            "bench regression beyond the 35% hard gate\n" + "\n".join(lines)
        )

    # Observability budgets: every rate comes from the same fresh run, so
    # machine speed cancels out of the ratios.
    base = fresh["workloads"]["thick_pram_flow"]["steps_per_sec"]
    off = fresh["workloads"]["obs_overhead_off"]["steps_per_sec"]
    ratio = off / base
    line = (
        f"obs_overhead_off: {off:.0f} steps/s vs thick_pram_flow "
        f"{base:.0f} ({ratio:.2f}x)"
    )
    if ratio < 0.95:
        raise GateFailure(
            f"disabled-sink observability overhead exceeds 5%: {line}"
        )
    lines.append(line)

    stream = fresh["workloads"]["obs_overhead_stream"]["steps_per_sec"]
    ratio = off / stream
    line = (
        f"obs_overhead_stream: {stream:.0f} steps/s vs obs_overhead_off "
        f"{off:.0f} ({ratio:.2f}x slower)"
    )
    if ratio > 5.0:
        raise GateFailure(
            f"live-stream observability overhead exceeds 5x disabled sinks: {line}"
        )
    lines.append(line)

    # Compression across variants: a divergent-but-compressed step costs
    # O(#mask runs) / O(bound) / O(P*T_p), not O(thickness), so the same
    # recurrence at 100x the size must sustain a comparable rate on every
    # execution variant (docs/PERFORMANCE.md "Compression across
    # variants").
    for base_key, scaled_key, metric in VARIANT_SCALING:
        b = fresh["workloads"][base_key][metric]
        s = fresh["workloads"][scaled_key][metric]
        ratio = s / b
        line = (
            f"{scaled_key}: {s:.0f} {metric} vs "
            f"{base_key} {b:.0f} at 100x size ({ratio:.2f}x)"
        )
        if ratio < 0.5:
            raise GateFailure(
                f"{base_key} cost is not flat in thickness: {line}"
            )
        lines.append(line)

    # And the absolute win over the per-lane fallback: thickness-weighted
    # instruction throughput (lane-ops/sec) of the masked compressed path
    # must beat the SoA per-lane path by >= 10x even though it runs at
    # ~1000x the thickness.
    lanes = fresh["workloads"]["divergent_compressed"]["instrs_per_sec"]
    perlane = fresh["workloads"]["branchy_divergence"]["instrs_per_sec"]
    ratio = lanes / perlane
    line = (
        f"divergent_compressed lane throughput: {lanes:.3g} lane-instrs/s vs "
        f"branchy_divergence {perlane:.3g} ({ratio:.0f}x)"
    )
    if ratio < 10.0:
        raise GateFailure(
            f"masked compressed path is not >= 10x the per-lane path: {line}"
        )
    lines.append(line)
    return lines


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    fresh = json.load(open(sys.argv[1]))
    committed_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_hotpath.json"
    committed = json.load(open(committed_path))
    try:
        lines = run_gate(fresh, committed)
    except GateFailure as e:
        print(f"::error title=bench gate::{e}")
        sys.exit(str(e))
    print("\n".join(lines))
    print(f"{committed_path} ok")


if __name__ == "__main__":
    main()
