//! Differential conformance suite for the parallel execution engine: for
//! every variant, every paper workload and randomly generated programs,
//! `par:<N>` execution must be *bit-identical* to sequential execution at
//! every worker count — the run summary (steps, cycles, machine, memory
//! and network statistics), the final shared and local memories, the
//! metrics registry and the Chrome trace, and even the error on faulting
//! programs (the parallel engine rolls later fragments back so faults
//! leave the exact partial state sequential execution leaves).
//!
//! This is the contract `docs/PARALLEL.md` argues for; this suite enforces
//! it observable-by-observable.

use proptest::prelude::*;

use tcf::core::{Engine, TcfError, TcfMachine, Variant};
use tcf::isa::instr::{Instr, MemSpace, MultiKind, Operand};
use tcf::isa::op::AluOp;
use tcf::isa::program::Program;
use tcf::isa::reg::{r, Reg, SpecialReg};
use tcf::isa::word::Word;
use tcf::machine::MachineConfig;
use tcf::pram::RunSummary;
use tcf_bench::workloads;
use tcf_obs::chrome::chrome_trace;
use tcf_obs::json::metrics_json;

const WORKERS: &[usize] = &[1, 2, 4, 7];
const LOCAL_WINDOW: usize = 128;
const SHARED_WINDOW: usize = 4096;

/// Everything externally observable about one run.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    outcome: Result<RunSummary, TcfError>,
    shared: Vec<Word>,
    locals: Vec<Vec<Word>>,
    metrics: String,
    trace: String,
}

fn observe(
    variant: Variant,
    program: &Program,
    engine: Engine,
    init: impl Fn(&mut TcfMachine),
) -> Observed {
    let config = MachineConfig::small();
    let groups = config.groups;
    let mut m = TcfMachine::new(config, variant, program.clone());
    m.set_engine(engine);
    m.set_tracing(true);
    m.set_observing(true);
    init(&mut m);
    let outcome = m.run(50_000);
    let locals = (0..groups)
        .map(|g| {
            (0..LOCAL_WINDOW)
                .map(|a| m.peek_local(g, a).unwrap())
                .collect()
        })
        .collect();
    Observed {
        outcome,
        shared: m.peek_range(0, SHARED_WINDOW).unwrap(),
        locals,
        metrics: metrics_json(&m.metrics()),
        trace: chrome_trace(&m.trace().events(), &m.obs().events()),
    }
}

fn all_variants() -> Vec<Variant> {
    vec![
        Variant::SingleInstruction,
        Variant::Balanced { bound: 3 },
        Variant::MultiInstruction,
        Variant::SingleOperation,
        Variant::ConfigurableSingleOperation,
        Variant::FixedThickness { width: 16 },
    ]
}

/// Runs `program` under every variant sequentially and at every worker
/// count, asserting bit-identical observables. A variant that faults on
/// the program (e.g. `setthick` on a thread-based variant) must fault
/// identically under the parallel engine, so faults are compared, not
/// skipped.
fn assert_engine_transparent(name: &str, program: &Program, init: impl Fn(&mut TcfMachine)) {
    for variant in all_variants() {
        let reference = observe(variant, program, Engine::Sequential, &init);
        for &w in WORKERS {
            let par = observe(variant, program, Engine::Parallel { workers: w }, &init);
            assert_eq!(
                reference.outcome, par.outcome,
                "{name} / {variant:?} / par:{w}: run outcome diverged"
            );
            assert_eq!(
                reference.shared, par.shared,
                "{name} / {variant:?} / par:{w}: shared memory diverged"
            );
            assert_eq!(
                reference.locals, par.locals,
                "{name} / {variant:?} / par:{w}: local memories diverged"
            );
            assert_eq!(
                reference.metrics, par.metrics,
                "{name} / {variant:?} / par:{w}: metrics diverged"
            );
            assert_eq!(
                reference.trace, par.trace,
                "{name} / {variant:?} / par:{w}: trace diverged"
            );
        }
    }
}

#[test]
fn paper_workloads_match_across_engines() {
    let cases: Vec<(&str, Program, usize)> = vec![
        ("tcf_vector_add", workloads::tcf_vector_add(96), 96),
        ("loop_vector_add", workloads::loop_vector_add(64), 64),
        ("guard_vector_add", workloads::guard_vector_add(64), 64),
        ("tcf_scan", workloads::tcf_scan(64), 64),
        ("tcf_prefix", workloads::tcf_prefix(48), 48),
        ("masked_two_way", workloads::masked_two_way(64), 64),
        ("tcf_numa_seq", workloads::tcf_numa_seq(10, 4), 0),
    ];
    for (name, program, size) in cases {
        assert_engine_transparent(name, &program, |m| {
            if size > 0 {
                workloads::init_arrays_tcf(m, size);
            }
        });
    }
}

#[test]
fn engine_env_spec_selects_parallel() {
    // Machines pick the engine up from TCF_ENGINE at construction (other
    // tests constructing machines concurrently just run parallel — which
    // is bit-identical, so harmless).
    std::env::set_var("TCF_ENGINE", "par:3");
    let m = TcfMachine::new(
        MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_vector_add(8),
    );
    std::env::remove_var("TCF_ENGINE");
    assert_eq!(m.engine(), Engine::Parallel { workers: 3 });
    let m = TcfMachine::new(
        MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_vector_add(8),
    );
    assert_eq!(m.engine(), Engine::Sequential);
}

#[test]
fn faulting_program_leaves_identical_partial_state() {
    // A thick store that walks out of the shared window mid-instruction:
    // some lanes' register writes land before the fault. The parallel
    // engine must reproduce the exact partial state, not just the error.
    let program = Program::new(
        vec![
            Instr::SetThick {
                src: Operand::Imm(50),
            },
            Instr::Mfs {
                rd: r(1),
                sr: SpecialReg::Tid,
            },
            Instr::Alu {
                op: AluOp::Mul,
                rd: r(2),
                ra: r(1),
                rb: Operand::Imm(40_000),
            },
            // addr = tid * 40_000: lanes 0 and 1 are fine, lane 2 is out
            // of the 1<<16-word shared space.
            Instr::St {
                rs: r(1),
                base: r(2),
                off: 0,
                space: MemSpace::Shared,
            },
            Instr::Halt,
        ],
        Default::default(),
        vec![],
    )
    .unwrap();
    assert_engine_transparent("mid_instruction_fault", &program, |_| {});

    // Same for a local-memory fault (local space is 1<<12 words).
    let program = Program::new(
        vec![
            Instr::SetThick {
                src: Operand::Imm(50),
            },
            Instr::Mfs {
                rd: r(1),
                sr: SpecialReg::Tid,
            },
            Instr::Alu {
                op: AluOp::Mul,
                rd: r(2),
                ra: r(1),
                rb: Operand::Imm(300),
            },
            Instr::St {
                rs: r(1),
                base: r(2),
                off: 0,
                space: MemSpace::Local,
            },
            Instr::Halt,
        ],
        Default::default(),
        vec![],
    )
    .unwrap();
    assert_engine_transparent("local_fault", &program, |_| {});
}

// ---------------------------------------------------------------------------
// Random-program differential (proptest)
// ---------------------------------------------------------------------------

/// Generator of well-formed TCF program segments, covering the thick
/// paths the engine shards: per-lane ALU/select traffic, shared and
/// *local* loads and stores, multioperations and multiprefixes, and
/// thickness changes that re-fragment the flow.
#[derive(Debug, Clone)]
enum Segment {
    SetThick(usize),
    UniformAlu(AluOp, u8, u8, Word),
    ThickInit(u8),
    ThickStore {
        base: usize,
        src: u8,
    },
    ThickLoad {
        base: usize,
        dst: u8,
    },
    LocalStore {
        base: usize,
        src: u8,
    },
    LocalLoad {
        base: usize,
        dst: u8,
    },
    Multi {
        kind: MultiKind,
        addr: usize,
        src: u8,
    },
    Prefix {
        kind: MultiKind,
        addr: usize,
        dst: u8,
        src: u8,
    },
}

fn data_reg() -> impl Strategy<Value = u8> {
    1u8..7
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    let base = 0usize..(SHARED_WINDOW - 256);
    let local_base = 0usize..((1 << 12) - 256);
    prop_oneof![
        (1usize..80).prop_map(Segment::SetThick),
        (
            prop::sample::select(
                &[
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Mul,
                    AluOp::Xor,
                    AluOp::Min,
                    AluOp::Max
                ][..]
            ),
            data_reg(),
            data_reg(),
            -50i64..50
        )
            .prop_map(|(op, rd, ra, imm)| Segment::UniformAlu(op, rd, ra, imm)),
        data_reg().prop_map(Segment::ThickInit),
        (base.clone(), data_reg()).prop_map(|(base, src)| Segment::ThickStore { base, src }),
        (base.clone(), data_reg()).prop_map(|(base, dst)| Segment::ThickLoad { base, dst }),
        (local_base.clone(), data_reg()).prop_map(|(base, src)| Segment::LocalStore { base, src }),
        (local_base, data_reg()).prop_map(|(base, dst)| Segment::LocalLoad { base, dst }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base.clone(),
            data_reg()
        )
            .prop_map(|(kind, addr, src)| Segment::Multi { kind, addr, src }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base,
            data_reg(),
            data_reg()
        )
            .prop_map(|(kind, addr, dst, src)| Segment::Prefix {
                kind,
                addr,
                dst,
                src
            }),
    ]
}

/// `addr_reg = (tid & 255) + 0`, the bounded per-thread address.
fn thick_addr(instrs: &mut Vec<Instr>, addr: Reg) {
    instrs.push(Instr::Mfs {
        rd: addr,
        sr: SpecialReg::Tid,
    });
    instrs.push(Instr::Alu {
        op: AluOp::And,
        rd: addr,
        ra: addr,
        rb: Operand::Imm(255),
    });
}

fn lower(segments: &[Segment]) -> Program {
    let addr = r(7);
    let mut instrs: Vec<Instr> = Vec::new();
    for seg in segments {
        match *seg {
            Segment::SetThick(k) => instrs.push(Instr::SetThick {
                src: Operand::Imm(k as Word),
            }),
            Segment::UniformAlu(op, rd, ra, imm) => instrs.push(Instr::Alu {
                op,
                rd: r(rd),
                ra: r(ra),
                rb: Operand::Imm(imm),
            }),
            Segment::ThickInit(rd) => {
                instrs.push(Instr::Mfs {
                    rd: r(rd),
                    sr: SpecialReg::Tid,
                });
                instrs.push(Instr::Alu {
                    op: AluOp::Mul,
                    rd: r(rd),
                    ra: r(rd),
                    rb: Operand::Imm(3),
                });
            }
            Segment::ThickStore { base, src } => {
                thick_addr(&mut instrs, addr);
                instrs.push(Instr::St {
                    rs: r(src),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::ThickLoad { base, dst } => {
                thick_addr(&mut instrs, addr);
                instrs.push(Instr::Ld {
                    rd: r(dst),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::LocalStore { base, src } => {
                thick_addr(&mut instrs, addr);
                instrs.push(Instr::St {
                    rs: r(src),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Local,
                });
            }
            Segment::LocalLoad { base, dst } => {
                thick_addr(&mut instrs, addr);
                instrs.push(Instr::Ld {
                    rd: r(dst),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Local,
                });
            }
            Segment::Multi { kind, addr: a, src } => instrs.push(Instr::MultiOp {
                kind,
                base: Reg::ZERO,
                off: a as Word,
                rs: r(src),
            }),
            Segment::Prefix {
                kind,
                addr: a,
                dst,
                src,
            } => instrs.push(Instr::MultiPrefix {
                kind,
                rd: r(dst),
                base: Reg::ZERO,
                off: a as Word,
                rs: r(src),
            }),
        }
    }
    instrs.push(Instr::Halt);
    Program::new(instrs, Default::default(), vec![]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random thick programs observe identical machines under every
    /// engine. The thick-flow variants are swept here — `Balanced` across
    /// its boundary bounds (1 = one operation per processor per step,
    /// 64 = a whole instruction per step on the small machine), and
    /// `FixedThickness` at widths off the `LANE_CHUNK` (= 8) grid so
    /// partially filled SIMD chunks shard identically. The paper
    /// workloads test above covers all six variants per workload.
    #[test]
    fn random_programs_match_across_engines(
        segments in prop::collection::vec(arb_segment(), 1..14)
    ) {
        let program = lower(&segments);
        for variant in [
            Variant::SingleInstruction,
            Variant::Balanced { bound: 1 },
            Variant::Balanced { bound: 3 },
            Variant::Balanced { bound: 64 },
        ] {
            let reference = observe(variant, &program, Engine::Sequential, |_| {});
            for &w in &[2usize, 4] {
                let par = observe(variant, &program, Engine::Parallel { workers: w }, |_| {});
                prop_assert_eq!(&reference, &par, "{:?} diverged under par:{}", variant, w);
            }
        }
        // `FixedThickness` rejects `setthick`, so sweep it over the same
        // segment list minus thickness changes; widths 13 and 50 are not
        // multiples of LANE_CHUNK, leaving a ragged trailing chunk in
        // every per-lane kernel.
        let preset: Vec<Segment> = segments
            .iter()
            .filter(|s| !matches!(s, Segment::SetThick(_)))
            .cloned()
            .collect();
        let program = lower(&preset);
        for width in [13usize, 50] {
            let variant = Variant::FixedThickness { width };
            let reference = observe(variant, &program, Engine::Sequential, |_| {});
            for &w in &[2usize, 4] {
                let par = observe(variant, &program, Engine::Parallel { workers: w }, |_| {});
                prop_assert_eq!(&reference, &par, "{:?} diverged under par:{}", variant, w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decay-taxonomy accounting
// ---------------------------------------------------------------------------

/// Every thick-register decay is billed to exactly one taxonomy reason:
/// across a differential run the per-reason counters exported by
/// `metrics()` must sum to `thick.decay_total`, on both engines. A new
/// decay site that bumps the total without (or with a double) reason
/// attribution breaks this identity.
#[test]
fn decay_taxonomy_sums_to_total() {
    // `and` on the affine lane ids escapes the affine algebra and lands
    // per-lane on a compressed register (`lane_write`, or
    // `balanced_resume` when a bound makes the write partial); the later
    // `setthick` then decays the still-affine r3 (`setthick`).
    let program = Program::new(
        vec![
            Instr::SetThick {
                src: Operand::Imm(40),
            },
            Instr::Mfs {
                rd: r(1),
                sr: SpecialReg::Tid,
            },
            Instr::Alu {
                op: AluOp::And,
                rd: r(1),
                ra: r(1),
                rb: Operand::Imm(1),
            },
            Instr::Mfs {
                rd: r(3),
                sr: SpecialReg::Tid,
            },
            Instr::SetThick {
                src: Operand::Imm(20),
            },
            Instr::Halt,
        ],
        Default::default(),
        vec![],
    )
    .unwrap();
    const REASONS: [&str; 7] = [
        "thick.decay_setthick",
        "thick.decay_lane_write",
        "thick.decay_mem_reply",
        "thick.decay_mask_runs",
        "thick.decay_fault",
        "thick.decay_balanced_resume",
        "thick.decay_async_slice",
    ];
    for variant in [Variant::SingleInstruction, Variant::Balanced { bound: 3 }] {
        for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
            let mut m = TcfMachine::new(MachineConfig::small(), variant, program.clone());
            m.set_engine(engine);
            m.run(50_000).unwrap();
            let reg = m.metrics();
            let total = reg.counter("thick.decay_total").unwrap();
            let by_reason: u64 = REASONS
                .iter()
                .map(|k| reg.counter(k).unwrap_or_else(|| panic!("missing {k}")))
                .sum();
            assert_eq!(
                total, by_reason,
                "{variant:?} / {engine:?}: decay reasons don't sum to the total"
            );
            assert!(
                total > 0,
                "{variant:?} / {engine:?}: workload never decayed"
            );
        }
    }
}
