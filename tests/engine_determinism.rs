//! Determinism regression for the parallel engine: running the same
//! workload twice under `par:4` must produce byte-identical exported
//! artifacts — the Chrome trace JSON and the metrics JSON — not merely
//! equal final memories. Any scheduling leak (worker completion order
//! reaching a stat, an event stream, a histogram) shows up here as a
//! one-byte diff.

use tcf::core::{Engine, TcfMachine, Variant};
use tcf::machine::MachineConfig;
use tcf_bench::workloads;
use tcf_obs::chrome::chrome_trace;
use tcf_obs::json::metrics_json;
use tcf_obs::stream::{drain_ndjson, header_line, parse_stream};
use tcf_obs::StreamCursor;

fn artifacts(engine: Engine) -> (String, String) {
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_scan(96),
    );
    m.set_engine(engine);
    m.set_tracing(true);
    m.set_observing(true);
    workloads::init_arrays_tcf(&mut m, 96);
    m.run(50_000).expect("workload halts");
    (
        chrome_trace(&m.trace().events(), &m.obs().events()),
        metrics_json(&m.metrics()),
    )
}

#[test]
fn repeated_parallel_runs_export_identical_bytes() {
    let engine = Engine::Parallel { workers: 4 };
    let (trace_a, metrics_a) = artifacts(engine);
    let (trace_b, metrics_b) = artifacts(engine);
    assert_eq!(trace_a, trace_b, "Chrome trace bytes diverged across runs");
    assert_eq!(
        metrics_a, metrics_b,
        "metrics JSON bytes diverged across runs"
    );
    assert!(!trace_a.is_empty() && !metrics_a.is_empty());
}

#[test]
fn parallel_artifacts_match_sequential_bytes() {
    let (trace_seq, metrics_seq) = artifacts(Engine::Sequential);
    for workers in [1usize, 4] {
        let (trace_par, metrics_par) = artifacts(Engine::Parallel { workers });
        assert_eq!(trace_seq, trace_par, "trace diverged under par:{workers}");
        assert_eq!(
            metrics_seq, metrics_par,
            "metrics diverged under par:{workers}"
        );
    }
}

/// How the telemetry pipeline observes a run in [`observed_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Obs {
    /// Sinks disabled — the hooks early-return.
    Disabled,
    /// Recording on, exported in one batch after the run.
    Recording,
    /// Recording on plus a per-step streaming drain; the exported
    /// artifacts are rebuilt from the parsed NDJSON document.
    Streaming,
}

/// Runs the scan workload under one engine/observability pairing and
/// returns (results bytes, exported artifacts). Results — the output
/// array plus step/cycle counts — exist for every mode; artifacts only
/// when events were recorded.
fn observed_run(engine: Engine, obs: Obs) -> (Vec<i64>, Option<(String, String)>) {
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_scan(96),
    );
    m.set_engine(engine);
    if obs != Obs::Disabled {
        m.set_tracing(true);
        m.set_observing(true);
    }
    workloads::init_arrays_tcf(&mut m, 96);
    let artifacts = match obs {
        Obs::Streaming => {
            let mut cursor = StreamCursor::default();
            let mut doc = header_line();
            loop {
                let more = m.step().expect("workload halts");
                drain_ndjson(m.trace(), m.obs(), &mut cursor, &mut doc);
                if !more {
                    break;
                }
            }
            let re = parse_stream(&doc).expect("stream parses");
            Some((
                chrome_trace(&re.trace, &re.events),
                metrics_json(&tcf_obs::MetricsRegistry::replay(&re.trace, &re.events)),
            ))
        }
        Obs::Recording | Obs::Disabled => {
            m.run(50_000).expect("workload halts");
            (obs == Obs::Recording).then(|| {
                (
                    chrome_trace(&m.trace().events(), &m.obs().events()),
                    metrics_json(&tcf_obs::MetricsRegistry::replay(
                        &m.trace().events(),
                        &m.obs().events(),
                    )),
                )
            })
        }
    };
    let mut results = m.peek_range(workloads::C_BASE, 96).expect("output array");
    results.push(m.steps_executed() as i64);
    results.push(m.cycles() as i64);
    (results, artifacts)
}

/// The telemetry pipeline is a pure observer: disabled, recording and
/// streaming sinks all leave the simulation byte-identical, and the
/// streamed artifacts replay to the same bytes the batch export
/// produces — under both engines.
#[test]
fn observability_modes_never_perturb_results_or_artifacts() {
    for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
        let (res_off, none) = observed_run(engine, Obs::Disabled);
        assert!(none.is_none(), "disabled sinks recorded events");
        let (res_rec, rec) = observed_run(engine, Obs::Recording);
        let (res_str, streamed) = observed_run(engine, Obs::Streaming);
        assert_eq!(res_off, res_rec, "recording perturbed {engine:?}");
        assert_eq!(res_off, res_str, "streaming perturbed {engine:?}");
        assert_eq!(
            rec.expect("recording artifacts"),
            streamed.expect("streamed artifacts"),
            "streamed artifacts diverged from batch export under {engine:?}"
        );
    }
}
