//! Determinism regression for the parallel engine: running the same
//! workload twice under `par:4` must produce byte-identical exported
//! artifacts — the Chrome trace JSON and the metrics JSON — not merely
//! equal final memories. Any scheduling leak (worker completion order
//! reaching a stat, an event stream, a histogram) shows up here as a
//! one-byte diff.

use tcf::core::{Engine, TcfMachine, Variant};
use tcf::machine::MachineConfig;
use tcf_bench::workloads;
use tcf_obs::chrome::chrome_trace;
use tcf_obs::json::metrics_json;

fn artifacts(engine: Engine) -> (String, String) {
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::SingleInstruction,
        workloads::tcf_scan(96),
    );
    m.set_engine(engine);
    m.set_tracing(true);
    m.set_observing(true);
    workloads::init_arrays_tcf(&mut m, 96);
    m.run(50_000).expect("workload halts");
    (
        chrome_trace(&m.trace().events(), &m.obs().events()),
        metrics_json(&m.metrics()),
    )
}

#[test]
fn repeated_parallel_runs_export_identical_bytes() {
    let engine = Engine::Parallel { workers: 4 };
    let (trace_a, metrics_a) = artifacts(engine);
    let (trace_b, metrics_b) = artifacts(engine);
    assert_eq!(trace_a, trace_b, "Chrome trace bytes diverged across runs");
    assert_eq!(
        metrics_a, metrics_b,
        "metrics JSON bytes diverged across runs"
    );
    assert!(!trace_a.is_empty() && !metrics_a.is_empty());
}

#[test]
fn parallel_artifacts_match_sequential_bytes() {
    let (trace_seq, metrics_seq) = artifacts(Engine::Sequential);
    for workers in [1usize, 4] {
        let (trace_par, metrics_par) = artifacts(Engine::Parallel { workers });
        assert_eq!(trace_seq, trace_par, "trace diverged under par:{workers}");
        assert_eq!(
            metrics_seq, metrics_par,
            "metrics diverged under par:{workers}"
        );
    }
}
