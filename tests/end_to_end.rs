//! End-to-end pipeline tests spanning every crate: tce source →
//! compiler → assembler listing round trip → binary encoding round trip
//! → execution on the extended machine.

use tcf::core::{TcfMachine, Variant};
use tcf::isa::asm::assemble;
use tcf::isa::encode::{decode, encode};
use tcf::machine::MachineConfig;

const SRC: &str = "
shared int a[128] @ 1000;
shared int b[128] @ 2000;
shared int c[128] @ 3000;
shared int sum @ 64;
void main() {
    #128;
    c[.] = a[.] + b[.];
    int p = prefix(sum, MPADD, c[.]);
    parallel {
        #64: c[.] = c[.] * 2;
        #64: c[. + 64] = c[. + 64] + 1;
    }
}
";

fn run(program: tcf::isa::program::Program) -> TcfMachine {
    let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
    for i in 0..128 {
        m.poke(1000 + i, i as i64).unwrap();
        m.poke(2000 + i, 10 * i as i64).unwrap();
    }
    m.run(100_000).unwrap();
    m
}

fn check(m: &TcfMachine) {
    for i in 0..64 {
        assert_eq!(m.peek(3000 + i).unwrap(), 2 * 11 * i as i64, "low c[{i}]");
    }
    for i in 64..128 {
        assert_eq!(m.peek(3000 + i).unwrap(), 11 * i as i64 + 1, "high c[{i}]");
    }
    let total: i64 = (0..128).map(|i| 11 * i).sum();
    assert_eq!(m.peek(64).unwrap(), total);
}

#[test]
fn compiled_program_runs() {
    let program = tcf::lang::compile(SRC).unwrap();
    check(&run(program));
}

#[test]
fn listing_roundtrip_preserves_behaviour() {
    let program = tcf::lang::compile(SRC).unwrap();
    let listing = program.listing();
    let reassembled = assemble(&listing).unwrap();
    assert_eq!(program.instrs, reassembled.instrs);
    check(&run(reassembled));
}

#[test]
fn binary_roundtrip_preserves_behaviour() {
    let program = tcf::lang::compile(SRC).unwrap();
    let words = encode(&program).unwrap();
    let decoded = decode(&words).unwrap();
    assert_eq!(program.instrs, decoded.instrs);
    assert_eq!(program.entry, decoded.entry);
    check(&run(decoded));
}

#[test]
fn all_experiments_render() {
    // The full reproduction pipeline must run end to end on the small
    // machine (this is what `repro all` does).
    let config = MachineConfig::small();
    let t1 = tcf_bench::table1::report(&config);
    assert!(t1.contains("Fetches per TCF"));
    let figs = tcf_bench::figures::all(&config);
    assert!(figs.contains("Figure 13"));
    let progs = tcf_bench::progs::report(&config);
    assert!(progs.contains("P8"));
}
