//! Classic fine-grained PRAM algorithms running end-to-end on the
//! extended model — the "rich granularity-independent parallel
//! algorithmics" the paper builds on [16,17]. Every algorithm is written
//! in tce, executed on the simulator, and verified against a host
//! reference.

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

fn run_tce(variant: Variant, src: &str, init: impl FnOnce(&mut TcfMachine)) -> TcfMachine {
    let program = tcf::lang::compile(src).expect("program compiles");
    let mut m = TcfMachine::new(MachineConfig::small(), variant, program);
    init(&mut m);
    m.run(2_000_000).expect("program halts");
    m
}

/// Tree reduction in log steps: sum of n values without multioperations
/// (the pure-PRAM way), then the same via one `multi` for comparison.
#[test]
fn tree_reduction_matches_multioperation() {
    const N: usize = 128;
    let src = format!(
        "shared int a[{N}] @ 1000;
         shared int msum @ 60;
         void main() {{
             // One-step combining reduction.
             #{N};
             multi(msum, MPADD, a[.]);
             // Log-step tree reduction in place.
             int stride = {N} / 2;
             while (stride > 0) {{
                 #stride: a[.] += a[. + stride];
                 stride = stride / 2;
             }}
         }}"
    );
    let m = run_tce(Variant::SingleInstruction, &src, |m| {
        for i in 0..N {
            m.poke(1000 + i, (i * i % 97) as i64).unwrap();
        }
    });
    let expect: i64 = (0..N).map(|i| (i * i % 97) as i64).sum();
    assert_eq!(m.peek(60).unwrap(), expect, "multioperation sum");
    assert_eq!(m.peek(1000).unwrap(), expect, "tree reduction");
}

/// Wyllie-style pointer jumping (list ranking): each node's distance to
/// the end of a linked list, in O(log n) thick steps.
#[test]
fn pointer_jumping_list_ranking() {
    const N: usize = 64;
    // succ[i]: next node; the tail points to itself. rank[i]: distance to
    // the tail.
    let src = format!(
        "shared int succ[{N}] @ 1000;
         shared int rank[{N}] @ 2000;
         shared int nsucc[{N}] @ 3000;
         shared int nrank[{N}] @ 4000;
         void main() {{
             int round = 0;
             while (round < 6) {{          // log2(64) rounds
                 #{N};
                 nrank[.] = rank[.] + rank[succ[.]];
                 nsucc[.] = succ[succ[.]];
                 rank[.] = nrank[.];
                 succ[.] = nsucc[.];
                 round += 1;
             }}
         }}"
    );
    // Build a scrambled list: node order given by a permutation.
    let perm: Vec<usize> = {
        // Deterministic permutation: multiply by 5 mod 64 is a bijection.
        (0..N).map(|i| (i * 5 + 3) % N).collect()
    };
    let m = run_tce(Variant::SingleInstruction, &src, |m| {
        for i in 0..N {
            let pos = perm.iter().position(|&p| p == i).unwrap();
            let succ = if pos + 1 < N { perm[pos + 1] } else { i };
            m.poke(1000 + i, succ as i64).unwrap();
            m.poke(2000 + i, if succ == i { 0 } else { 1 }).unwrap();
        }
    });
    for i in 0..N {
        let pos = perm.iter().position(|&p| p == i).unwrap();
        let expect = (N - 1 - pos) as i64;
        assert_eq!(m.peek(2000 + i).unwrap(), expect, "rank of node {i}");
    }
}

/// Dense matrix-vector multiply: one thick block per row-dot-product
/// step, flow-wise loop over columns.
#[test]
fn matrix_vector_multiply() {
    const N: usize = 24; // NxN matrix
    let src = format!(
        "shared int mat[{nn}] @ 1000;
         shared int vec[{N}] @ 4000;
         shared int out[{N}] @ 5000;
         void main() {{
             #{N};
             int acc = 0;
             int j = 0;
             while (j < {N}) {{
                 acc += mat[. * {N} + j] * vec[j];
                 j += 1;
             }}
             out[.] = acc;
         }}",
        nn = N * N,
    );
    let mat = |r: usize, c: usize| ((r * 7 + c * 3) % 11) as i64 - 5;
    let vecv = |c: usize| ((c * 13) % 17) as i64 - 8;
    let m = run_tce(Variant::SingleInstruction, &src, |m| {
        for r in 0..N {
            for c in 0..N {
                m.poke(1000 + r * N + c, mat(r, c)).unwrap();
            }
        }
        for c in 0..N {
            m.poke(4000 + c, vecv(c)).unwrap();
        }
    });
    for r in 0..N {
        let expect: i64 = (0..N).map(|c| mat(r, c) * vecv(c)).sum();
        assert_eq!(m.peek(5000 + r).unwrap(), expect, "row {r}");
    }
}

/// Histogram with combining writes: every element increments its bucket
/// with one `multi` — constant time regardless of collisions.
#[test]
fn histogram_via_multioperations() {
    const N: usize = 512;
    const BUCKETS: usize = 16;
    let src = format!(
        "shared int data[{N}] @ 1000;
         shared int hist[{BUCKETS}] @ 3000;
         void main() {{
             #{N};
             multi(hist[data[.] % {BUCKETS}], MPADD, 1);
         }}"
    );
    let value = |i: usize| ((i * i + 7 * i) % 31) as i64;
    let m = run_tce(Variant::SingleInstruction, &src, |m| {
        for i in 0..N {
            m.poke(1000 + i, value(i)).unwrap();
        }
    });
    let mut expect = [0i64; BUCKETS];
    for i in 0..N {
        expect[(value(i) as usize) % BUCKETS] += 1;
    }
    for (b, &e) in expect.iter().enumerate() {
        assert_eq!(m.peek(3000 + b).unwrap(), e, "bucket {b}");
    }
}

/// Stream compaction with multiprefix: keep the elements that pass a
/// predicate, packed densely, in O(1) memory steps for the index
/// allocation.
#[test]
fn stream_compaction_with_multiprefix() {
    const N: usize = 96;
    // Keepers allocate their output slot with one multiprefix; the store
    // target is selected arithmetically (branch-free), with non-keepers
    // writing to an inert scratch region past the output.
    let src2 = format!(
        "shared int data[{N}] @ 1000;
         shared int out[{nn}] @ 2000;
         shared int count @ 70;
         void main() {{
             #{N};
             int v = data[.];
             int keep = v % 3 == 0;
             int slot = prefix(count, MPADD, keep);
             int target = keep * slot + (1 - keep) * ({N} + .);
             out[target] = v;
         }}",
        nn = 2 * N,
    );
    let program = tcf::lang::compile(&src2).expect("compiles");
    let mut config = MachineConfig::small();
    config.shared_size = 1 << 17;
    let mut m = TcfMachine::new(config, Variant::SingleInstruction, program);
    let value = |i: usize| (i * 11 % 23) as i64;
    for i in 0..N {
        m.poke(1000 + i, value(i)).unwrap();
    }
    m.run(1_000_000).unwrap();

    let expect: Vec<i64> = (0..N).map(value).filter(|v| v % 3 == 0).collect();
    assert_eq!(m.peek(70).unwrap(), expect.len() as i64, "count");
    let got = m.peek_range(2000, expect.len()).unwrap();
    assert_eq!(got, expect, "compacted stream");
}

/// The same reduction works on every lockstep variant that can express it.
#[test]
fn reduction_portable_across_variants() {
    const N: usize = 64;
    let tcf_src = format!(
        "shared int a[{N}] @ 1000;
         shared int sum @ 60;
         void main() {{
             #{N};
             multi(sum, MPADD, a[.]);
         }}"
    );
    let thread_src = format!(
        "shared int a[{N}] @ 1000;
         shared int sum @ 60;
         void main() {{
             if (gid < {N}) {{ multi(sum, MPADD, a[gid]); }}
         }}"
    );
    let expect: i64 = (0..N as i64).map(|i| i * 3 + 1).sum();
    let init = |m: &mut TcfMachine| {
        for i in 0..N {
            m.poke(1000 + i, 3 * i as i64 + 1).unwrap();
        }
    };
    for (variant, src) in [
        (Variant::SingleInstruction, &tcf_src),
        (Variant::Balanced { bound: 4 }, &tcf_src),
        (Variant::SingleOperation, &thread_src),
        (Variant::ConfigurableSingleOperation, &thread_src),
    ] {
        let m = run_tce(variant, src, init);
        assert_eq!(m.peek(60).unwrap(), expect, "{variant:?}");
    }
}
