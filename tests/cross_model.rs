//! Differential testing: the baseline PRAM-NUMA machine (`tcf-pram`) and
//! the extended machine's Single-operation variant (`tcf-core`) are two
//! independently written execution engines for the same thread model.
//! For thread-model programs they must produce bit-identical shared
//! memory — any divergence is a bug in one of them.

use proptest::prelude::*;

use tcf::core::{TcfMachine, Variant};
use tcf::isa::instr::{Instr, MemSpace, MultiKind, Operand};
use tcf::isa::op::AluOp;
use tcf::isa::program::Program;
use tcf::isa::reg::{r, Reg, SpecialReg};
use tcf::isa::word::Word;
use tcf::machine::MachineConfig;
use tcf::pram::PramMachine;

const MEM_WINDOW: usize = 2048;

fn run_both(program: Program) -> (Vec<Word>, Vec<Word>) {
    let config = MachineConfig::small();
    let mut pram = PramMachine::new(config.clone(), program.clone());
    pram.run(20_000).expect("baseline halts");
    let pram_mem = pram.peek_range(0, MEM_WINDOW).unwrap();

    let mut core = TcfMachine::new(config, Variant::SingleOperation, program);
    core.run(20_000).expect("extended SO halts");
    let core_mem = core.peek_range(0, MEM_WINDOW).unwrap();
    (pram_mem, core_mem)
}

#[test]
fn spmd_store_identity() {
    let p = tcf::isa::asm::assemble(
        "main:
            mfs r1, gid
            ldi r2, 100
            add r2, r2, r1
            st r1, [r2+0]
            halt
        ",
    )
    .unwrap();
    let (a, b) = run_both(p);
    assert_eq!(a, b);
    assert_eq!(a[100], 0);
    assert_eq!(a[163], 63);
}

#[test]
fn multiprefix_identical_order() {
    let p = tcf::isa::asm::assemble(
        "main:
            mfs r1, gid
            mpadd r2, [r0+50], r1
            ldi r3, 200
            add r3, r3, r1
            st r2, [r3+0]
            halt
        ",
    )
    .unwrap();
    let (a, b) = run_both(p);
    assert_eq!(a, b);
    // Prefix of rank k over contributions 0..k.
    assert_eq!(a[200 + 10], (0..10).sum::<i64>());
}

#[test]
fn concurrent_writes_same_winner() {
    let p = tcf::isa::asm::assemble(
        "main:
            mfs r1, gid
            st r1, [r0+7]
            halt
        ",
    )
    .unwrap();
    let (a, b) = run_both(p);
    assert_eq!(a, b);
    assert_eq!(a[7], 63); // Arbitrary policy: highest rank wins in both
}

/// Straight-line SPMD program generator: a sequence of data and memory
/// instructions that is guaranteed to halt and stay in bounds. Registers
/// r1..r7 hold data; addresses are formed from `ldi` bases in the memory
/// window.
fn arb_instr() -> impl Strategy<Value = Instr> {
    let data_reg = (1u8..8).prop_map(r);
    let addr_base = 0i64..(MEM_WINDOW as i64 - 64);
    let small = -100i64..100;
    prop_oneof![
        (
            prop::sample::select(&AluOp::ALL[..]),
            data_reg.clone(),
            data_reg.clone(),
            prop_oneof![
                data_reg.clone().prop_map(Operand::Reg),
                small.clone().prop_map(Operand::Imm)
            ]
        )
            .prop_map(|(op, rd, ra, rb)| Instr::Alu { op, rd, ra, rb }),
        (data_reg.clone(), small.clone()).prop_map(|(rd, imm)| Instr::Ldi { rd, imm }),
        (
            data_reg.clone(),
            prop::sample::select(&[SpecialReg::Gid, SpecialReg::Pid, SpecialReg::NThreads][..])
        )
            .prop_map(|(rd, sr)| Instr::Mfs { rd, sr }),
        (
            data_reg.clone(),
            data_reg.clone(),
            data_reg.clone(),
            data_reg.clone()
        )
            .prop_map(|(rd, cond, rt, rf)| Instr::Sel {
                rd,
                cond,
                rt,
                rf: Operand::Reg(rf),
            }),
        // Loads/stores through a fresh in-window base: emitted as a pair
        // so the address is always valid.
        (data_reg.clone(), addr_base.clone(), 0i64..32).prop_map(|(rd, base, off)| {
            Instr::Ld {
                rd,
                base: Reg::ZERO,
                off: base + off,
                space: MemSpace::Shared,
            }
        }),
        (data_reg.clone(), addr_base.clone(), 0i64..32).prop_map(|(rs, base, off)| {
            Instr::St {
                rs,
                base: Reg::ZERO,
                off: base + off,
                space: MemSpace::Shared,
            }
        }),
        (
            data_reg.clone(),
            addr_base.clone(),
            0i64..32,
            data_reg.clone()
        )
            .prop_map(|(cond, base, off, rs)| Instr::StMasked {
                cond,
                rs,
                base: Reg::ZERO,
                off: base + off,
                space: MemSpace::Shared,
            }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            addr_base.clone(),
            data_reg.clone()
        )
            .prop_map(|(kind, off, rs)| Instr::MultiOp {
                kind,
                base: Reg::ZERO,
                off,
                rs
            }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            data_reg.clone(),
            addr_base,
            data_reg
        )
            .prop_map(|(kind, rd, off, rs)| Instr::MultiPrefix {
                kind,
                rd,
                base: Reg::ZERO,
                off,
                rs
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line SPMD programs leave identical shared memory
    /// in both engines.
    #[test]
    fn engines_agree_on_random_programs(
        instrs in prop::collection::vec(arb_instr(), 1..24)
    ) {
        let mut all = instrs;
        all.push(Instr::Halt);
        let program = Program::new(all, Default::default(), vec![]).unwrap();
        let (a, b) = run_both(program);
        prop_assert_eq!(a, b);
    }
}
