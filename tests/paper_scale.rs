//! Paper-scale machine regression (P = 16, T_p = 64, mesh network).
//!
//! The quick variant runs in every CI pass; the `#[ignore]`d one
//! exercises the full experiment suite at paper scale
//! (`cargo test -- --ignored`).

use tcf::core::{TcfMachine, Variant};
use tcf::machine::MachineConfig;

#[test]
fn paper_scale_vector_add() {
    let config = MachineConfig::default_machine(); // P=16, Tp=64
    let size = 4096;
    let src = format!(
        "shared int a[{size}] @ 100000;
         shared int b[{size}] @ 200000;
         shared int c[{size}] @ 300000;
         void main() {{
             #{size};
             c[.] = a[.] + b[.];
         }}"
    );
    let program = tcf::lang::compile(&src).unwrap();
    let mut m = TcfMachine::new(config, Variant::SingleInstruction, program);
    for i in 0..size {
        m.poke(100_000 + i, i as i64).unwrap();
        m.poke(200_000 + i, 2 * i as i64).unwrap();
    }
    let s = m.run(1_000_000).unwrap();
    for i in 0..size {
        assert_eq!(m.peek(300_000 + i).unwrap(), 3 * i as i64);
    }
    // Flat step count at paper scale too.
    assert_eq!(s.steps, 10);
}

#[test]
#[ignore = "expensive: full experiment suite at P=16, Tp=64"]
fn paper_scale_full_experiments() {
    let config = MachineConfig::default_machine();
    let t1 = tcf_bench::table1::report(&config);
    assert!(t1.contains("Fetches per TCF"));
    let progs = tcf_bench::progs::report(&config);
    assert!(progs.contains("P8"));
}
