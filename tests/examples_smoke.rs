//! Smoke tests driving every example in `examples/` end to end.
//!
//! Each example exposes its body as `pub fn run()` (or `run_args` for the
//! CLI driver) precisely so this suite can include it with `#[path]` and
//! execute it inside the test process — no nested `cargo run`, no binary
//! discovery, and the examples participate in `TCF_ENGINE`-swept CI runs
//! like everything else. Examples assert their own results internally;
//! reaching the end without a panic is the contract.

#[path = "../examples/bfs.rs"]
mod bfs;
#[path = "../examples/hybrid.rs"]
mod hybrid;
#[path = "../examples/image_filter.rs"]
mod image_filter;
#[path = "../examples/multitasking.rs"]
mod multitasking;
#[path = "../examples/nbody.rs"]
mod nbody;
#[path = "../examples/quickstart.rs"]
mod quickstart;
#[path = "../examples/sort.rs"]
mod sort;
#[path = "../examples/tce_run.rs"]
mod tce_run;
#[path = "../examples/variants_tour.rs"]
mod variants_tour;

#[test]
fn quickstart_runs() {
    quickstart::run();
}

#[test]
fn bfs_runs() {
    bfs::run();
}

#[test]
fn hybrid_runs() {
    hybrid::run();
}

#[test]
fn image_filter_runs() {
    image_filter::run();
}

#[test]
fn multitasking_runs() {
    multitasking::run();
}

#[test]
fn nbody_runs() {
    nbody::run();
}

#[test]
fn sort_runs() {
    sort::run();
}

#[test]
fn variants_tour_runs() {
    variants_tour::run();
}

#[test]
fn tce_run_demo_succeeds() {
    assert_eq!(tce_run::run_args(vec![]), std::process::ExitCode::SUCCESS);
}

#[test]
fn tce_run_rejects_bad_variant() {
    let args = vec!["--variant".to_string(), "nope".to_string()];
    assert_eq!(tce_run::run_args(args), std::process::ExitCode::FAILURE);
}
