//! The TCF storage buffer of an extended PRAM-NUMA processor.
//!
//! §3.3 of the paper: *"there needs to be a `T_p`-element storage block,
//! e.g. ring buffer or addressable register file that contains the TCF
//! information, e.g. thickness and mode as well as a pointer to the next
//! yet not executed operation in the case of the balanced variant."*
//!
//! Switching between flows resident in the buffer is **free** — this is
//! what makes multitasking cheap in the extended model (Table 1's
//! task-switch row: 0 for the TCF variants versus `O(T_p)` for thread
//! machines). A flow that is *not* resident must be loaded first, paying
//! `load_cost` cycles and evicting the least-recently-used resident flow,
//! which produces the capacity knee measured by the `tcf_buffer_sweep`
//! bench.

use serde::{Deserialize, Serialize};
use tcf_obs::LatencyHistogram;

use crate::trace::FlowTag;

/// Execution mode of a flow descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowMode {
    /// Data-parallel: one instruction = `thickness` identical operations.
    Pram,
    /// Sequential bunch: thickness `1/numa_slots`, one step = that many
    /// consecutive instructions of one stream.
    Numa,
}

/// One flow's descriptor as held by the TCF buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowDesc {
    /// Flow identifier.
    pub id: FlowTag,
    /// PRAM-mode thickness (number of implicit threads). May be 0, in
    /// which case the flow executes nothing (paper §3.1).
    pub thickness: usize,
    /// NUMA bunch length `T` when `mode == Numa` (thickness `1/T`).
    pub numa_slots: usize,
    /// Mode.
    pub mode: FlowMode,
    /// Program counter.
    pub pc: usize,
    /// Next unexecuted operation within the current instruction — the
    /// Balanced variant's resume pointer (§3.2).
    pub next_op: usize,
}

impl FlowDesc {
    /// A PRAM-mode descriptor.
    pub fn pram(id: FlowTag, thickness: usize, pc: usize) -> FlowDesc {
        FlowDesc {
            id,
            thickness,
            numa_slots: 0,
            mode: FlowMode::Pram,
            pc,
            next_op: 0,
        }
    }

    /// A NUMA-mode descriptor of bunch length `slots`.
    pub fn numa(id: FlowTag, slots: usize, pc: usize) -> FlowDesc {
        FlowDesc {
            id,
            thickness: 1,
            numa_slots: slots,
            mode: FlowMode::Numa,
            pc,
            next_op: 0,
        }
    }
}

/// Ring-buffer flow store with LRU replacement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcfBuffer {
    /// Resident descriptors, most recently used last.
    resident: Vec<FlowDesc>,
    capacity: usize,
    load_cost: u64,
    /// Round-robin cursor for [`next_flow`](TcfBuffer::next_flow).
    cursor: usize,
    /// Total switches served.
    pub switches: u64,
    /// Switches that required a descriptor load.
    pub misses: u64,
    /// Total overhead cycles paid for loads.
    pub overhead_cycles: u64,
    /// Distribution of per-activation reload costs (misses only).
    pub reload: LatencyHistogram,
}

impl TcfBuffer {
    /// A buffer holding up to `capacity` descriptors, paying `load_cost`
    /// cycles per non-resident activation.
    pub fn new(capacity: usize, load_cost: u64) -> TcfBuffer {
        assert!(capacity > 0, "TCF buffer needs at least one slot");
        TcfBuffer {
            resident: Vec::with_capacity(capacity),
            capacity,
            load_cost,
            cursor: 0,
            switches: 0,
            misses: 0,
            overhead_cycles: 0,
            reload: LatencyHistogram::new(),
        }
    }

    /// Number of resident flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no flows are resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Buffer capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `id` is resident.
    pub fn is_resident(&self, id: FlowTag) -> bool {
        self.resident.iter().any(|d| d.id == id)
    }

    /// Activates `desc`, returning the switch cost in cycles: 0 when the
    /// descriptor is already resident (the stored copy is refreshed), or
    /// `load_cost` when it must be brought in (evicting the LRU descriptor
    /// if the buffer is full). The returned descriptor position is always
    /// most-recently-used.
    pub fn activate(&mut self, desc: FlowDesc) -> u64 {
        self.switches += 1;
        if let Some(pos) = self.resident.iter().position(|d| d.id == desc.id) {
            self.resident.remove(pos);
            self.resident.push(desc);
            return 0;
        }
        self.misses += 1;
        self.overhead_cycles += self.load_cost;
        self.reload.record(self.load_cost);
        if self.resident.len() == self.capacity {
            self.resident.remove(0); // LRU is at the front
        }
        self.resident.push(desc);
        self.load_cost
    }

    /// Updates a resident descriptor in place (no cost, no LRU effect).
    pub fn update(&mut self, desc: FlowDesc) -> bool {
        if let Some(d) = self.resident.iter_mut().find(|d| d.id == desc.id) {
            *d = desc;
            true
        } else {
            false
        }
    }

    /// Gets a resident descriptor.
    pub fn get(&self, id: FlowTag) -> Option<&FlowDesc> {
        self.resident.iter().find(|d| d.id == id)
    }

    /// Removes a flow (it terminated or was deallocated).
    pub fn remove(&mut self, id: FlowTag) -> Option<FlowDesc> {
        let pos = self.resident.iter().position(|d| d.id == id)?;
        let d = self.resident.remove(pos);
        if self.cursor > pos {
            self.cursor -= 1;
        }
        Some(d)
    }

    /// Round-robin selection of the next flow with work (non-zero
    /// thickness or NUMA mode), mirroring the "fetch the next nonempty TCF
    /// from the TCF storage block" step of §3.3. Returns a copy; callers
    /// write back via [`update`](TcfBuffer::update).
    pub fn next_flow(&mut self) -> Option<FlowDesc> {
        if self.resident.is_empty() {
            return None;
        }
        let n = self.resident.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            let d = self.resident[idx];
            let runnable = match d.mode {
                FlowMode::Pram => d.thickness > 0,
                FlowMode::Numa => d.numa_slots > 0,
            };
            if runnable {
                self.cursor = (idx + 1) % n;
                return Some(d);
            }
        }
        None
    }

    /// Miss ratio over all activations.
    pub fn miss_ratio(&self) -> f64 {
        if self.switches == 0 {
            0.0
        } else {
            self.misses as f64 / self.switches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_switch_is_free() {
        let mut b = TcfBuffer::new(4, 10);
        assert_eq!(b.activate(FlowDesc::pram(1, 8, 0)), 10); // first load
        assert_eq!(b.activate(FlowDesc::pram(1, 8, 5)), 0); // resident
        assert_eq!(b.get(1).unwrap().pc, 5);
        assert_eq!(b.misses, 1);
        assert_eq!(b.switches, 2);
        assert_eq!(b.reload.count(), 1);
        assert_eq!(b.reload.max(), 10);
    }

    #[test]
    fn eviction_is_lru() {
        let mut b = TcfBuffer::new(2, 1);
        b.activate(FlowDesc::pram(1, 1, 0));
        b.activate(FlowDesc::pram(2, 1, 0));
        b.activate(FlowDesc::pram(1, 1, 0)); // refresh 1; 2 becomes LRU
        b.activate(FlowDesc::pram(3, 1, 0)); // evicts 2
        assert!(b.is_resident(1));
        assert!(!b.is_resident(2));
        assert!(b.is_resident(3));
    }

    #[test]
    fn over_capacity_working_set_thrashes() {
        let mut b = TcfBuffer::new(2, 5);
        let mut cost = 0;
        for round in 0..10 {
            for id in 0..3u32 {
                cost += b.activate(FlowDesc::pram(id, 1, round));
            }
        }
        // Working set 3 > capacity 2 with round-robin access: every
        // activation after warmup misses.
        assert_eq!(cost, 30 * 5);
        assert_eq!(b.miss_ratio(), 1.0);
    }

    #[test]
    fn within_capacity_working_set_is_free_after_warmup() {
        let mut b = TcfBuffer::new(4, 5);
        let mut cost = 0;
        for round in 0..10 {
            for id in 0..4u32 {
                cost += b.activate(FlowDesc::pram(id, 1, round));
            }
        }
        assert_eq!(cost, 4 * 5); // only the 4 cold loads
    }

    #[test]
    fn miss_ratio_knee_sits_exactly_at_capacity() {
        // The multitasking knee of the tcf_buffer_sweep bench, as a unit
        // property: round-robin over a working set of W flows through a
        // B-slot buffer is free after warmup for every W <= B, and misses
        // on *every* activation at W = B + 1 — the steady-state miss
        // ratio jumps from 0 to 1 with no intermediate regime.
        const B: usize = 8;
        const ROUNDS: u32 = 20;
        let steady = |w: u32| -> f64 {
            let mut b = TcfBuffer::new(B, 7);
            for id in 0..w {
                b.activate(FlowDesc::pram(id, 1, 0)); // warmup (cold loads)
            }
            let (warm_misses, warm_switches) = (b.misses, b.switches);
            for round in 1..=ROUNDS {
                for id in 0..w {
                    b.activate(FlowDesc::pram(id, 1, round as usize));
                }
            }
            (b.misses - warm_misses) as f64 / (b.switches - warm_switches) as f64
        };
        for w in 1..=B as u32 {
            assert_eq!(steady(w), 0.0, "working set {w} <= capacity must be free");
        }
        assert_eq!(
            steady(B as u32 + 1),
            1.0,
            "W = B + 1 must thrash on every switch"
        );
        // Overhead accounting at the knee: every steady-state activation
        // pays exactly load_cost.
        let w = B as u32 + 1;
        let mut b = TcfBuffer::new(B, 7);
        for round in 0..10 {
            for id in 0..w {
                b.activate(FlowDesc::pram(id, 1, round));
            }
        }
        assert_eq!(b.overhead_cycles, u64::from(10 * w) * 7);
        assert_eq!(b.reload.count(), u64::from(10 * w));
    }

    #[test]
    fn eviction_under_interleaved_refresh_keeps_hot_set() {
        // A hot flow refreshed between other activations must survive
        // arbitrarily many evictions of the cold rotation.
        let mut b = TcfBuffer::new(3, 2);
        b.activate(FlowDesc::pram(0, 1, 0)); // the hot flow
        let mut hot_cost = 0;
        for id in 1..20u32 {
            b.activate(FlowDesc::pram(id, 1, 0)); // cold stream
            hot_cost += b.activate(FlowDesc::pram(0, 1, 0)); // refresh hot
        }
        assert_eq!(hot_cost, 0, "refreshed hot flow must never reload");
        assert!(b.is_resident(0));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn next_flow_round_robins_and_skips_empty() {
        let mut b = TcfBuffer::new(4, 1);
        b.activate(FlowDesc::pram(1, 4, 0));
        b.activate(FlowDesc::pram(2, 0, 0)); // thickness 0: never selected
        b.activate(FlowDesc::pram(3, 2, 0));
        let picks: Vec<FlowTag> = (0..4).map(|_| b.next_flow().unwrap().id).collect();
        assert_eq!(picks, vec![1, 3, 1, 3]);
    }

    #[test]
    fn next_flow_empty_buffer_none() {
        let mut b = TcfBuffer::new(2, 1);
        assert!(b.next_flow().is_none());
        b.activate(FlowDesc::pram(1, 0, 0));
        assert!(b.next_flow().is_none()); // resident but no work
    }

    #[test]
    fn remove_adjusts_cursor() {
        let mut b = TcfBuffer::new(4, 1);
        b.activate(FlowDesc::pram(1, 1, 0));
        b.activate(FlowDesc::pram(2, 1, 0));
        b.activate(FlowDesc::pram(3, 1, 0));
        assert_eq!(b.next_flow().unwrap().id, 1);
        assert_eq!(b.next_flow().unwrap().id, 2);
        b.remove(1);
        // Cursor stays on flow 3.
        assert_eq!(b.next_flow().unwrap().id, 3);
    }

    #[test]
    fn update_only_touches_resident() {
        let mut b = TcfBuffer::new(2, 1);
        b.activate(FlowDesc::pram(1, 1, 0));
        assert!(b.update(FlowDesc::pram(1, 9, 7)));
        assert_eq!(b.get(1).unwrap().thickness, 9);
        assert!(!b.update(FlowDesc::pram(42, 1, 0)));
    }

    #[test]
    fn numa_descriptor_runnable() {
        let mut b = TcfBuffer::new(2, 1);
        b.activate(FlowDesc::numa(5, 4, 0));
        let d = b.next_flow().unwrap();
        assert_eq!(d.mode, FlowMode::Numa);
        assert_eq!(d.numa_slots, 4);
    }
}
