//! The per-group issue pipeline with ESM-style latency hiding.
//!
//! A CESM processor issues one operation per cycle. In PRAM mode, the
//! operations of a step belong to many threads (baseline) or to the many
//! implicit threads of resident TCFs (extended model), so memory round
//! trips overlap with the issuing of later operations: a step completes
//! only when every unit has issued **and** every shared-memory reply has
//! returned. When the issue window is long enough (`units ≥ roundtrip`)
//! latency is fully hidden; when it is shorter, the pipeline drains into
//! bubbles — exactly the low-TLP utilization collapse the PRAM-NUMA model
//! exists to fix (paper §1, §2.1, Figure 6).
//!
//! NUMA-mode steps run the same engine with `serialize_mem = true`: a
//! sequential instruction stream cannot issue past an outstanding load, so
//! references serialize, but against the *local* memory's one-cycle-ish
//! latency rather than the network round trip.

use tcf_net::Network;

use crate::stats::MachineStats;
use crate::trace::{FlowTag, Trace, TraceEvent, UnitKind};

/// One operation presented to the issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueUnit {
    /// Flow (TCF / bunch) the unit belongs to; `None` for a forced idle
    /// slot (a dead thread slot in the fixed rotation of baseline
    /// machines).
    pub flow: Option<FlowTag>,
    /// Implicit thread index within the flow, when meaningful.
    pub thread: Option<usize>,
    /// Unit kind. `Bubble` denotes a forced idle slot.
    pub kind: UnitKind,
    /// Destination node of a `MemShared` unit (the module's network node).
    pub mem_node: Option<usize>,
}

impl IssueUnit {
    /// A compute unit of `flow`.
    pub fn compute(flow: FlowTag, thread: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::Compute,
            mem_node: None,
        }
    }

    /// A shared-memory reference of `flow` to module node `node`.
    pub fn shared_mem(flow: FlowTag, thread: usize, node: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::MemShared,
            mem_node: Some(node),
        }
    }

    /// A local-memory reference of `flow`.
    pub fn local_mem(flow: FlowTag, thread: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::MemLocal,
            mem_node: None,
        }
    }

    /// An instruction fetch on behalf of `flow`.
    pub fn fetch(flow: FlowTag) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: None,
            kind: UnitKind::Fetch,
            mem_node: None,
        }
    }

    /// A flow-management overhead cycle.
    pub fn overhead(flow: FlowTag) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: None,
            kind: UnitKind::FlowOverhead,
            mem_node: None,
        }
    }

    /// A forced idle slot: the fixed thread rotation of an interleaved
    /// multithreaded processor spends a cycle on a dead or empty thread
    /// slot. This is how the baseline's low-TLP utilization problem
    /// (paper §1, §2.1) enters the timing model.
    pub fn idle() -> IssueUnit {
        IssueUnit {
            flow: None,
            thread: None,
            kind: UnitKind::Bubble,
            mem_node: None,
        }
    }
}

/// Timing result of one group step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// First cycle of the step.
    pub start_cycle: u64,
    /// First cycle *after* the step (start of the next step).
    pub end_cycle: u64,
    /// Units issued.
    pub issued: usize,
    /// Bubble cycles spent waiting for outstanding replies (or an empty
    /// step's mandatory cycle).
    pub drain_bubbles: u64,
}

impl StepOutcome {
    /// Step length in cycles.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Issue engine of one processor group.
#[derive(Debug, Clone)]
pub struct GroupPipeline {
    /// This group's index (its network node).
    pub group: usize,
    /// Module service latency in cycles.
    pub module_latency: u64,
    /// Local memory latency in cycles.
    pub local_latency: u64,
    /// Operations issued per cycle in PRAM mode (ILP-TLP co-execution,
    /// §3.2). Serialized (NUMA-mode) steps always issue one per cycle:
    /// a sequential stream has no independent operations to co-issue.
    pub ilp_width: usize,
}

impl GroupPipeline {
    /// Creates the pipeline of `group` with a single functional unit.
    pub fn new(group: usize, module_latency: u64, local_latency: u64) -> GroupPipeline {
        GroupPipeline {
            group,
            module_latency,
            local_latency,
            ilp_width: 1,
        }
    }

    /// Creates the pipeline of `group` with `ilp_width` functional units.
    pub fn with_ilp(
        group: usize,
        module_latency: u64,
        local_latency: u64,
        ilp_width: usize,
    ) -> GroupPipeline {
        assert!(ilp_width >= 1, "need at least one functional unit");
        GroupPipeline {
            group,
            module_latency,
            local_latency,
            ilp_width,
        }
    }

    /// Executes one step's worth of units starting at `start`.
    ///
    /// With `serialize_mem` (NUMA mode) each memory reference blocks the
    /// next issue until its reply returns; otherwise (PRAM mode) issue
    /// continues and the step merely cannot *end* before the last reply.
    /// An empty unit list still consumes one cycle (a step always takes
    /// time).
    pub fn run_step(
        &self,
        start: u64,
        units: &[IssueUnit],
        serialize_mem: bool,
        net: &mut Network,
        trace: &mut Trace,
        stats: &mut MachineStats,
    ) -> StepOutcome {
        let mut t = start;
        let mut last_reply = start;
        let width = if serialize_mem { 1 } else { self.ilp_width };
        let mut issued_this_cycle = 0usize;

        for u in units {
            if issued_this_cycle >= width {
                t += 1;
                issued_this_cycle = 0;
            }
            trace.push(TraceEvent {
                cycle: t,
                group: self.group,
                flow: u.flow,
                thread: u.thread,
                kind: u.kind,
            });
            stats.count_unit(u.kind);
            issued_this_cycle += 1;
            if u.kind == UnitKind::Bubble {
                continue;
            }

            let reply = match u.kind {
                UnitKind::MemShared => {
                    let node = u.mem_node.unwrap_or(self.group);
                    let arrive = net.send(self.group, node, t);
                    let served = net.service(node, arrive, self.module_latency);
                    let back = net.send(node, self.group, served);
                    stats.mem_roundtrip.record(back - t);
                    Some(back)
                }
                UnitKind::MemLocal => Some(t + self.local_latency),
                _ => None,
            };
            if let Some(r) = reply {
                last_reply = last_reply.max(r);
                if serialize_mem {
                    // The forwarding network makes the reply consumable in
                    // the cycle it returns, so the next dependent issue may
                    // happen at `r` (not `r + 1`).
                    t = (t + 1).max(r);
                    issued_this_cycle = 0;
                }
            }
        }
        if issued_this_cycle > 0 {
            t += 1;
        }

        // The step ends when issue is done and every reply has returned.
        let mut end = t.max(last_reply);
        if units.is_empty() {
            end = start + 1;
        }
        let drain = end - t.min(end);
        for c in t..end {
            trace.push(TraceEvent {
                cycle: c,
                group: self.group,
                flow: None,
                thread: None,
                kind: UnitKind::Bubble,
            });
            stats.count_unit(UnitKind::Bubble);
        }
        // `stats.steps` is owned by the machine driving the pipeline: a
        // machine step may span several `run_step` calls (one per group,
        // plus a serialized NUMA sub-step), so per-call counting here
        // would overcount.
        stats.cycles = stats.cycles.max(end);

        StepOutcome {
            start_cycle: start,
            end_cycle: end,
            issued: units.len(),
            drain_bubbles: drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_net::Topology;

    fn net() -> Network {
        Network::new(Topology::Crossbar { nodes: 4 }, 2)
    }

    fn pipe() -> GroupPipeline {
        GroupPipeline::new(0, 2, 1)
    }

    fn run(units: &[IssueUnit], serialize: bool) -> StepOutcome {
        let mut n = net();
        let mut t = Trace::disabled();
        let mut s = MachineStats::default();
        pipe().run_step(0, units, serialize, &mut n, &mut t, &mut s)
    }

    #[test]
    fn compute_only_step_is_one_cycle_per_unit() {
        let units: Vec<IssueUnit> = (0..10).map(|i| IssueUnit::compute(1, i)).collect();
        let out = run(&units, false);
        assert_eq!(out.cycles(), 10);
        assert_eq!(out.drain_bubbles, 0);
    }

    #[test]
    fn empty_step_takes_one_cycle() {
        let out = run(&[], false);
        assert_eq!(out.cycles(), 1);
    }

    #[test]
    fn short_step_with_memory_drains_bubbles() {
        // Remote roundtrip: 2 hops * 2 cycles + 2 module = 6 cycles; one
        // unit issues in 1 cycle, so ~5 bubbles drain.
        let units = vec![IssueUnit::shared_mem(1, 0, 1)];
        let out = run(&units, false);
        assert_eq!(out.cycles(), 6);
        assert_eq!(out.drain_bubbles, 5);
    }

    #[test]
    fn long_step_hides_memory_latency() {
        // 32 units, each a remote reference: issue takes 32 cycles, far
        // beyond the ~6-cycle roundtrip, so the tail reply lands before
        // issuing ends (modulo destination-port queueing).
        let units: Vec<IssueUnit> = (0..32)
            .map(|i| IssueUnit::shared_mem(1, i, (i % 3) + 1))
            .collect();
        let out = run(&units, false);
        assert!(out.cycles() < 40, "latency not hidden: {out:?}");
        assert!(out.drain_bubbles < 8);
    }

    #[test]
    fn numa_serializes_on_shared_memory() {
        let units: Vec<IssueUnit> = (0..4).map(|i| IssueUnit::shared_mem(1, i, 1)).collect();
        let pram = run(&units, false);
        let numa = run(&units, true);
        assert!(
            numa.cycles() > pram.cycles(),
            "serialized {} vs pipelined {}",
            numa.cycles(),
            pram.cycles()
        );
    }

    #[test]
    fn numa_local_access_is_cheap() {
        // Local latency 1: serialization costs nothing extra at 1 IPC.
        let units: Vec<IssueUnit> = (0..8).map(|i| IssueUnit::local_mem(1, i)).collect();
        let out = run(&units, true);
        assert_eq!(out.cycles(), 8);
    }

    #[test]
    fn trace_records_bubbles_and_issues() {
        let mut n = net();
        let mut tr = Trace::recording();
        let mut s = MachineStats::default();
        let units = vec![IssueUnit::shared_mem(7, 0, 1)];
        pipe().run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(s.shared_refs, 1);
        assert_eq!(s.bubbles, 5);
        assert_eq!(tr.events().len(), 6);
        assert_eq!(tr.events()[0].flow, Some(7));
        assert!(tr.events()[1..].iter().all(|e| e.kind == UnitKind::Bubble));
    }

    #[test]
    fn ilp_width_co_issues_independent_ops() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..32).map(|i| IssueUnit::compute(1, i)).collect();
        let narrow =
            GroupPipeline::with_ilp(0, 2, 1, 1).run_step(0, &units, false, &mut n, &mut tr, &mut s);
        let wide =
            GroupPipeline::with_ilp(0, 2, 1, 4).run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(narrow.cycles(), 32);
        assert_eq!(wide.cycles(), 8);
    }

    #[test]
    fn ilp_width_does_not_speed_serialized_streams() {
        // A sequential (NUMA) stream has no independent ops to co-issue.
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..8).map(|i| IssueUnit::local_mem(1, i)).collect();
        let narrow =
            GroupPipeline::with_ilp(0, 2, 1, 1).run_step(0, &units, true, &mut n, &mut tr, &mut s);
        let wide =
            GroupPipeline::with_ilp(0, 2, 1, 4).run_step(0, &units, true, &mut n, &mut tr, &mut s);
        assert_eq!(narrow.cycles(), wide.cycles());
    }

    #[test]
    fn stats_cycles_track_end() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let p = pipe();
        let out1 = p.run_step(
            0,
            &[IssueUnit::compute(1, 0)],
            false,
            &mut n,
            &mut tr,
            &mut s,
        );
        let out2 = p.run_step(
            out1.end_cycle,
            &[IssueUnit::compute(1, 0)],
            false,
            &mut n,
            &mut tr,
            &mut s,
        );
        // Step counting belongs to the machine, not the pipeline.
        assert_eq!(s.steps, 0);
        assert_eq!(s.cycles, out2.end_cycle);
    }

    #[test]
    fn shared_memory_roundtrips_land_in_histogram() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..4).map(|i| IssueUnit::shared_mem(1, i, 1)).collect();
        pipe().run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(s.mem_roundtrip.count(), 4);
        // Uncontended remote roundtrip: 2 hops * 2 cycles + 2 module.
        assert!(s.mem_roundtrip.max() >= 6);
    }
}
