//! The per-group issue pipeline with ESM-style latency hiding.
//!
//! A CESM processor issues one operation per cycle. In PRAM mode, the
//! operations of a step belong to many threads (baseline) or to the many
//! implicit threads of resident TCFs (extended model), so memory round
//! trips overlap with the issuing of later operations: a step completes
//! only when every unit has issued **and** every shared-memory reply has
//! returned. When the issue window is long enough (`units ≥ roundtrip`)
//! latency is fully hidden; when it is shorter, the pipeline drains into
//! bubbles — exactly the low-TLP utilization collapse the PRAM-NUMA model
//! exists to fix (paper §1, §2.1, Figure 6).
//!
//! NUMA-mode steps run the same engine with `serialize_mem = true`: a
//! sequential instruction stream cannot issue past an outstanding load, so
//! references serialize, but against the *local* memory's one-cycle-ish
//! latency rather than the network round trip.

use tcf_net::Network;

use crate::stats::MachineStats;
use crate::trace::{FlowTag, Trace, TraceEvent, UnitKind};

/// One operation presented to the issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueUnit {
    /// Flow (TCF / bunch) the unit belongs to; `None` for a forced idle
    /// slot (a dead thread slot in the fixed rotation of baseline
    /// machines).
    pub flow: Option<FlowTag>,
    /// Implicit thread index within the flow, when meaningful.
    pub thread: Option<usize>,
    /// Unit kind. `Bubble` denotes a forced idle slot.
    pub kind: UnitKind,
    /// Destination node of a `MemShared` unit (the module's network node).
    pub mem_node: Option<usize>,
}

impl IssueUnit {
    /// A compute unit of `flow`.
    pub fn compute(flow: FlowTag, thread: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::Compute,
            mem_node: None,
        }
    }

    /// A shared-memory reference of `flow` to module node `node`.
    pub fn shared_mem(flow: FlowTag, thread: usize, node: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::MemShared,
            mem_node: Some(node),
        }
    }

    /// A local-memory reference of `flow`.
    pub fn local_mem(flow: FlowTag, thread: usize) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: Some(thread),
            kind: UnitKind::MemLocal,
            mem_node: None,
        }
    }

    /// An instruction fetch on behalf of `flow`.
    pub fn fetch(flow: FlowTag) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: None,
            kind: UnitKind::Fetch,
            mem_node: None,
        }
    }

    /// A flow-management overhead cycle.
    pub fn overhead(flow: FlowTag) -> IssueUnit {
        IssueUnit {
            flow: Some(flow),
            thread: None,
            kind: UnitKind::FlowOverhead,
            mem_node: None,
        }
    }

    /// A forced idle slot: the fixed thread rotation of an interleaved
    /// multithreaded processor spends a cycle on a dead or empty thread
    /// slot. This is how the baseline's low-TLP utilization problem
    /// (paper §1, §2.1) enters the timing model.
    pub fn idle() -> IssueUnit {
        IssueUnit {
            flow: None,
            thread: None,
            kind: UnitKind::Bubble,
            mem_node: None,
        }
    }
}

/// A run-length–compressed span of issue units.
///
/// Thick instructions issue one unit per lane with a completely regular
/// shape (consecutive thread ranks, and — for memory references under
/// low-order interleaving — module nodes in arithmetic progression).
/// Encoding the span instead of materializing one `IssueUnit` per lane
/// lets the pipeline advance its issue cadence in closed form, turning
/// the per-step timing cost of a `T`-thick compute instruction from
/// `O(T)` into `O(1)`. Network-bound spans (`SharedRun`) targeting one
/// module walk the router for message 0 and replay the rest in closed
/// form; spans rotating across modules still walk the router per
/// message, but skip the per-unit dispatch.
///
/// Every span expands to exactly the unit sequence the uncompressed path
/// would have produced; `run_step_seq` falls back to per-unit expansion
/// whenever tracing is enabled so event streams stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitSeq {
    /// A single unit, exactly as in the uncompressed path.
    One(IssueUnit),
    /// `count` compute units of `flow` on threads `thread0 ..
    /// thread0 + count`.
    ComputeRun {
        /// Flow tag shared by the whole run.
        flow: FlowTag,
        /// Thread rank of the first lane.
        thread0: usize,
        /// Number of lanes.
        count: usize,
    },
    /// `count` shared-memory units of `flow` on threads `thread0 ..`;
    /// lane `k` targets module node `(node0 + k·node_step) mod nodes`.
    SharedRun {
        /// Flow tag shared by the whole run.
        flow: FlowTag,
        /// Thread rank of the first lane.
        thread0: usize,
        /// Number of lanes.
        count: usize,
        /// Module node of the first lane.
        node0: usize,
        /// Node increment between consecutive lanes (already reduced
        /// modulo `nodes`).
        node_step: usize,
        /// Module/node count of the machine.
        nodes: usize,
    },
    /// `count` local-memory units of `flow` on threads `thread0 ..`.
    LocalRun {
        /// Flow tag shared by the whole run.
        flow: FlowTag,
        /// Thread rank of the first lane.
        thread0: usize,
        /// Number of lanes.
        count: usize,
    },
}

impl From<IssueUnit> for UnitSeq {
    fn from(u: IssueUnit) -> UnitSeq {
        UnitSeq::One(u)
    }
}

impl UnitSeq {
    /// Number of issue units this span stands for.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            UnitSeq::One(_) => 1,
            UnitSeq::ComputeRun { count, .. }
            | UnitSeq::SharedRun { count, .. }
            | UnitSeq::LocalRun { count, .. } => count,
        }
    }

    /// Whether the span is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th unit of the span, as the uncompressed path would have
    /// built it.
    #[inline]
    pub fn unit_at(&self, k: usize) -> IssueUnit {
        match *self {
            UnitSeq::One(u) => u,
            UnitSeq::ComputeRun { flow, thread0, .. } => IssueUnit::compute(flow, thread0 + k),
            UnitSeq::SharedRun {
                flow,
                thread0,
                node0,
                node_step,
                nodes,
                ..
            } => IssueUnit::shared_mem(flow, thread0 + k, (node0 + k * node_step) % nodes),
            UnitSeq::LocalRun { flow, thread0, .. } => IssueUnit::local_mem(flow, thread0 + k),
        }
    }
}

/// Timing result of one group step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// First cycle of the step.
    pub start_cycle: u64,
    /// First cycle *after* the step (start of the next step).
    pub end_cycle: u64,
    /// Units issued.
    pub issued: usize,
    /// Bubble cycles spent waiting for outstanding replies (or an empty
    /// step's mandatory cycle).
    pub drain_bubbles: u64,
}

impl StepOutcome {
    /// Step length in cycles.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Issue engine of one processor group.
#[derive(Debug, Clone)]
pub struct GroupPipeline {
    /// This group's index (its network node).
    pub group: usize,
    /// Module service latency in cycles.
    pub module_latency: u64,
    /// Local memory latency in cycles.
    pub local_latency: u64,
    /// Operations issued per cycle in PRAM mode (ILP-TLP co-execution,
    /// §3.2). Serialized (NUMA-mode) steps always issue one per cycle:
    /// a sequential stream has no independent operations to co-issue.
    pub ilp_width: usize,
}

impl GroupPipeline {
    /// Creates the pipeline of `group` with a single functional unit.
    pub fn new(group: usize, module_latency: u64, local_latency: u64) -> GroupPipeline {
        GroupPipeline {
            group,
            module_latency,
            local_latency,
            ilp_width: 1,
        }
    }

    /// Creates the pipeline of `group` with `ilp_width` functional units.
    pub fn with_ilp(
        group: usize,
        module_latency: u64,
        local_latency: u64,
        ilp_width: usize,
    ) -> GroupPipeline {
        assert!(ilp_width >= 1, "need at least one functional unit");
        GroupPipeline {
            group,
            module_latency,
            local_latency,
            ilp_width,
        }
    }

    /// Executes one step's worth of units starting at `start`.
    ///
    /// With `serialize_mem` (NUMA mode) each memory reference blocks the
    /// next issue until its reply returns; otherwise (PRAM mode) issue
    /// continues and the step merely cannot *end* before the last reply.
    /// An empty unit list still consumes one cycle (a step always takes
    /// time).
    pub fn run_step(
        &self,
        start: u64,
        units: &[IssueUnit],
        serialize_mem: bool,
        net: &mut Network,
        trace: &mut Trace,
        stats: &mut MachineStats,
    ) -> StepOutcome {
        let width = if serialize_mem { 1 } else { self.ilp_width };
        let mut st = IssueState::new(start);
        for u in units {
            self.issue_one(&mut st, u, width, serialize_mem, net, trace, stats);
        }
        self.finish_step(st, start, units.is_empty(), units.len(), trace, stats)
    }

    /// [`run_step`](GroupPipeline::run_step) over a run-length–compressed
    /// unit sequence.
    ///
    /// Produces the exact timing, statistics, network occupancy, and (when
    /// tracing) event stream of `run_step` on the expanded sequence.
    /// Compute and local-memory runs advance the issue cadence in closed
    /// form when nothing observes the individual units. Same-module
    /// shared-memory runs walk the router for message 0 only and replay
    /// the remaining messages in closed form
    /// ([`Network::replay_roundtrip_tail`]); runs that rotate across
    /// modules still walk the router per message.
    pub fn run_step_seq(
        &self,
        start: u64,
        seqs: &[UnitSeq],
        serialize_mem: bool,
        net: &mut Network,
        trace: &mut Trace,
        stats: &mut MachineStats,
    ) -> StepOutcome {
        let width = if serialize_mem { 1 } else { self.ilp_width };
        let mut st = IssueState::new(start);
        let mut issued_total = 0usize;
        let expand = trace.is_enabled();
        for s in seqs {
            issued_total += s.len();
            match *s {
                _ if expand => {
                    for k in 0..s.len() {
                        let u = s.unit_at(k);
                        self.issue_one(&mut st, &u, width, serialize_mem, net, trace, stats);
                    }
                }
                UnitSeq::One(u) => {
                    self.issue_one(&mut st, &u, width, serialize_mem, net, trace, stats);
                }
                UnitSeq::ComputeRun { count, .. } => {
                    if count == 0 {
                        continue;
                    }
                    st.advance_issue(count, width);
                    stats.count_units(UnitKind::Compute, count as u64);
                }
                UnitSeq::LocalRun { count, .. } => {
                    if count == 0 {
                        continue;
                    }
                    if serialize_mem {
                        // A serialized stream re-synchronizes on every
                        // reply, so the cadence is strictly periodic: each
                        // local reference advances the clock by
                        // `max(1, local_latency)` and resets the issue
                        // slot — the whole run collapses to closed form.
                        // This is the NUMA bunch shape: `T` consecutive
                        // local references of a sequential stream cost
                        // O(1) timing work instead of O(T).
                        if st.issued_this_cycle >= width {
                            st.t += 1;
                            st.issued_this_cycle = 0;
                        }
                        let period = self.local_latency.max(1);
                        st.last_reply = st
                            .last_reply
                            .max(st.t + (count as u64 - 1) * period + self.local_latency);
                        st.t += count as u64 * period;
                        st.issued_this_cycle = 0;
                        stats.count_units(UnitKind::MemLocal, count as u64);
                    } else {
                        // Replies are monotone in issue time, so only the
                        // last lane's reply can extend the step.
                        st.advance_issue(count, width);
                        st.last_reply = st.last_reply.max(st.t + self.local_latency);
                        stats.count_units(UnitKind::MemLocal, count as u64);
                    }
                }
                UnitSeq::SharedRun {
                    count,
                    node0,
                    node_step,
                    nodes,
                    ..
                } => {
                    if count == 0 {
                        continue;
                    }
                    if serialize_mem {
                        for k in 0..count {
                            let u = s.unit_at(k);
                            self.issue_one(&mut st, &u, width, serialize_mem, net, trace, stats);
                        }
                    } else if let (0, Some(fwd), Some(rev)) = (
                        node_step,
                        net.route_to(self.group, node0),
                        net.route_to(node0, self.group),
                    ) {
                        // Every lane targets the same module (the
                        // bulk-multioperation shape): both routes repeat
                        // per message. Message 0 walks the router exactly;
                        // every later message trails it by exactly one
                        // cycle (each directed link and the module are
                        // rate-1 FIFO servers fed at most one message per
                        // cycle by the issue cadence), so the tail
                        // collapses to closed-form occupancy shifts and
                        // cadence-ramp statistics — O(log T) per run
                        // instead of O(T).
                        if st.issued_this_cycle >= width {
                            st.t += 1;
                            st.issued_this_cycle = 0;
                        }
                        st.issued_this_cycle += 1;
                        let s0 = st.t;
                        let arrive = net.send_on(&fwd, s0);
                        let served = net.service(node0, arrive, self.module_latency);
                        let back = net.send_on(&rev, served);
                        stats.mem_roundtrip.record(back - s0);
                        let tail = (count - 1) as u64;
                        if tail > 0 {
                            let c = (st.issued_this_cycle - 1) as u64;
                            let w = width as u64;
                            net.replay_roundtrip_tail(
                                &fwd, &rev, node0, tail, s0, arrive, served, back, c, w,
                            );
                            // Round trips of the tail: back_k − s_k with
                            // back_k = back + k and s_k on the cadence.
                            stats
                                .mem_roundtrip
                                .record_ramp(back - s0, c, w, 1, tail + 1);
                            st.advance_issue(count - 1, width);
                        }
                        st.last_reply = st.last_reply.max(back + tail);
                        stats.count_units(UnitKind::MemShared, count as u64);
                    } else {
                        let mut node = node0;
                        for _ in 0..count {
                            if st.issued_this_cycle >= width {
                                st.t += 1;
                                st.issued_this_cycle = 0;
                            }
                            st.issued_this_cycle += 1;
                            let arrive = net.send(self.group, node, st.t);
                            let served = net.service(node, arrive, self.module_latency);
                            let back = net.send(node, self.group, served);
                            stats.mem_roundtrip.record(back - st.t);
                            st.last_reply = st.last_reply.max(back);
                            node += node_step;
                            if node >= nodes {
                                node -= nodes;
                            }
                        }
                        stats.count_units(UnitKind::MemShared, count as u64);
                    }
                }
            }
        }
        self.finish_step(st, start, issued_total == 0, issued_total, trace, stats)
    }

    /// The per-unit issue body shared by the expanded and compressed
    /// paths: cadence, trace, stats, and the memory round trip.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn issue_one(
        &self,
        st: &mut IssueState,
        u: &IssueUnit,
        width: usize,
        serialize_mem: bool,
        net: &mut Network,
        trace: &mut Trace,
        stats: &mut MachineStats,
    ) {
        if st.issued_this_cycle >= width {
            st.t += 1;
            st.issued_this_cycle = 0;
        }
        trace.push(TraceEvent {
            cycle: st.t,
            group: self.group,
            flow: u.flow,
            thread: u.thread,
            kind: u.kind,
        });
        stats.count_unit(u.kind);
        st.issued_this_cycle += 1;
        if u.kind == UnitKind::Bubble {
            return;
        }

        let reply = match u.kind {
            UnitKind::MemShared => {
                let node = u.mem_node.unwrap_or(self.group);
                let arrive = net.send(self.group, node, st.t);
                let served = net.service(node, arrive, self.module_latency);
                let back = net.send(node, self.group, served);
                stats.mem_roundtrip.record(back - st.t);
                Some(back)
            }
            UnitKind::MemLocal => Some(st.t + self.local_latency),
            _ => None,
        };
        if let Some(r) = reply {
            st.last_reply = st.last_reply.max(r);
            if serialize_mem {
                // The forwarding network makes the reply consumable in
                // the cycle it returns, so the next dependent issue may
                // happen at `r` (not `r + 1`).
                st.t = (st.t + 1).max(r);
                st.issued_this_cycle = 0;
            }
        }
    }

    /// Step epilogue shared by both paths: final-cycle close-out, drain
    /// bubbles, and the cycle-counter update.
    fn finish_step(
        &self,
        mut st: IssueState,
        start: u64,
        empty: bool,
        issued: usize,
        trace: &mut Trace,
        stats: &mut MachineStats,
    ) -> StepOutcome {
        if st.issued_this_cycle > 0 {
            st.t += 1;
        }

        // The step ends when issue is done and every reply has returned.
        let mut end = st.t.max(st.last_reply);
        if empty {
            end = start + 1;
        }
        let drain = end - st.t.min(end);
        if trace.is_enabled() {
            for c in st.t..end {
                trace.push(TraceEvent {
                    cycle: c,
                    group: self.group,
                    flow: None,
                    thread: None,
                    kind: UnitKind::Bubble,
                });
            }
        }
        stats.count_units(UnitKind::Bubble, drain);
        // `stats.steps` is owned by the machine driving the pipeline: a
        // machine step may span several `run_step` calls (one per group,
        // plus a serialized NUMA sub-step), so per-call counting here
        // would overcount.
        stats.cycles = stats.cycles.max(end);

        StepOutcome {
            start_cycle: start,
            end_cycle: end,
            issued,
            drain_bubbles: drain,
        }
    }
}

/// Mutable issue-cadence state threaded through one `run_step`.
#[derive(Debug, Clone, Copy)]
struct IssueState {
    t: u64,
    last_reply: u64,
    issued_this_cycle: usize,
}

impl IssueState {
    fn new(start: u64) -> IssueState {
        IssueState {
            t: start,
            last_reply: start,
            issued_this_cycle: 0,
        }
    }

    /// Advances the cadence past `count` back-to-back non-blocking units
    /// in closed form: exactly what `count` iterations of the per-unit
    /// `if issued >= width { t += 1; issued = 0 } … issued += 1` loop
    /// would do. (`issued_this_cycle` never exceeds `width` between
    /// units, so the pre-increment carry folds into one division.)
    #[inline]
    fn advance_issue(&mut self, count: usize, width: usize) {
        // `issued_this_cycle ≤ width` here, so the lanes already issued in
        // the current cycle never contribute a whole extra cycle
        // themselves — the single division accounts for every carry.
        let total = self.issued_this_cycle + count;
        self.t += ((total - 1) / width) as u64;
        self.issued_this_cycle = (total - 1) % width + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_net::Topology;

    fn net() -> Network {
        Network::new(Topology::Crossbar { nodes: 4 }, 2)
    }

    fn pipe() -> GroupPipeline {
        GroupPipeline::new(0, 2, 1)
    }

    fn run(units: &[IssueUnit], serialize: bool) -> StepOutcome {
        let mut n = net();
        let mut t = Trace::disabled();
        let mut s = MachineStats::default();
        pipe().run_step(0, units, serialize, &mut n, &mut t, &mut s)
    }

    #[test]
    fn compute_only_step_is_one_cycle_per_unit() {
        let units: Vec<IssueUnit> = (0..10).map(|i| IssueUnit::compute(1, i)).collect();
        let out = run(&units, false);
        assert_eq!(out.cycles(), 10);
        assert_eq!(out.drain_bubbles, 0);
    }

    #[test]
    fn empty_step_takes_one_cycle() {
        let out = run(&[], false);
        assert_eq!(out.cycles(), 1);
    }

    #[test]
    fn short_step_with_memory_drains_bubbles() {
        // Remote roundtrip: 2 hops * 2 cycles + 2 module = 6 cycles; one
        // unit issues in 1 cycle, so ~5 bubbles drain.
        let units = vec![IssueUnit::shared_mem(1, 0, 1)];
        let out = run(&units, false);
        assert_eq!(out.cycles(), 6);
        assert_eq!(out.drain_bubbles, 5);
    }

    #[test]
    fn long_step_hides_memory_latency() {
        // 32 units, each a remote reference: issue takes 32 cycles, far
        // beyond the ~6-cycle roundtrip, so the tail reply lands before
        // issuing ends (modulo destination-port queueing).
        let units: Vec<IssueUnit> = (0..32)
            .map(|i| IssueUnit::shared_mem(1, i, (i % 3) + 1))
            .collect();
        let out = run(&units, false);
        assert!(out.cycles() < 40, "latency not hidden: {out:?}");
        assert!(out.drain_bubbles < 8);
    }

    #[test]
    fn numa_serializes_on_shared_memory() {
        let units: Vec<IssueUnit> = (0..4).map(|i| IssueUnit::shared_mem(1, i, 1)).collect();
        let pram = run(&units, false);
        let numa = run(&units, true);
        assert!(
            numa.cycles() > pram.cycles(),
            "serialized {} vs pipelined {}",
            numa.cycles(),
            pram.cycles()
        );
    }

    #[test]
    fn numa_local_access_is_cheap() {
        // Local latency 1: serialization costs nothing extra at 1 IPC.
        let units: Vec<IssueUnit> = (0..8).map(|i| IssueUnit::local_mem(1, i)).collect();
        let out = run(&units, true);
        assert_eq!(out.cycles(), 8);
    }

    #[test]
    fn trace_records_bubbles_and_issues() {
        let mut n = net();
        let mut tr = Trace::recording();
        let mut s = MachineStats::default();
        let units = vec![IssueUnit::shared_mem(7, 0, 1)];
        pipe().run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(s.shared_refs, 1);
        assert_eq!(s.bubbles, 5);
        assert_eq!(tr.events().len(), 6);
        assert_eq!(tr.events()[0].flow, Some(7));
        assert!(tr.events()[1..].iter().all(|e| e.kind == UnitKind::Bubble));
    }

    #[test]
    fn ilp_width_co_issues_independent_ops() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..32).map(|i| IssueUnit::compute(1, i)).collect();
        let narrow =
            GroupPipeline::with_ilp(0, 2, 1, 1).run_step(0, &units, false, &mut n, &mut tr, &mut s);
        let wide =
            GroupPipeline::with_ilp(0, 2, 1, 4).run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(narrow.cycles(), 32);
        assert_eq!(wide.cycles(), 8);
    }

    #[test]
    fn ilp_width_does_not_speed_serialized_streams() {
        // A sequential (NUMA) stream has no independent ops to co-issue.
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..8).map(|i| IssueUnit::local_mem(1, i)).collect();
        let narrow =
            GroupPipeline::with_ilp(0, 2, 1, 1).run_step(0, &units, true, &mut n, &mut tr, &mut s);
        let wide =
            GroupPipeline::with_ilp(0, 2, 1, 4).run_step(0, &units, true, &mut n, &mut tr, &mut s);
        assert_eq!(narrow.cycles(), wide.cycles());
    }

    #[test]
    fn stats_cycles_track_end() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let p = pipe();
        let out1 = p.run_step(
            0,
            &[IssueUnit::compute(1, 0)],
            false,
            &mut n,
            &mut tr,
            &mut s,
        );
        let out2 = p.run_step(
            out1.end_cycle,
            &[IssueUnit::compute(1, 0)],
            false,
            &mut n,
            &mut tr,
            &mut s,
        );
        // Step counting belongs to the machine, not the pipeline.
        assert_eq!(s.steps, 0);
        assert_eq!(s.cycles, out2.end_cycle);
    }

    /// Expands a compressed sequence and checks the compressed path gives
    /// the same timing, statistics, network state, and trace as the
    /// uncompressed one.
    fn assert_seq_matches_expanded(seqs: &[UnitSeq], serialize: bool, ilp: usize, recording: bool) {
        let expanded: Vec<IssueUnit> = seqs
            .iter()
            .flat_map(|s| (0..s.len()).map(move |k| s.unit_at(k)))
            .collect();
        let p = GroupPipeline::with_ilp(0, 2, 1, ilp);
        let mk_trace = || {
            if recording {
                Trace::recording()
            } else {
                Trace::disabled()
            }
        };

        let mut n1 = net();
        let mut t1 = mk_trace();
        let mut s1 = MachineStats::default();
        let out1 = p.run_step(7, &expanded, serialize, &mut n1, &mut t1, &mut s1);

        let mut n2 = net();
        let mut t2 = mk_trace();
        let mut s2 = MachineStats::default();
        let out2 = p.run_step_seq(7, seqs, serialize, &mut n2, &mut t2, &mut s2);

        assert_eq!(out1, out2, "outcome diverged (serialize={serialize})");
        assert_eq!(s1, s2, "stats diverged (serialize={serialize})");
        // `route_sends` counts which send API delivered a message, not
        // what was delivered — the compressed path reuses route handles
        // where the expanded path resolves per message, so it is the one
        // NetStats field allowed to differ between the two.
        let mut net1 = n1.stats().clone();
        let mut net2 = n2.stats().clone();
        net1.route_sends = 0;
        net2.route_sends = 0;
        assert_eq!(net1, net2, "net stats diverged");
        assert_eq!(t1.events(), t2.events(), "trace diverged");
    }

    #[test]
    fn compressed_runs_match_expanded_units() {
        let cases: Vec<Vec<UnitSeq>> = vec![
            vec![],
            vec![UnitSeq::ComputeRun {
                flow: 1,
                thread0: 0,
                count: 17,
            }],
            vec![
                UnitSeq::One(IssueUnit::fetch(1)),
                UnitSeq::ComputeRun {
                    flow: 1,
                    thread0: 4,
                    count: 5,
                },
                UnitSeq::LocalRun {
                    flow: 1,
                    thread0: 4,
                    count: 3,
                },
                UnitSeq::One(IssueUnit::overhead(2)),
            ],
            vec![
                UnitSeq::One(IssueUnit::fetch(3)),
                UnitSeq::SharedRun {
                    flow: 3,
                    thread0: 0,
                    count: 13,
                    node0: 2,
                    node_step: 1,
                    nodes: 4,
                },
                UnitSeq::ComputeRun {
                    flow: 3,
                    thread0: 0,
                    count: 13,
                },
            ],
            vec![
                UnitSeq::SharedRun {
                    flow: 5,
                    thread0: 8,
                    count: 9,
                    node0: 0,
                    node_step: 3,
                    nodes: 4,
                },
                UnitSeq::SharedRun {
                    flow: 6,
                    thread0: 0,
                    count: 6,
                    node0: 1,
                    node_step: 0,
                    nodes: 4,
                },
            ],
            vec![
                UnitSeq::ComputeRun {
                    flow: 9,
                    thread0: 0,
                    count: 0,
                },
                UnitSeq::One(IssueUnit::idle()),
                UnitSeq::ComputeRun {
                    flow: 9,
                    thread0: 0,
                    count: 1,
                },
            ],
            // Mid-cycle start into a large same-module run, then a second
            // run to the same module against warmed link/module occupancy
            // — the closed-form tail replay must match per message.
            vec![
                UnitSeq::One(IssueUnit::compute(7, 0)),
                UnitSeq::One(IssueUnit::compute(7, 1)),
                UnitSeq::SharedRun {
                    flow: 7,
                    thread0: 0,
                    count: 100,
                    node0: 3,
                    node_step: 0,
                    nodes: 4,
                },
                UnitSeq::SharedRun {
                    flow: 7,
                    thread0: 100,
                    count: 23,
                    node0: 3,
                    node_step: 0,
                    nodes: 4,
                },
            ],
            // Same-module run to the group's own node: both routes are
            // zero-hop, only the module serializes.
            vec![
                UnitSeq::SharedRun {
                    flow: 8,
                    thread0: 0,
                    count: 41,
                    node0: 0,
                    node_step: 0,
                    nodes: 4,
                },
                UnitSeq::One(IssueUnit::shared_mem(8, 41, 0)),
            ],
            // Long local run entered mid-cycle, then more locals — the
            // serialized closed form (NUMA bunch shape) must carry the
            // cadence exactly like the per-unit replay.
            vec![
                UnitSeq::One(IssueUnit::fetch(4)),
                UnitSeq::One(IssueUnit::compute(4, 0)),
                UnitSeq::LocalRun {
                    flow: 4,
                    thread0: 1,
                    count: 57,
                },
                UnitSeq::One(IssueUnit::local_mem(4, 58)),
                UnitSeq::LocalRun {
                    flow: 4,
                    thread0: 59,
                    count: 1,
                },
                UnitSeq::ComputeRun {
                    flow: 4,
                    thread0: 60,
                    count: 4,
                },
            ],
        ];
        for seqs in &cases {
            for serialize in [false, true] {
                for ilp in [1, 4] {
                    for recording in [false, true] {
                        assert_seq_matches_expanded(seqs, serialize, ilp, recording);
                    }
                }
            }
        }
    }

    #[test]
    fn compressed_cadence_carries_partial_cycles() {
        // A run that starts mid-cycle must fold the already-issued lanes
        // into its carry arithmetic (ilp 4: 3 singles + run of 10 = 13
        // units → 4 cycles).
        let seqs = vec![
            UnitSeq::One(IssueUnit::compute(1, 0)),
            UnitSeq::One(IssueUnit::compute(1, 1)),
            UnitSeq::One(IssueUnit::compute(1, 2)),
            UnitSeq::ComputeRun {
                flow: 1,
                thread0: 3,
                count: 10,
            },
        ];
        assert_seq_matches_expanded(&seqs, false, 4, false);
        let mut n = net();
        let mut t = Trace::disabled();
        let mut s = MachineStats::default();
        let out = GroupPipeline::with_ilp(0, 2, 1, 4)
            .run_step_seq(0, &seqs, false, &mut n, &mut t, &mut s);
        assert_eq!(out.cycles(), 4);
        assert_eq!(out.issued, 13);
    }

    #[test]
    fn shared_memory_roundtrips_land_in_histogram() {
        let mut n = net();
        let mut tr = Trace::disabled();
        let mut s = MachineStats::default();
        let units: Vec<IssueUnit> = (0..4).map(|i| IssueUnit::shared_mem(1, i, 1)).collect();
        pipe().run_step(0, &units, false, &mut n, &mut tr, &mut s);
        assert_eq!(s.mem_roundtrip.count(), 4);
        // Uncontended remote roundtrip: 2 hops * 2 cycles + 2 module.
        assert!(s.mem_roundtrip.max() >= 6);
    }
}
