//! Machine-level execution statistics.

use serde::{Deserialize, Serialize};
use tcf_obs::LatencyHistogram;

use crate::trace::UnitKind;

/// Counters accumulated while stepping a machine.
///
/// These are the raw measurements behind the Table 1 reproduction: fetch
/// counts per TCF, task-switch overhead cycles, bubbles (utilization), and
/// step/cycle totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Machine steps executed.
    pub steps: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Compute operations issued.
    pub compute_ops: u64,
    /// Shared-memory references issued.
    pub shared_refs: u64,
    /// Local-memory references issued.
    pub local_refs: u64,
    /// Instruction fetches performed.
    pub fetches: u64,
    /// Idle issue cycles (latency not hidden / nothing to run).
    pub bubbles: u64,
    /// Cycles spent on flow management (TCF buffer reloads, split/join
    /// bookkeeping, context switches).
    pub overhead_cycles: u64,
    /// Local-memory references caused by register-file overflow (operand
    /// spills of over-thick flows, §3.3). Also counted in `local_refs`.
    pub spill_refs: u64,
    /// Distribution of shared-memory round-trip latencies (issue to reply
    /// arrival, in cycles) as observed by the issue pipeline.
    pub mem_roundtrip: LatencyHistogram,
}

impl MachineStats {
    /// Records one issued unit.
    #[inline]
    pub fn count_unit(&mut self, kind: UnitKind) {
        match kind {
            UnitKind::Compute => self.compute_ops += 1,
            UnitKind::MemShared => self.shared_refs += 1,
            UnitKind::MemLocal => self.local_refs += 1,
            UnitKind::Fetch => self.fetches += 1,
            UnitKind::Bubble => self.bubbles += 1,
            UnitKind::FlowOverhead => self.overhead_cycles += 1,
        }
    }

    /// Records `n` issued units of the same kind (run-length counting
    /// for compressed unit sequences).
    #[inline]
    pub fn count_units(&mut self, kind: UnitKind, n: u64) {
        match kind {
            UnitKind::Compute => self.compute_ops += n,
            UnitKind::MemShared => self.shared_refs += n,
            UnitKind::MemLocal => self.local_refs += n,
            UnitKind::Fetch => self.fetches += n,
            UnitKind::Bubble => self.bubbles += n,
            UnitKind::FlowOverhead => self.overhead_cycles += n,
        }
    }

    /// Total operations issued (excluding bubbles and overhead).
    pub fn issued(&self) -> u64 {
        self.compute_ops + self.shared_refs + self.local_refs + self.fetches
    }

    /// Issue-slot utilization: issued / (issued + bubbles + overhead).
    pub fn utilization(&self) -> f64 {
        let total = self.issued() + self.bubbles + self.overhead_cycles;
        if total == 0 {
            return 0.0;
        }
        self.issued() as f64 / total as f64
    }

    /// Merges another accumulator into this one (cycle counters take the
    /// max — groups run in parallel — while work counters add).
    pub fn merge_parallel(&mut self, other: &MachineStats) {
        self.steps = self.steps.max(other.steps);
        self.cycles = self.cycles.max(other.cycles);
        self.compute_ops += other.compute_ops;
        self.shared_refs += other.shared_refs;
        self.local_refs += other.local_refs;
        self.fetches += other.fetches;
        self.bubbles += other.bubbles;
        self.overhead_cycles += other.overhead_cycles;
        self.spill_refs += other.spill_refs;
        self.mem_roundtrip.merge(&other.mem_roundtrip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_utilization() {
        let mut s = MachineStats::default();
        s.count_unit(UnitKind::Compute);
        s.count_unit(UnitKind::MemShared);
        s.count_unit(UnitKind::Bubble);
        s.count_unit(UnitKind::Fetch);
        assert_eq!(s.issued(), 3);
        assert!((s.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_utilization_is_zero() {
        assert_eq!(MachineStats::default().utilization(), 0.0);
    }

    #[test]
    fn parallel_merge_maxes_time_sums_work() {
        let mut a = MachineStats {
            steps: 5,
            cycles: 100,
            compute_ops: 10,
            ..Default::default()
        };
        let b = MachineStats {
            steps: 7,
            cycles: 80,
            compute_ops: 20,
            bubbles: 3,
            ..Default::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.steps, 7);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.compute_ops, 30);
        assert_eq!(a.bubbles, 3);
    }
}
