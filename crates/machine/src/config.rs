//! Machine parameters and structural inventory.

use serde::{Deserialize, Serialize};

use tcf_mem::{CrcwPolicy, ModuleMap};
use tcf_net::Topology;

/// Parameters of one (extended) PRAM-NUMA machine.
///
/// Mirrors the paper's machine organisation: `P` processor groups of `T_p`
/// processors/thread-slots each, a shared memory of `M = P` modules behind
/// a distance-aware network, one local memory block per group, and — in
/// the extended model — a TCF storage buffer per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of processor groups `P` (also the number of shared-memory
    /// modules and network nodes).
    pub groups: usize,
    /// Thread slots per group `T_p` (hardware threads in baseline models;
    /// the issue window of a TCF processor in the extended model).
    pub threads_per_group: usize,
    /// General registers per thread `R`.
    pub regs_per_thread: usize,
    /// Shared memory size in words.
    pub shared_size: usize,
    /// Local memory block size in words (per group).
    pub local_size: usize,
    /// Network topology connecting the groups/modules.
    pub topology: Topology,
    /// Network latency per hop, in cycles.
    pub hop_latency: u64,
    /// Access latency of a memory module once a reference arrives, in
    /// cycles.
    pub module_latency: u64,
    /// Access latency of the group-local memory block, in cycles.
    pub local_latency: u64,
    /// Capacity of the TCF storage buffer (flow descriptors resident per
    /// group). Ignored by the baseline (thread-based) models.
    pub tcf_buffer_slots: usize,
    /// Cycles to load a flow descriptor into the TCF buffer from memory
    /// when it is not resident (the task-switch penalty beyond capacity).
    pub tcf_load_cost: u64,
    /// Capacity (in words) of the cached register file holding
    /// *per-thread* register values per group (§3.3's operand-storage
    /// problem: unbounded thickness cannot fit a physical register file).
    /// When a fragment's per-thread register footprint exceeds this, each
    /// of its thick operations pays one extra local-memory access (the
    /// operands live in the local memory). 0 disables the limit.
    pub reg_cache_words: usize,
    /// Functional units issuing per cycle in PRAM mode (ILP-TLP
    /// co-execution, §3.2): the independent operations of a thick
    /// instruction can fill multiple issue slots per cycle. Sequential
    /// (NUMA-mode) streams do not benefit — exactly the paper's point that
    /// ILP without TLP is limited by dependences. Must be ≥ 1.
    pub ilp_width: usize,
    /// Address-to-module placement of the shared memory.
    pub module_map: ModuleMap,
    /// Concurrent-write policy of the shared memory.
    pub crcw: CrcwPolicy,
}

impl MachineConfig {
    /// A small machine suitable for unit tests: `P = 4`, `T_p = 16`,
    /// crossbar network.
    pub fn small() -> MachineConfig {
        MachineConfig {
            groups: 4,
            threads_per_group: 16,
            regs_per_thread: 32,
            shared_size: 1 << 16,
            local_size: 1 << 12,
            topology: Topology::Crossbar { nodes: 4 },
            hop_latency: 2,
            module_latency: 2,
            local_latency: 1,
            tcf_buffer_slots: 16,
            tcf_load_cost: 8,
            reg_cache_words: 0,
            ilp_width: 1,
            module_map: ModuleMap::Interleaved,
            crcw: CrcwPolicy::Arbitrary,
        }
    }

    /// The paper-scale default: `P = 16`, `T_p = 64` threads (ECLIPSE-like
    /// dimensioning), mesh network, hashed placement.
    pub fn default_machine() -> MachineConfig {
        MachineConfig {
            groups: 16,
            threads_per_group: 64,
            regs_per_thread: 32,
            shared_size: 1 << 20,
            local_size: 1 << 14,
            topology: Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            hop_latency: 1,
            module_latency: 2,
            local_latency: 1,
            tcf_buffer_slots: 64,
            tcf_load_cost: 16,
            reg_cache_words: 0,
            ilp_width: 1,
            module_map: ModuleMap::linear(0xC0FFEE),
            crcw: CrcwPolicy::Arbitrary,
        }
    }

    /// Total hardware threads `P × T_p`.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.groups * self.threads_per_group
    }

    /// Checks internal consistency; panics with a description on error.
    ///
    /// Configurations are constructed by humans and benches, not from
    /// untrusted input, so a panic with a clear message is the most useful
    /// failure mode.
    pub fn validate(&self) {
        assert!(self.groups > 0, "machine needs at least one group");
        assert!(
            self.threads_per_group > 0,
            "groups need at least one thread slot"
        );
        assert!(self.regs_per_thread > 0, "need at least one register");
        assert_eq!(
            self.topology.nodes(),
            self.groups,
            "topology must have exactly one node per group"
        );
        assert!(self.hop_latency >= 1, "hop latency must be >= 1");
        assert!(self.ilp_width >= 1, "need at least one functional unit");
        assert!(self.shared_size > 0, "shared memory must be non-empty");
    }

    /// Worst-case contention-free round trip of a shared-memory reference:
    /// request out, module service, reply back.
    pub fn max_mem_roundtrip(&self) -> u64 {
        2 * self.topology.diameter() as u64 * self.hop_latency + self.module_latency
    }

    /// Human-readable component inventory — the structural content of the
    /// paper's machine organisation figures (1: ESM, 2: PRAM-NUMA, 5:
    /// extended PRAM-NUMA).
    pub fn inventory(&self, extended: bool) -> String {
        let mut out = String::new();
        let model = if extended {
            "extended PRAM-NUMA (TCF) machine"
        } else {
            "PRAM-NUMA machine"
        };
        out.push_str(&format!("{model}\n"));
        out.push_str(&format!(
            "  processors      : {} groups x {} {} = {} total\n",
            self.groups,
            self.threads_per_group,
            if extended { "TCF slots" } else { "threads" },
            self.total_threads(),
        ));
        out.push_str(&format!(
            "  registers       : {} per thread\n",
            self.regs_per_thread
        ));
        out.push_str(&format!(
            "  shared memory   : {} words over {} modules ({:?} placement, {:?} CRCW)\n",
            self.shared_size, self.groups, self.module_map, self.crcw
        ));
        out.push_str(&format!(
            "  local memories  : {} blocks x {} words, latency {} cycles\n",
            self.groups, self.local_size, self.local_latency
        ));
        out.push_str(&format!(
            "  network         : {:?}, {} cycle(s)/hop, diameter {}, max roundtrip {} cycles\n",
            self.topology,
            self.hop_latency,
            self.topology.diameter(),
            self.max_mem_roundtrip()
        ));
        if extended {
            out.push_str(&format!(
                "  TCF buffer      : {} flow descriptors per group, {} cycle reload\n",
                self.tcf_buffer_slots, self.tcf_load_cost
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::small().validate();
        MachineConfig::default_machine().validate();
    }

    #[test]
    fn total_threads() {
        assert_eq!(MachineConfig::small().total_threads(), 64);
        assert_eq!(MachineConfig::default_machine().total_threads(), 1024);
    }

    #[test]
    #[should_panic(expected = "one node per group")]
    fn topology_group_mismatch_panics() {
        let mut c = MachineConfig::small();
        c.groups = 5;
        c.validate();
    }

    #[test]
    fn roundtrip_bound() {
        let c = MachineConfig::small();
        // Crossbar diameter 1, hop 2, module 2 => 2*1*2 + 2 = 6.
        assert_eq!(c.max_mem_roundtrip(), 6);
    }

    #[test]
    fn inventory_mentions_components() {
        let c = MachineConfig::small();
        let basic = c.inventory(false);
        assert!(basic.contains("PRAM-NUMA machine"));
        assert!(basic.contains("4 groups x 16 threads"));
        assert!(!basic.contains("TCF buffer"));
        let ext = c.inventory(true);
        assert!(ext.contains("extended PRAM-NUMA"));
        assert!(ext.contains("TCF buffer"));
        assert!(ext.contains("16 flow descriptors"));
    }
}
