//! Execution traces — re-exported from `tcf-obs`.
//!
//! The trace model (per-cycle issue records, Gantt rendering, CSV export,
//! ring-buffer mode) lives in the [`tcf_obs`] observability crate so that
//! every layer of the stack shares one vocabulary; this module re-exports
//! it under the historical `tcf_machine::trace` paths so existing callers
//! keep compiling.

pub use tcf_obs::trace::{FlowTag, Trace, TraceEvent, UnitKind};

#[cfg(test)]
mod tests {
    use super::*;

    // The substantive trace tests live in `tcf-obs`; this pins the
    // re-exported paths and glyphs the machine crate relies on.
    #[test]
    fn reexported_trace_is_usable() {
        let mut t = Trace::recording();
        t.push(TraceEvent {
            cycle: 0,
            group: 0,
            flow: Some(1 as FlowTag),
            thread: None,
            kind: UnitKind::Compute,
        });
        assert_eq!(t.events().len(), 1);
        assert_eq!(UnitKind::Compute.glyph(), '#');
        assert_eq!(UnitKind::FlowOverhead.as_str(), "overhead");
    }
}
