//! Execution traces and their ASCII Gantt rendering.
//!
//! The paper illustrates each execution-model variant with a *single
//! processor view*: time on the horizontal axis, what the processor's
//! issue slot is doing in each cycle (which flow, which implicit thread,
//! or a bubble). [`Trace`] records exactly that, and [`Trace::gantt`]
//! renders it, which is how the `repro` binary regenerates Figures 6–13.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Identifier of a flow (TCF) or, in baseline models, of a thread bunch.
pub type FlowTag = u32;

/// What an issue slot did in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitKind {
    /// Executed an ALU/compute operation.
    Compute,
    /// Issued a shared-memory reference.
    MemShared,
    /// Issued a local-memory reference.
    MemLocal,
    /// Fetched an instruction (NUMA mode / per-thread fetch accounting).
    Fetch,
    /// Waited — no operation available or replies outstanding.
    Bubble,
    /// Spent a cycle on flow management (TCF buffer reload, split/join
    /// bookkeeping).
    FlowOverhead,
}

impl UnitKind {
    /// One-character cell used in Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            UnitKind::Compute => '#',
            UnitKind::MemShared => 'M',
            UnitKind::MemLocal => 'L',
            UnitKind::Fetch => 'F',
            UnitKind::Bubble => '.',
            UnitKind::FlowOverhead => '+',
        }
    }
}

/// One cycle of one group's issue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle number (machine-global time).
    pub cycle: u64,
    /// Processor group.
    pub group: usize,
    /// Flow (or bunch) occupying the slot; `None` for a bubble.
    pub flow: Option<FlowTag>,
    /// Implicit thread index within the flow, when meaningful.
    pub thread: Option<usize>,
    /// What happened.
    pub kind: UnitKind,
}

/// A recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A recording trace.
    pub fn recording() -> Trace {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled trace: `push` is a no-op. Benches use this so tracing
    /// overhead never pollutes timing measurements.
    pub fn disabled() -> Trace {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of non-bubble cycles per group.
    pub fn busy_cycles(&self, group: usize) -> u64 {
        self.events
            .iter()
            .filter(|e| e.group == group && e.kind != UnitKind::Bubble)
            .count() as u64
    }

    /// Utilization of a group over the traced window: busy / total events.
    pub fn utilization(&self, group: usize) -> f64 {
        let total = self.events.iter().filter(|e| e.group == group).count();
        if total == 0 {
            return 0.0;
        }
        self.busy_cycles(group) as f64 / total as f64
    }

    /// Renders the single-processor-view Gantt strip of one group.
    ///
    /// One row per flow (plus a bubble row), one column per cycle; each
    /// cell is the [`UnitKind::glyph`] of what the slot executed for that
    /// flow in that cycle. This is the visual language of the paper's
    /// Figures 6–12.
    pub fn gantt(&self, group: usize) -> String {
        let events: Vec<&TraceEvent> = self.events.iter().filter(|e| e.group == group).collect();
        if events.is_empty() {
            return format!("group {group}: (no events)\n");
        }
        let t0 = events.iter().map(|e| e.cycle).min().unwrap();
        let t1 = events.iter().map(|e| e.cycle).max().unwrap();
        let width = (t1 - t0 + 1) as usize;

        let mut rows: BTreeMap<Option<FlowTag>, Vec<char>> = BTreeMap::new();
        for e in &events {
            let key = if e.kind == UnitKind::Bubble { None } else { e.flow };
            rows.entry(key)
                .or_insert_with(|| vec![' '; width])[(e.cycle - t0) as usize] = e.kind.glyph();
        }

        let mut out = String::new();
        let _ = writeln!(out, "group {group}, cycles {t0}..={t1}");
        for (flow, cells) in rows {
            let label = match flow {
                Some(f) => format!("flow {f:>3}"),
                None => "  (idle)".to_string(),
            };
            let _ = writeln!(out, "  {label} |{}|", cells.into_iter().collect::<String>());
        }
        out
    }

    /// Clears all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Exports the trace as CSV (`cycle,group,flow,thread,kind`), for
    /// external plotting of schedules. `flow`/`thread` are empty for
    /// bubbles.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,group,flow,thread,kind\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{},{},{},{:?}",
                e.cycle,
                e.group,
                e.flow.map(|f| f.to_string()).unwrap_or_default(),
                e.thread.map(|t| t.to_string()).unwrap_or_default(),
                e.kind
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, flow: Option<FlowTag>, kind: UnitKind) -> TraceEvent {
        TraceEvent {
            cycle,
            group: 0,
            flow,
            thread: None,
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(ev(0, Some(1), UnitKind::Compute));
        assert!(t.events().is_empty());
    }

    #[test]
    fn utilization_counts_bubbles() {
        let mut t = Trace::recording();
        t.push(ev(0, Some(1), UnitKind::Compute));
        t.push(ev(1, None, UnitKind::Bubble));
        t.push(ev(2, Some(1), UnitKind::MemShared));
        t.push(ev(3, None, UnitKind::Bubble));
        assert_eq!(t.busy_cycles(0), 2);
        assert!((t.utilization(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gantt_renders_rows_per_flow() {
        let mut t = Trace::recording();
        t.push(ev(10, Some(1), UnitKind::Compute));
        t.push(ev(11, Some(2), UnitKind::MemShared));
        t.push(ev(12, None, UnitKind::Bubble));
        let g = t.gantt(0);
        assert!(g.contains("flow   1 |#  |"));
        assert!(g.contains("flow   2 | M |"));
        assert!(g.contains("(idle) |  .|"));
    }

    #[test]
    fn gantt_empty_group() {
        let t = Trace::recording();
        assert!(t.gantt(3).contains("no events"));
    }

    #[test]
    fn csv_export() {
        let mut t = Trace::recording();
        t.push(ev(5, Some(2), UnitKind::MemShared));
        t.push(ev(6, None, UnitKind::Bubble));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,group,flow,thread,kind");
        assert_eq!(lines[1], "5,0,2,,MemShared");
        assert_eq!(lines[2], "6,0,,,Bubble");
    }
}
