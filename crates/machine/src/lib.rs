#![warn(missing_docs)]
//! # tcf-machine — cycle-level CESM machine model
//!
//! The Configurable Emulated Shared Memory machine (CESM) underlying the
//! PRAM-NUMA model consists of `P` multithreaded processors (groups of
//! `T_p` thread slots) connected to distributed memory modules through a
//! distance-aware network; the extended model adds a **TCF storage buffer**
//! to each processor's front end so flows, not threads, are the scheduled
//! unit (Forsell & Leppänen, §3.3, Figure 13).
//!
//! This crate is the *timing* layer shared by both runtimes:
//!
//! * [`MachineConfig`] — the machine's parameters (`P`, `T_p`, `R`,
//!   topology, latencies, TCF buffer capacity) and its component inventory
//!   (Figures 1, 2 and 5 are reproduced as structural descriptions of this
//!   config),
//! * [`GroupPipeline`] — per-group issue engine: one operation per cycle,
//!   memory round trips through [`tcf_net::Network`], steps end when every
//!   unit has issued *and* every reply has returned, which reproduces the
//!   ESM latency-hiding law (utilization collapses when the issue window is
//!   shorter than the memory latency — Figure 6),
//! * [`TcfBuffer`] — the flow descriptor store whose residency determines
//!   whether a task switch is free (the Table 1 `cost of task switch` row),
//! * [`Trace`] — per-cycle, per-slot execution records with an ASCII Gantt
//!   rendering used to regenerate the schedule figures (7–12) and the
//!   pipeline occupancy figure (13).
//!
//! Functional execution (register/memory contents) lives in `tcf-pram` and
//! `tcf-core`; they feed issue units into this crate to obtain cycle
//! counts and traces, so timing assumptions cannot drift between models.

pub mod config;
pub mod pipeline;
pub mod stats;
pub mod tcf_buffer;
pub mod trace;

pub use config::MachineConfig;
pub use pipeline::{GroupPipeline, IssueUnit, StepOutcome, UnitSeq};
pub use stats::MachineStats;
pub use tcf_buffer::{FlowDesc, FlowMode, TcfBuffer};
pub use trace::{FlowTag, Trace, TraceEvent, UnitKind};
