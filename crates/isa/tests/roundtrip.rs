//! Property tests: assembler ⇄ disassembler and encoder ⇄ decoder round
//! trips over arbitrary instructions.

use proptest::prelude::*;
use std::collections::BTreeMap;

use tcf_isa::asm::assemble;
use tcf_isa::encode::{decode, encode};
use tcf_isa::instr::{BrCond, Instr, MemSpace, MultiKind, Operand, SplitArm, Target};
use tcf_isa::op::AluOp;
use tcf_isa::program::Program;
use tcf_isa::reg::{Reg, SpecialReg, NUM_REGS};
use tcf_isa::word::Word;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..NUM_REGS as u8).prop_map(Reg::new)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<Word>().prop_map(Operand::Imm),
    ]
}

fn arb_space() -> impl Strategy<Value = MemSpace> {
    prop_oneof![Just(MemSpace::Shared), Just(MemSpace::Local)]
}

fn arb_multikind() -> impl Strategy<Value = MultiKind> {
    prop::sample::select(&MultiKind::ALL[..])
}

/// Targets always resolve to instruction 0, which exists in the one-or-more
/// instruction programs we generate.
fn arb_target() -> impl Strategy<Value = Target> {
    Just(Target::Abs(0))
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let off = -1024_i64..1024_i64;
    prop_oneof![
        (
            prop::sample::select(&AluOp::ALL[..]),
            arb_reg(),
            arb_reg(),
            arb_operand()
        )
            .prop_map(|(op, rd, ra, rb)| {
                // Unary ops print without rb; normalize so display
                // round-trips structurally.
                let rb = if op.is_unary() {
                    Operand::Reg(Reg::ZERO)
                } else {
                    rb
                };
                Instr::Alu { op, rd, ra, rb }
            }),
        (arb_reg(), any::<Word>()).prop_map(|(rd, imm)| Instr::Ldi { rd, imm }),
        (arb_reg(), prop::sample::select(&SpecialReg::ALL[..]))
            .prop_map(|(rd, sr)| Instr::Mfs { rd, sr }),
        (arb_reg(), arb_reg(), arb_reg(), arb_operand())
            .prop_map(|(rd, cond, rt, rf)| Instr::Sel { rd, cond, rt, rf }),
        (arb_reg(), arb_reg(), off.clone(), arb_space()).prop_map(|(rd, base, off, space)| {
            Instr::Ld {
                rd,
                base,
                off,
                space,
            }
        }),
        (arb_reg(), arb_reg(), off.clone(), arb_space()).prop_map(|(rs, base, off, space)| {
            Instr::St {
                rs,
                base,
                off,
                space,
            }
        }),
        (arb_reg(), arb_reg(), arb_reg(), off.clone(), arb_space()).prop_map(
            |(cond, rs, base, off, space)| Instr::StMasked {
                cond,
                rs,
                base,
                off,
                space,
            }
        ),
        (arb_multikind(), arb_reg(), off.clone(), arb_reg()).prop_map(|(kind, base, off, rs)| {
            Instr::MultiOp {
                kind,
                base,
                off,
                rs,
            }
        }),
        (
            arb_multikind(),
            arb_reg(),
            arb_reg(),
            off.clone(),
            arb_reg()
        )
            .prop_map(|(kind, rd, base, off, rs)| Instr::MultiPrefix {
                kind,
                rd,
                base,
                off,
                rs,
            }),
        arb_target().prop_map(|target| Instr::Jmp { target }),
        (
            prop::sample::select(&BrCond::ALL[..]),
            arb_reg(),
            arb_target()
        )
            .prop_map(|(cond, rs, target)| Instr::Br { cond, rs, target }),
        arb_target().prop_map(|target| Instr::Call { target }),
        Just(Instr::Ret),
        arb_operand().prop_map(|src| Instr::SetThick { src }),
        arb_operand().prop_map(|slots| Instr::Numa { slots }),
        Just(Instr::EndNuma),
        prop::collection::vec((arb_operand(), arb_target()), 1..4).prop_map(|arms| {
            Instr::Split {
                arms: arms
                    .into_iter()
                    .map(|(thickness, target)| SplitArm { thickness, target })
                    .collect(),
            }
        }),
        Just(Instr::Join),
        (arb_operand(), arb_target()).prop_map(|(count, target)| Instr::Spawn { count, target }),
        Just(Instr::SJoin),
        Just(Instr::Sync),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

fn program_of(instrs: Vec<Instr>) -> Program {
    Program::new(instrs, BTreeMap::new(), vec![]).expect("valid program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn assembler_roundtrips_listing(instrs in prop::collection::vec(arb_instr(), 1..40)) {
        let p = program_of(instrs);
        let listing = p.listing();
        let q = assemble(&listing).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{listing}"));
        prop_assert_eq!(&p.instrs, &q.instrs);
    }

    #[test]
    fn binary_roundtrips(instrs in prop::collection::vec(arb_instr(), 1..40)) {
        let p = program_of(instrs);
        let bin = encode(&p).unwrap();
        let q = decode(&bin).unwrap();
        prop_assert_eq!(&p.instrs, &q.instrs);
        prop_assert_eq!(p.entry, q.entry);
    }
}
