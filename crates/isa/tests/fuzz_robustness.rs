//! Robustness properties: the assembler and the binary decoder must never
//! panic on arbitrary input — they return structured errors instead.

use proptest::prelude::*;

use tcf_isa::asm::assemble;
use tcf_isa::encode::{decode, encode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary text never panics the assembler.
    #[test]
    fn assembler_total_on_arbitrary_text(src in "\\PC{0,200}") {
        let _ = assemble(&src);
    }

    /// Arbitrary near-assembly (mnemonic-ish tokens) never panics either.
    #[test]
    fn assembler_total_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("add".to_string()),
                Just("ld".to_string()),
                Just("split".to_string()),
                Just("r1".to_string()),
                Just("r99".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("->".to_string()),
                Just(":".to_string()),
                Just("-12".to_string()),
                Just("main".to_string()),
                Just(".data".to_string()),
            ],
            0..24
        )
    ) {
        let _ = assemble(&tokens.join(" "));
    }

    /// Arbitrary word streams never panic the decoder.
    #[test]
    fn decoder_total_on_arbitrary_words(words in prop::collection::vec(any::<u64>(), 0..64)) {
        let _ = decode(&words);
    }

    /// Bit-flipping a valid image never panics the decoder.
    #[test]
    fn decoder_total_on_corrupted_image(flip_at in 0usize..64, xor in any::<u64>()) {
        let p = assemble(
            "main:\n setthick 16\n mfs r1, tid\n mpadd r2, [r0+100], r1\n split (4 -> w), (4 -> w)\n halt\nw: join\n",
        )
        .unwrap();
        let mut words = encode(&p).unwrap();
        let idx = flip_at % words.len();
        words[idx] ^= xor;
        let _ = decode(&words);
    }

    /// Truncating a valid image anywhere never panics the decoder.
    #[test]
    fn decoder_total_on_truncation(cut in 0usize..100) {
        let p = assemble("main:\n ldi r1, 5\n st r1, [r0+3]\n halt\n").unwrap();
        let words = encode(&p).unwrap();
        let cut = cut.min(words.len());
        let _ = decode(&words[..cut]);
    }
}
