#![warn(missing_docs)]
//! # tcf-isa — instruction set of the extended PRAM-NUMA / TCF machine family
//!
//! This crate defines the word-oriented RISC-style instruction set shared by
//! every execution model in the workspace: the original PRAM-NUMA baseline
//! (`tcf-pram`), the six variants of the extended PRAM-NUMA model
//! (`tcf-core`) and the cycle-level CESM pipeline (`tcf-machine`).
//!
//! The ISA follows the architecture sketched in Forsell & Leppänen,
//! *"An Extended PRAM-NUMA Model of Computation for TCF Programming"*:
//!
//! * plain three-address ALU operations over 64-bit words,
//! * loads/stores against the **shared** (emulated PRAM) and **local**
//!   (NUMA) memory spaces,
//! * **multioperations** (`madd`, `mmax`, …) — concurrent writes to a single
//!   shared-memory word combined by an active memory unit,
//! * **multiprefixes** (`mpadd`, …) — the ordered variant returning the
//!   prefix value to each participating thread,
//! * **TCF control**: setting the thickness of the current flow
//!   (`setthick`), entering NUMA mode (`numa`, thickness `1/T`), splitting a
//!   flow into parallel child flows (`split`/`join`), and the asynchronous
//!   `spawn`/`sjoin` pair used by the Multi-instruction (XMT-like) variant.
//!
//! The crate also provides a text assembler ([`asm::assemble`]), a
//! disassembler (the [`core::fmt::Display`] impls), a programmatic
//! [`builder::ProgramBuilder`] used by the `tcf-lang` compiler, and a
//! variable-length binary encoding ([`encode`]).
//!
//! Instruction *semantics* that are identical across all execution models —
//! pure ALU evaluation — live here too ([`op::AluOp::eval`]), so that the
//! baseline and the extended model cannot drift apart.

pub mod asm;
pub mod builder;
pub mod encode;
pub mod error;
pub mod instr;
pub mod op;
pub mod program;
pub mod reg;
pub mod word;

pub use builder::ProgramBuilder;
pub use error::IsaError;
pub use instr::{BrCond, Instr, MemSpace, MultiKind, Operand, SplitArm, Target};
pub use op::AluOp;
pub use program::{DataBlock, Program};
pub use reg::{Reg, SpecialReg, NUM_REGS};
pub use word::{Addr, Word};
