//! Instruction forms of the TCF machine family.
//!
//! The set decomposes into four groups:
//!
//! 1. **Scalar compute** (`Alu`, `Ldi`, `Mfs`, `Sel`) — executed per implicit
//!    thread of a flow.
//! 2. **Memory** (`Ld`, `St`, `StMasked`, `MultiOp`, `MultiPrefix`) — against
//!    the shared (PRAM) or local (NUMA) memory space.
//! 3. **Control** (`Jmp`, `Br`, `Call`, `Ret`, `Halt`, `Nop`) — flow-wise:
//!    a TCF has one program counter and one call stack regardless of its
//!    thickness, which is the paper's claimed-novel call semantics.
//! 4. **TCF control** (`SetThick`, `Numa`, `Split`, `Join`, `Spawn`,
//!    `SJoin`, `Sync`) — thickness manipulation and flow creation.
//!
//! `Display` impls double as the disassembler; [`crate::asm`] parses the same
//! syntax back, and the two are property-tested as an exact round trip.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::op::AluOp;
use crate::reg::{Reg, SpecialReg};
use crate::word::Word;

/// A source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read a general register.
    Reg(Reg),
    /// A literal word.
    Imm(Word),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Word> for Operand {
    fn from(w: Word) -> Operand {
        Operand::Imm(w)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(w) => write!(f, "{w}"),
        }
    }
}

/// A control-transfer target.
///
/// The assembler and `ProgramBuilder` emit `Label`s; `Program::resolve`
/// rewrites every target to `Abs` before execution. Execution engines treat
/// an unresolved `Label` as a fault.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// A symbolic label, pre-resolution.
    Label(String),
    /// An absolute instruction index, post-resolution.
    Abs(usize),
}

impl Target {
    /// The absolute instruction index, if resolved.
    #[inline]
    pub fn abs(&self) -> Option<usize> {
        match self {
            Target::Abs(i) => Some(*i),
            Target::Label(_) => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, "{l}"),
            Target::Abs(i) => write!(f, "@{i}"),
        }
    }
}

/// Memory space selector: the emulated PRAM shared memory or the processor
/// group's NUMA local memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Word-wise shared memory, distributed over the machine's modules.
    Shared,
    /// The local memory block of the executing processor group.
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
        })
    }
}

/// Combining operator of multioperations and multiprefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MultiKind {
    /// Sum of contributions (`MPADD` of the paper).
    Add,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl MultiKind {
    /// All combining operators.
    pub const ALL: [MultiKind; 6] = [
        MultiKind::Add,
        MultiKind::And,
        MultiKind::Or,
        MultiKind::Xor,
        MultiKind::Max,
        MultiKind::Min,
    ];

    /// Combines two contributions. All operators are associative and
    /// commutative, which the memory unit relies on to combine concurrent
    /// references in arbitrary arrival order.
    #[inline]
    pub fn combine(self, a: Word, b: Word) -> Word {
        match self {
            MultiKind::Add => a.wrapping_add(b),
            MultiKind::And => a & b,
            MultiKind::Or => a | b,
            MultiKind::Xor => a ^ b,
            MultiKind::Max => a.max(b),
            MultiKind::Min => a.min(b),
        }
    }

    /// Identity element of the operator.
    #[inline]
    pub fn identity(self) -> Word {
        match self {
            MultiKind::Add | MultiKind::Or | MultiKind::Xor => 0,
            MultiKind::And => -1,
            MultiKind::Max => Word::MIN,
            MultiKind::Min => Word::MAX,
        }
    }

    /// Mnemonic suffix (`madd`, `mpadd`, …).
    pub fn suffix(self) -> &'static str {
        match self {
            MultiKind::Add => "add",
            MultiKind::And => "and",
            MultiKind::Or => "or",
            MultiKind::Xor => "xor",
            MultiKind::Max => "max",
            MultiKind::Min => "min",
        }
    }

    /// Parses a mnemonic suffix.
    pub fn from_suffix(s: &str) -> Option<MultiKind> {
        MultiKind::ALL.into_iter().find(|k| k.suffix() == s)
    }
}

/// Branch condition of `Br`, testing one register against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrCond {
    /// Taken when `rs == 0`.
    Eqz,
    /// Taken when `rs != 0`.
    Nez,
    /// Taken when `rs < 0`.
    Ltz,
    /// Taken when `rs <= 0`.
    Lez,
    /// Taken when `rs > 0`.
    Gtz,
    /// Taken when `rs >= 0`.
    Gez,
}

impl BrCond {
    /// All branch conditions.
    pub const ALL: [BrCond; 6] = [
        BrCond::Eqz,
        BrCond::Nez,
        BrCond::Ltz,
        BrCond::Lez,
        BrCond::Gtz,
        BrCond::Gez,
    ];

    /// Evaluates the condition.
    #[inline]
    pub fn holds(self, v: Word) -> bool {
        match self {
            BrCond::Eqz => v == 0,
            BrCond::Nez => v != 0,
            BrCond::Ltz => v < 0,
            BrCond::Lez => v <= 0,
            BrCond::Gtz => v > 0,
            BrCond::Gez => v >= 0,
        }
    }

    /// Assembler mnemonic (`beqz`, `bnez`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eqz => "beqz",
            BrCond::Nez => "bnez",
            BrCond::Ltz => "bltz",
            BrCond::Lez => "blez",
            BrCond::Gtz => "bgtz",
            BrCond::Gez => "bgez",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<BrCond> {
        BrCond::ALL.into_iter().find(|c| c.mnemonic() == s)
    }
}

/// One arm of a `split` instruction: a child flow of the given thickness
/// starting at the given target. The child executes until the matching
/// `join`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitArm {
    /// Thickness of the child flow (evaluated flow-wise, must be uniform).
    pub thickness: Operand,
    /// Entry point of the child flow.
    pub target: Target,
}

impl fmt::Display for SplitArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.thickness, self.target)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// Three-address ALU operation, applied per implicit thread.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        ra: Reg,
        /// Second source operand (ignored by unary ops).
        rb: Operand,
    },
    /// Load immediate: `rd = imm`.
    Ldi {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: Word,
    },
    /// Move from special register: `rd = <special>`.
    Mfs {
        /// Destination register.
        rd: Reg,
        /// Which special register to read.
        sr: SpecialReg,
    },
    /// Per-thread conditional select: `rd = cond != 0 ? rt : rf`.
    ///
    /// This is what the Fixed-thickness (SIMD) variant compiles `if` bodies
    /// to, since it lacks control parallelism (paper §4).
    Sel {
        /// Destination register.
        rd: Reg,
        /// Per-thread condition register.
        cond: Reg,
        /// Value when the condition is non-zero.
        rt: Reg,
        /// Value when the condition is zero.
        rf: Operand,
    },
    /// Load `rd = mem[base + off]`.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        off: Word,
        /// Memory space.
        space: MemSpace,
    },
    /// Store `mem[base + off] = rs`.
    St {
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        off: Word,
        /// Memory space.
        space: MemSpace,
    },
    /// Per-thread masked store: threads with `cond != 0` store, others are
    /// inert. Used by the Fixed-thickness variant for guarded writes.
    StMasked {
        /// Per-thread condition register.
        cond: Reg,
        /// Source register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        off: Word,
        /// Memory space.
        space: MemSpace,
    },
    /// Multioperation: all participating threads' `rs` contributions to
    /// `mem[base + off]` are combined by the active memory unit in one step.
    MultiOp {
        /// Combining operator.
        kind: MultiKind,
        /// Base address register.
        base: Reg,
        /// Word offset.
        off: Word,
        /// Per-thread contribution.
        rs: Reg,
    },
    /// Multiprefix: like `MultiOp`, but each thread additionally receives in
    /// `rd` the exclusive prefix (in thread-rank order) of the combination.
    MultiPrefix {
        /// Combining operator.
        kind: MultiKind,
        /// Destination register for the per-thread prefix.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        off: Word,
        /// Per-thread contribution.
        rs: Reg,
    },
    /// Unconditional flow-wise jump.
    Jmp {
        /// Destination.
        target: Target,
    },
    /// Conditional flow-wise branch. The condition must be uniform across
    /// the flow (the paper requires the whole flow to select exactly one
    /// path); divergence is an execution fault.
    Br {
        /// Condition against zero.
        cond: BrCond,
        /// Register tested.
        rs: Reg,
        /// Destination when taken.
        target: Target,
    },
    /// Flow-wise call: the *flow* calls once with all its threads; the call
    /// stack belongs to the flow, not to any thread.
    Call {
        /// Callee entry.
        target: Target,
    },
    /// Flow-wise return.
    Ret,
    /// Set the thickness of the current flow (`#n;` of the tce language).
    SetThick {
        /// New thickness (uniform).
        src: Operand,
    },
    /// Enter NUMA mode with bunch length `T` (`#1/T;` of tce): the flow's
    /// thickness becomes the fraction `1/T`, i.e. one step executes `T`
    /// consecutive instructions of a single sequential stream.
    Numa {
        /// Bunch length `T`.
        slots: Operand,
    },
    /// Leave NUMA mode and restore PRAM-mode execution with thickness 1.
    EndNuma,
    /// Split the current flow into parallel child flows, one per arm; the
    /// parent is suspended until all children reach their `Join` (the
    /// implicit join of the paper's `parallel` statement).
    Split {
        /// Child flows.
        arms: Vec<SplitArm>,
    },
    /// Terminate a child flow created by `Split` and rendezvous with its
    /// siblings.
    Join,
    /// Asynchronous spawn of `count` unit-thickness threads starting at
    /// `target` (the `fork` construct of the Multi-instruction / XMT
    /// variant). The spawning flow continues at `SJoin`, which blocks until
    /// all spawned threads have executed `SJoin` themselves.
    Spawn {
        /// Number of threads to create.
        count: Operand,
        /// Entry point of each spawned thread (thread index in `tid`).
        target: Target,
    },
    /// Join point of `Spawn`.
    SJoin,
    /// Machine-wide step barrier. A no-op in the synchronous variants where
    /// every step is already a barrier; a real rendezvous in the
    /// Multi-instruction variant.
    Sync,
    /// Stop the flow (and the machine once every flow has halted).
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Whether this instruction can transfer control (used by the pipeline
    /// hazard model and by compiler basic-block splitting).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. }
                | Instr::Br { .. }
                | Instr::Call { .. }
                | Instr::Ret
                | Instr::Split { .. }
                | Instr::Join
                | Instr::Spawn { .. }
                | Instr::SJoin
                | Instr::Halt
        )
    }

    /// Whether this instruction accesses memory (any space).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. }
                | Instr::St { .. }
                | Instr::StMasked { .. }
                | Instr::MultiOp { .. }
                | Instr::MultiPrefix { .. }
        )
    }

    /// Collects the control-transfer targets of this instruction, mutably,
    /// so `Program::resolve` can rewrite labels in place.
    pub(crate) fn targets_mut(&mut self) -> Vec<&mut Target> {
        match self {
            Instr::Jmp { target }
            | Instr::Br { target, .. }
            | Instr::Call { target }
            | Instr::Spawn { target, .. } => vec![target],
            Instr::Split { arms } => arms.iter_mut().map(|a| &mut a.target).collect(),
            _ => Vec::new(),
        }
    }

    /// Collects the control-transfer targets of this instruction.
    pub fn targets(&self) -> Vec<&Target> {
        match self {
            Instr::Jmp { target }
            | Instr::Br { target, .. }
            | Instr::Call { target }
            | Instr::Spawn { target, .. } => vec![target],
            Instr::Split { arms } => arms.iter().map(|a| &a.target).collect(),
            _ => Vec::new(),
        }
    }
}

fn space_suffix(space: MemSpace) -> &'static str {
    match space {
        MemSpace::Shared => "",
        MemSpace::Local => "l",
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, rd, ra, rb } => {
                if op.is_unary() {
                    write!(f, "{op} {rd}, {ra}")
                } else {
                    write!(f, "{op} {rd}, {ra}, {rb}")
                }
            }
            Instr::Ldi { rd, imm } => write!(f, "ldi {rd}, {imm}"),
            Instr::Mfs { rd, sr } => write!(f, "mfs {rd}, {sr}"),
            Instr::Sel { rd, cond, rt, rf } => write!(f, "sel {rd}, {cond}, {rt}, {rf}"),
            Instr::Ld {
                rd,
                base,
                off,
                space,
            } => write!(f, "ld{} {rd}, [{base}+{off}]", space_suffix(*space)),
            Instr::St {
                rs,
                base,
                off,
                space,
            } => write!(f, "st{} {rs}, [{base}+{off}]", space_suffix(*space)),
            Instr::StMasked {
                cond,
                rs,
                base,
                off,
                space,
            } => write!(
                f,
                "stm{} {cond}, {rs}, [{base}+{off}]",
                space_suffix(*space)
            ),
            Instr::MultiOp {
                kind,
                base,
                off,
                rs,
            } => {
                write!(f, "m{} [{base}+{off}], {rs}", kind.suffix())
            }
            Instr::MultiPrefix {
                kind,
                rd,
                base,
                off,
                rs,
            } => write!(f, "mp{} {rd}, [{base}+{off}], {rs}", kind.suffix()),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Br { cond, rs, target } => write!(f, "{} {rs}, {target}", cond.mnemonic()),
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::Ret => f.write_str("ret"),
            Instr::SetThick { src } => write!(f, "setthick {src}"),
            Instr::Numa { slots } => write!(f, "numa {slots}"),
            Instr::EndNuma => f.write_str("endnuma"),
            Instr::Split { arms } => {
                f.write_str("split ")?;
                for (i, arm) in arms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arm}")?;
                }
                Ok(())
            }
            Instr::Join => f.write_str("join"),
            Instr::Spawn { count, target } => write!(f, "spawn {count}, {target}"),
            Instr::SJoin => f.write_str("sjoin"),
            Instr::Sync => f.write_str("sync"),
            Instr::Halt => f.write_str("halt"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn multikind_combine_identity() {
        for k in MultiKind::ALL {
            for v in [-17, 0, 3, Word::MAX, Word::MIN] {
                assert_eq!(k.combine(k.identity(), v), v, "{k:?} identity");
            }
        }
    }

    #[test]
    fn multikind_combine_associative_commutative() {
        let vals = [-3, 0, 1, 7, 100];
        for k in MultiKind::ALL {
            for &a in &vals {
                for &b in &vals {
                    assert_eq!(k.combine(a, b), k.combine(b, a));
                    for &c in &vals {
                        assert_eq!(k.combine(k.combine(a, b), c), k.combine(a, k.combine(b, c)));
                    }
                }
            }
        }
    }

    #[test]
    fn brcond_holds() {
        assert!(BrCond::Eqz.holds(0));
        assert!(!BrCond::Eqz.holds(1));
        assert!(BrCond::Nez.holds(-1));
        assert!(BrCond::Ltz.holds(-1));
        assert!(!BrCond::Ltz.holds(0));
        assert!(BrCond::Lez.holds(0));
        assert!(BrCond::Gtz.holds(2));
        assert!(BrCond::Gez.holds(0));
    }

    #[test]
    fn classification() {
        assert!(Instr::Jmp {
            target: Target::Abs(0)
        }
        .is_control());
        assert!(Instr::Halt.is_control());
        assert!(!Instr::Nop.is_control());
        assert!(Instr::Ld {
            rd: r(1),
            base: r(2),
            off: 0,
            space: MemSpace::Shared
        }
        .is_memory());
        assert!(!Instr::Ret.is_memory());
    }

    #[test]
    fn display_formats() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: r(1),
            ra: r(2),
            rb: Operand::Imm(5),
        };
        assert_eq!(i.to_string(), "add r1, r2, 5");
        let i = Instr::Alu {
            op: AluOp::Neg,
            rd: r(1),
            ra: r(2),
            rb: Operand::Reg(r(0)),
        };
        assert_eq!(i.to_string(), "neg r1, r2");
        let i = Instr::Ld {
            rd: r(3),
            base: r(4),
            off: 8,
            space: MemSpace::Local,
        };
        assert_eq!(i.to_string(), "ldl r3, [r4+8]");
        let i = Instr::Split {
            arms: vec![
                SplitArm {
                    thickness: Operand::Imm(12),
                    target: Target::Label("a".into()),
                },
                SplitArm {
                    thickness: Operand::Reg(r(2)),
                    target: Target::Label("b".into()),
                },
            ],
        };
        assert_eq!(i.to_string(), "split (12 -> a), (r2 -> b)");
    }

    #[test]
    fn targets_collects_all() {
        let mut i = Instr::Split {
            arms: vec![
                SplitArm {
                    thickness: Operand::Imm(1),
                    target: Target::Label("x".into()),
                },
                SplitArm {
                    thickness: Operand::Imm(2),
                    target: Target::Label("y".into()),
                },
            ],
        };
        assert_eq!(i.targets().len(), 2);
        for t in i.targets_mut() {
            *t = Target::Abs(9);
        }
        assert!(i.targets().iter().all(|t| t.abs() == Some(9)));
    }
}
