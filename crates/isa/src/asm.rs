//! Line-oriented text assembler.
//!
//! The accepted syntax is exactly what the `Display` impls of
//! [`crate::instr`] print, plus labels (`name:`), comments (`;` or `#` to end
//! of line) and `.data` directives:
//!
//! ```text
//! .data 100: 1 2 3        ; words 1,2,3 at shared address 100
//! main:
//!     ldi r1, 100
//!     mfs r2, tid
//!     add r3, r1, r2
//!     ld r4, [r3+0]
//!     mpadd r5, [r1+64], r4
//!     split (12 -> left), (3 -> right)
//!     halt
//! left:
//!     join
//! right:
//!     join
//! ```
//!
//! `assemble(&program.listing())` reproduces `program` exactly; this round
//! trip is property-tested in `tests/roundtrip.rs` of this crate.

use std::collections::BTreeMap;

use crate::error::IsaError;
use crate::instr::{BrCond, Instr, MemSpace, MultiKind, Operand, SplitArm, Target};
use crate::op::AluOp;
use crate::program::{DataBlock, Program};
use crate::reg::{Reg, SpecialReg};
use crate::word::Word;

/// Assembles source text into a resolved [`Program`].
pub fn assemble(src: &str) -> Result<Program, IsaError> {
    let mut instrs = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut data = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        let mut rest = text;
        // Leading labels (possibly several on one line).
        while let Some((label, tail)) = take_label(rest) {
            if labels.insert(label.to_string(), instrs.len()).is_some() {
                return Err(IsaError::DuplicateLabel {
                    label: label.to_string(),
                });
            }
            rest = tail.trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(dir) = rest.strip_prefix(".data") {
            data.push(parse_data(dir, line)?);
            continue;
        }
        instrs.push(parse_instr(rest, line)?);
    }
    Program::new(instrs, labels, data)
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Splits a leading `ident:` label off `text`.
fn take_label(text: &str) -> Option<(&str, &str)> {
    let colon = text.find(':')?;
    let (head, tail) = text.split_at(colon);
    let head = head.trim();
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@' || c == '.')
        && !head.starts_with(".data")
        && head.parse::<i64>().is_err()
    {
        Some((head, &tail[1..]))
    } else {
        None
    }
}

fn parse_data(dir: &str, line: usize) -> Result<DataBlock, IsaError> {
    let err = |msg: &str| IsaError::Parse {
        line,
        msg: msg.to_string(),
    };
    let (base, words) = dir
        .split_once(':')
        .ok_or_else(|| err("expected `.data <base>: w0 w1 ...`"))?;
    let base: usize = base
        .trim()
        .parse()
        .map_err(|_| err("bad base address in .data"))?;
    let words = words
        .split_whitespace()
        .map(|w| w.parse::<Word>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| err("bad word in .data"))?;
    Ok(DataBlock { base, words })
}

/// Token scanner for one instruction line.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Cursor<'a> {
        Cursor { text, pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> IsaError {
        IsaError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.text[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), IsaError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn ident(&mut self) -> Result<&'a str, IsaError> {
        self.skip_ws();
        let start = self.pos;
        for (i, c) in self.text[start..].char_indices() {
            if !(c.is_ascii_alphanumeric() || c == '_' || c == '@' || c == '.') {
                if i == 0 {
                    return Err(self.err("expected identifier"));
                }
                self.pos = start + i;
                return Ok(&self.text[start..self.pos]);
            }
        }
        if start == self.text.len() {
            return Err(self.err("expected identifier, found end of line"));
        }
        self.pos = self.text.len();
        Ok(&self.text[start..])
    }

    fn int(&mut self) -> Result<Word, IsaError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.text.as_bytes();
        let mut i = self.pos;
        if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
            i += 1;
        }
        let digits_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == digits_start {
            return Err(self.err("expected integer"));
        }
        self.pos = i;
        self.text[start..i]
            .parse::<Word>()
            .map_err(|_| self.err("integer out of range"))
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        let id = self.ident()?;
        parse_reg(id).ok_or_else(|| self.err(format!("expected register, found `{id}`")))
    }

    /// Register or immediate.
    fn operand(&mut self) -> Result<Operand, IsaError> {
        match self.peek() {
            Some(c) if c == '-' || c.is_ascii_digit() => Ok(Operand::Imm(self.int()?)),
            _ => Ok(Operand::Reg(self.reg()?)),
        }
    }

    /// A `[base+off]` address.
    fn address(&mut self) -> Result<(Reg, Word), IsaError> {
        self.expect('[')?;
        let base = self.reg()?;
        let off = if self.eat('+') || self.peek() == Some('-') {
            self.int()?
        } else {
            0
        };
        self.expect(']')?;
        Ok((base, off))
    }

    /// A jump/branch target: label name or `@<abs>`.
    fn target(&mut self) -> Result<Target, IsaError> {
        let id = self.ident()?;
        if let Some(abs) = id.strip_prefix('@') {
            if let Ok(i) = abs.parse::<usize>() {
                return Ok(Target::Abs(i));
            }
        }
        Ok(Target::Label(id.to_string()))
    }

    fn comma(&mut self) -> Result<(), IsaError> {
        self.expect(',')
    }

    fn end(&mut self) -> Result<(), IsaError> {
        self.skip_ws();
        if self.pos == self.text.len() {
            Ok(())
        } else {
            Err(self.err(format!("trailing input `{}`", &self.text[self.pos..])))
        }
    }
}

fn parse_reg(id: &str) -> Option<Reg> {
    let num = id.strip_prefix('r')?;
    let i: u8 = num.parse().ok()?;
    Reg::try_new(i)
}

fn parse_instr(text: &str, line: usize) -> Result<Instr, IsaError> {
    let mut c = Cursor::new(text, line);
    let mn = c.ident()?.to_string();
    let instr = parse_after_mnemonic(&mn, &mut c)?;
    c.end()?;
    Ok(instr)
}

fn parse_after_mnemonic(mn: &str, c: &mut Cursor<'_>) -> Result<Instr, IsaError> {
    // ALU operations.
    if let Some(op) = AluOp::from_mnemonic(mn) {
        let rd = c.reg()?;
        c.comma()?;
        let ra = c.reg()?;
        let rb = if op.is_unary() {
            Operand::Reg(Reg::ZERO)
        } else {
            c.comma()?;
            c.operand()?
        };
        return Ok(Instr::Alu { op, rd, ra, rb });
    }
    // Branches.
    if let Some(cond) = BrCond::from_mnemonic(mn) {
        let rs = c.reg()?;
        c.comma()?;
        let target = c.target()?;
        return Ok(Instr::Br { cond, rs, target });
    }
    // Multioperations / multiprefixes.
    if let Some(kind) = mn.strip_prefix("mp").and_then(MultiKind::from_suffix) {
        let rd = c.reg()?;
        c.comma()?;
        let (base, off) = c.address()?;
        c.comma()?;
        let rs = c.reg()?;
        return Ok(Instr::MultiPrefix {
            kind,
            rd,
            base,
            off,
            rs,
        });
    }
    if mn != "mov" && mn != "min" && mn != "max" && mn != "mod" {
        if let Some(kind) = mn.strip_prefix('m').and_then(MultiKind::from_suffix) {
            let (base, off) = c.address()?;
            c.comma()?;
            let rs = c.reg()?;
            return Ok(Instr::MultiOp {
                kind,
                base,
                off,
                rs,
            });
        }
    }
    match mn {
        "ldi" => {
            let rd = c.reg()?;
            c.comma()?;
            let imm = c.int()?;
            Ok(Instr::Ldi { rd, imm })
        }
        "mfs" => {
            let rd = c.reg()?;
            c.comma()?;
            let id = c.ident()?;
            let sr = SpecialReg::from_mnemonic(id)
                .ok_or_else(|| c.err(format!("unknown special register `{id}`")))?;
            Ok(Instr::Mfs { rd, sr })
        }
        "sel" => {
            let rd = c.reg()?;
            c.comma()?;
            let cond = c.reg()?;
            c.comma()?;
            let rt = c.reg()?;
            c.comma()?;
            let rf = c.operand()?;
            Ok(Instr::Sel { rd, cond, rt, rf })
        }
        "ld" | "ldl" => {
            let space = if mn == "ld" {
                MemSpace::Shared
            } else {
                MemSpace::Local
            };
            let rd = c.reg()?;
            c.comma()?;
            let (base, off) = c.address()?;
            Ok(Instr::Ld {
                rd,
                base,
                off,
                space,
            })
        }
        "st" | "stl" => {
            let space = if mn == "st" {
                MemSpace::Shared
            } else {
                MemSpace::Local
            };
            let rs = c.reg()?;
            c.comma()?;
            let (base, off) = c.address()?;
            Ok(Instr::St {
                rs,
                base,
                off,
                space,
            })
        }
        "stm" | "stml" => {
            let space = if mn == "stm" {
                MemSpace::Shared
            } else {
                MemSpace::Local
            };
            let cond = c.reg()?;
            c.comma()?;
            let rs = c.reg()?;
            c.comma()?;
            let (base, off) = c.address()?;
            Ok(Instr::StMasked {
                cond,
                rs,
                base,
                off,
                space,
            })
        }
        "jmp" => Ok(Instr::Jmp {
            target: c.target()?,
        }),
        "call" => Ok(Instr::Call {
            target: c.target()?,
        }),
        "ret" => Ok(Instr::Ret),
        "setthick" => Ok(Instr::SetThick { src: c.operand()? }),
        "numa" => Ok(Instr::Numa {
            slots: c.operand()?,
        }),
        "endnuma" => Ok(Instr::EndNuma),
        "split" => {
            let mut arms = Vec::new();
            loop {
                c.expect('(')?;
                let thickness = c.operand()?;
                c.expect('-')?;
                c.expect('>')?;
                let target = c.target()?;
                c.expect(')')?;
                arms.push(SplitArm { thickness, target });
                if !c.eat(',') {
                    break;
                }
            }
            Ok(Instr::Split { arms })
        }
        "join" => Ok(Instr::Join),
        "spawn" => {
            let count = c.operand()?;
            c.comma()?;
            let target = c.target()?;
            Ok(Instr::Spawn { count, target })
        }
        "sjoin" => Ok(Instr::SJoin),
        "sync" => Ok(Instr::Sync),
        "halt" => Ok(Instr::Halt),
        "nop" => Ok(Instr::Nop),
        other => Err(c.err(format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "main:\n    ldi r1, 100\n    mfs r2, tid\n    add r3, r1, r2\n    ld r4, [r3+0]\n    halt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.entry, 0);
        assert_eq!(
            p.instrs[2],
            Instr::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(1),
                rb: Operand::Reg(r(2)),
            }
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; nothing\n\n   # also nothing\nhalt ; stop\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn data_directive() {
        let p = assemble(".data 64: 1 2 3\nhalt\n").unwrap();
        assert_eq!(p.data[0].base, 64);
        assert_eq!(p.data[0].words, vec![1, 2, 3]);
    }

    #[test]
    fn split_with_multiple_arms() {
        let p = assemble("    split (12 -> a), (r2 -> b)\n    halt\na:  join\nb:  join\n").unwrap();
        match &p.instrs[0] {
            Instr::Split { arms } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].thickness, Operand::Imm(12));
                assert_eq!(arms[0].target.abs(), Some(2));
                assert_eq!(arms[1].thickness, Operand::Reg(r(2)));
                assert_eq!(arms[1].target.abs(), Some(3));
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn multiop_vs_alu_min_not_confused() {
        // `min` is an ALU op, `mmin` a multioperation.
        let p = assemble("min r1, r2, r3\nmmin [r1+0], r2\nhalt\n").unwrap();
        assert!(matches!(p.instrs[0], Instr::Alu { op: AluOp::Min, .. }));
        assert!(matches!(
            p.instrs[1],
            Instr::MultiOp {
                kind: MultiKind::Min,
                ..
            }
        ));
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let p = assemble("ld r1, [r2+-4]\naddi_is_not_real r0, r0\n");
        assert!(p.is_err());
        let p = assemble("ld r1, [r2+-4]\nldi r3, -77\nhalt\n").unwrap();
        assert!(matches!(p.instrs[0], Instr::Ld { off: -4, .. }));
        assert!(matches!(p.instrs[1], Instr::Ldi { imm: -77, .. }));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate r1\n").unwrap_err();
        match e {
            IsaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: halt\n").unwrap_err();
        assert!(matches!(e, IsaError::DuplicateLabel { .. }));
    }

    #[test]
    fn label_and_instruction_on_one_line() {
        let p = assemble("start: ldi r1, 1\n jmp start\n").unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.instrs[1].targets()[0].abs(), Some(0));
    }

    #[test]
    fn listing_roundtrip_smoke() {
        let src = "main:\n    setthick 16\n    mfs r1, tid\n    mpadd r2, [r0+100], r1\n    numa 4\n    endnuma\n    split (8 -> w), (8 -> w)\n    halt\nw:  join\n";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&p1.listing()).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
        assert_eq!(p1.entry, p2.entry);
    }
}
