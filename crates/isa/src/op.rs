//! Pure ALU operation semantics.
//!
//! Every execution model in the workspace evaluates ALU instructions through
//! [`AluOp::eval`], so the baseline PRAM-NUMA runtime, the six extended-model
//! variants and the cycle-level pipeline cannot diverge in arithmetic
//! behaviour. All arithmetic is wrapping (see [`crate::word`]).

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::word::{div_w, rem_w, shamt, Word};

/// Three-address ALU operations (`op rd, ra, rb|imm`).
///
/// Unary operations (`Not`, `Neg`, `Mov`) ignore the second source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// `rd = ra + rb`
    Add,
    /// `rd = ra - rb`
    Sub,
    /// `rd = ra * rb`
    Mul,
    /// `rd = ra / rb` (0 when `rb == 0`)
    Div,
    /// `rd = ra % rb` (0 when `rb == 0`)
    Mod,
    /// `rd = ra & rb`
    And,
    /// `rd = ra | rb`
    Or,
    /// `rd = ra ^ rb`
    Xor,
    /// `rd = ra << (rb & 63)`
    Shl,
    /// `rd = (ra as u64) >> (rb & 63)` (logical)
    Shr,
    /// `rd = ra >> (rb & 63)` (arithmetic)
    Sar,
    /// `rd = (ra < rb) as Word`
    Slt,
    /// `rd = (ra <= rb) as Word`
    Sle,
    /// `rd = (ra == rb) as Word`
    Seq,
    /// `rd = (ra != rb) as Word`
    Sne,
    /// `rd = (ra > rb) as Word`
    Sgt,
    /// `rd = (ra >= rb) as Word`
    Sge,
    /// `rd = min(ra, rb)`
    Min,
    /// `rd = max(ra, rb)`
    Max,
    /// `rd = ra` (unary)
    Mov,
    /// `rd = !ra` (bitwise, unary)
    Not,
    /// `rd = -ra` (unary)
    Neg,
}

impl AluOp {
    /// All ALU operations, for exhaustive testing and assembler tables.
    pub const ALL: [AluOp; 22] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Slt,
        AluOp::Sle,
        AluOp::Seq,
        AluOp::Sne,
        AluOp::Sgt,
        AluOp::Sge,
        AluOp::Min,
        AluOp::Max,
        AluOp::Mov,
        AluOp::Not,
        AluOp::Neg,
    ];

    /// Evaluates the operation on two source words.
    #[inline]
    pub fn eval(self, a: Word, b: Word) -> Word {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => div_w(a, b),
            AluOp::Mod => rem_w(a, b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(shamt(b)),
            AluOp::Shr => ((a as u64).wrapping_shr(shamt(b))) as Word,
            AluOp::Sar => a.wrapping_shr(shamt(b)),
            AluOp::Slt => (a < b) as Word,
            AluOp::Sle => (a <= b) as Word,
            AluOp::Seq => (a == b) as Word,
            AluOp::Sne => (a != b) as Word,
            AluOp::Sgt => (a > b) as Word,
            AluOp::Sge => (a >= b) as Word,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
            AluOp::Mov => a,
            AluOp::Not => !a,
            AluOp::Neg => a.wrapping_neg(),
        }
    }

    /// Whether the operation uses only the first source operand.
    #[inline]
    pub fn is_unary(self) -> bool {
        matches!(self, AluOp::Mov | AluOp::Not | AluOp::Neg)
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Mod => "mod",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sle => "sle",
            AluOp::Seq => "seq",
            AluOp::Sne => "sne",
            AluOp::Sgt => "sgt",
            AluOp::Sge => "sge",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::Mov => "mov",
            AluOp::Not => "not",
            AluOp::Neg => "neg",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<AluOp> {
        AluOp::ALL.into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), -1);
        assert_eq!(AluOp::Mul.eval(-4, 3), -12);
        assert_eq!(AluOp::Div.eval(7, 2), 3);
        assert_eq!(AluOp::Mod.eval(7, 2), 1);
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(AluOp::Slt.eval(1, 2), 1);
        assert_eq!(AluOp::Slt.eval(2, 1), 0);
        assert_eq!(AluOp::Seq.eval(5, 5), 1);
        assert_eq!(AluOp::Sne.eval(5, 5), 0);
        assert_eq!(AluOp::Sge.eval(5, 5), 1);
        assert_eq!(AluOp::Sgt.eval(5, 5), 0);
        assert_eq!(AluOp::Sle.eval(4, 5), 1);
    }

    #[test]
    fn shifts() {
        assert_eq!(AluOp::Shl.eval(1, 4), 16);
        assert_eq!(AluOp::Shr.eval(-1, 60), 15);
        assert_eq!(AluOp::Sar.eval(-16, 2), -4);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(AluOp::Mov.eval(9, 123), 9);
        assert_eq!(AluOp::Not.eval(0, 0), -1);
        assert_eq!(AluOp::Neg.eval(5, 0), -5);
        assert!(AluOp::Mov.is_unary());
        assert!(!AluOp::Add.is_unary());
    }

    #[test]
    fn mnemonics_roundtrip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(AluOp::from_mnemonic("frob"), None);
    }

    proptest! {
        #[test]
        fn eval_never_panics(op in prop::sample::select(&AluOp::ALL[..]), a: i64, b: i64) {
            let _ = op.eval(a, b);
        }

        #[test]
        fn add_commutes(a: i64, b: i64) {
            prop_assert_eq!(AluOp::Add.eval(a, b), AluOp::Add.eval(b, a));
        }

        #[test]
        fn min_max_bracket(a: i64, b: i64) {
            let lo = AluOp::Min.eval(a, b);
            let hi = AluOp::Max.eval(a, b);
            prop_assert!(lo <= hi);
            prop_assert!(lo == a || lo == b);
            prop_assert!(hi == a || hi == b);
        }

        #[test]
        fn comparisons_are_boolean(a: i64, b: i64) {
            for op in [AluOp::Slt, AluOp::Sle, AluOp::Seq, AluOp::Sne, AluOp::Sgt, AluOp::Sge] {
                let v = op.eval(a, b);
                prop_assert!(v == 0 || v == 1);
            }
        }
    }
}
