//! General and special registers.
//!
//! Each implicit thread of a TCF sees `NUM_REGS` general registers `r0..r31`
//! (with `r0` hardwired to zero, RISC style) plus read-only *special*
//! registers exposing its position in the machine: its index within the flow
//! (`tid`), the flow's thickness, the flow id, and the processor/group ids.
//!
//! In the extended model registers holding the same value for every thread of
//! a flow need not be replicated — the runtime stores them as a single
//! *uniform* value (see `tcf_core::thick::ThickValue`). The register *names*
//! here are shared by all execution models.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Number of general registers per thread (the paper's parameter `R`).
pub const NUM_REGS: usize = 32;

/// A general register `r0..r31`. `r0` always reads as zero; writes to it are
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register, panicking on out-of-range indices.
    ///
    /// Out-of-range indices are programming errors in the assembler /
    /// compiler, never runtime data, so a panic is the right failure mode.
    #[inline]
    pub fn new(i: u8) -> Reg {
        assert!(
            (i as usize) < NUM_REGS,
            "register index {i} out of range (0..{NUM_REGS})"
        );
        Reg(i)
    }

    /// Fallible constructor for the assembler front end.
    #[inline]
    pub fn try_new(i: u8) -> Option<Reg> {
        if (i as usize) < NUM_REGS {
            Some(Reg(i))
        } else {
            None
        }
    }

    /// The register index in `0..NUM_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Shorthand constructor used pervasively in tests and the compiler.
#[inline]
pub fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Read-only special registers (`mfs rd, <special>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialReg {
    /// Index of the implicit thread within its flow, `0..thickness`.
    Tid,
    /// Current thickness of the executing flow.
    Thickness,
    /// Identifier of the executing flow (TCF id / thread id in baseline
    /// models).
    Fid,
    /// Index of the executing processor (group) the flow is allocated to.
    Pid,
    /// Number of processor groups `P` in the machine.
    NProcs,
    /// Hardware threads per processor `T_p` (baseline models) / TCF buffer
    /// slots (extended model).
    NThreads,
    /// Global thread rank across the whole machine (baseline models):
    /// `pid * T_p + local_tid`. For a TCF it equals `Tid`.
    Gid,
}

impl SpecialReg {
    /// All special registers, for enumeration in tests and the assembler.
    pub const ALL: [SpecialReg; 7] = [
        SpecialReg::Tid,
        SpecialReg::Thickness,
        SpecialReg::Fid,
        SpecialReg::Pid,
        SpecialReg::NProcs,
        SpecialReg::NThreads,
        SpecialReg::Gid,
    ];

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            SpecialReg::Tid => "tid",
            SpecialReg::Thickness => "thick",
            SpecialReg::Fid => "fid",
            SpecialReg::Pid => "pid",
            SpecialReg::NProcs => "nprocs",
            SpecialReg::NThreads => "nthreads",
            SpecialReg::Gid => "gid",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<SpecialReg> {
        SpecialReg::ALL.into_iter().find(|sr| sr.mnemonic() == s)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_zero() {
        for i in 0..NUM_REGS as u8 {
            let reg = Reg::new(i);
            assert_eq!(reg.index(), i as usize);
            assert_eq!(reg.is_zero(), i == 0);
        }
    }

    #[test]
    fn reg_try_new_bounds() {
        assert!(Reg::try_new(31).is_some());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn special_mnemonics_roundtrip() {
        for sr in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_mnemonic(sr.mnemonic()), Some(sr));
        }
        assert_eq!(SpecialReg::from_mnemonic("bogus"), None);
    }

    #[test]
    fn reg_display() {
        assert_eq!(r(7).to_string(), "r7");
        assert_eq!(Reg::ZERO.to_string(), "r0");
    }
}
