//! Programmatic program construction.
//!
//! [`ProgramBuilder`] is the API the `tcf-lang` compiler and most tests use
//! to emit code without going through assembler text. Methods are thin,
//! chainable wrappers that append one instruction each; labels may be
//! referenced before they are bound.
//!
//! ```
//! use tcf_isa::{ProgramBuilder, AluOp, reg::r};
//!
//! let mut b = ProgramBuilder::new();
//! b.ldi(r(1), 0);
//! b.label("loop");
//! b.alu(AluOp::Add, r(1), r(1), 1);
//! b.alu(AluOp::Slt, r(2), r(1), 10);
//! b.bnez(r(2), "loop");
//! b.halt();
//! let program = b.build().unwrap();
//! assert_eq!(program.len(), 5);
//! ```

use std::collections::BTreeMap;

use crate::error::IsaError;
use crate::instr::{BrCond, Instr, MemSpace, MultiKind, Operand, SplitArm, Target};
use crate::op::AluOp;
use crate::program::{DataBlock, Program};
use crate::reg::{Reg, SpecialReg};
use crate::word::{Addr, Word};

/// Incremental builder of [`Program`]s.
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    data: Vec<DataBlock>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current instruction index (where the next instruction will land).
    #[inline]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Binds `name` to the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self
            .labels
            .insert(name.clone(), self.instrs.len())
            .is_some()
        {
            self.duplicate.get_or_insert(name);
        }
        self
    }

    /// Generates a fresh label name guaranteed not to collide with
    /// user-supplied names (which the assembler forbids to start with `@`).
    pub fn fresh_label(&mut self, hint: &str) -> String {
        let mut n = self.labels.len();
        loop {
            let name = format!("@{hint}_{n}");
            if !self.labels.contains_key(&name) {
                return name;
            }
            n += 1;
        }
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Adds a static shared-memory data block.
    pub fn data(&mut self, base: Addr, words: Vec<Word>) -> &mut Self {
        self.data.push(DataBlock { base, words });
        self
    }

    /// `op rd, ra, rb|imm`
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Alu {
            op,
            rd,
            ra,
            rb: rb.into(),
        })
    }

    /// `ldi rd, imm`
    pub fn ldi(&mut self, rd: Reg, imm: Word) -> &mut Self {
        self.push(Instr::Ldi { rd, imm })
    }

    /// `mfs rd, sr`
    pub fn mfs(&mut self, rd: Reg, sr: SpecialReg) -> &mut Self {
        self.push(Instr::Mfs { rd, sr })
    }

    /// `sel rd, cond, rt, rf`
    pub fn sel(&mut self, rd: Reg, cond: Reg, rt: Reg, rf: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Sel {
            rd,
            cond,
            rt,
            rf: rf.into(),
        })
    }

    /// `ld rd, [base+off]` from shared memory.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: Word) -> &mut Self {
        self.push(Instr::Ld {
            rd,
            base,
            off,
            space: MemSpace::Shared,
        })
    }

    /// `ldl rd, [base+off]` from local memory.
    pub fn ldl(&mut self, rd: Reg, base: Reg, off: Word) -> &mut Self {
        self.push(Instr::Ld {
            rd,
            base,
            off,
            space: MemSpace::Local,
        })
    }

    /// `st rs, [base+off]` to shared memory.
    pub fn st(&mut self, rs: Reg, base: Reg, off: Word) -> &mut Self {
        self.push(Instr::St {
            rs,
            base,
            off,
            space: MemSpace::Shared,
        })
    }

    /// `stl rs, [base+off]` to local memory.
    pub fn stl(&mut self, rs: Reg, base: Reg, off: Word) -> &mut Self {
        self.push(Instr::St {
            rs,
            base,
            off,
            space: MemSpace::Local,
        })
    }

    /// Masked store to shared memory.
    pub fn stm(&mut self, cond: Reg, rs: Reg, base: Reg, off: Word) -> &mut Self {
        self.push(Instr::StMasked {
            cond,
            rs,
            base,
            off,
            space: MemSpace::Shared,
        })
    }

    /// Multioperation against shared memory.
    pub fn multiop(&mut self, kind: MultiKind, base: Reg, off: Word, rs: Reg) -> &mut Self {
        self.push(Instr::MultiOp {
            kind,
            base,
            off,
            rs,
        })
    }

    /// Multiprefix against shared memory.
    pub fn multiprefix(
        &mut self,
        kind: MultiKind,
        rd: Reg,
        base: Reg,
        off: Word,
        rs: Reg,
    ) -> &mut Self {
        self.push(Instr::MultiPrefix {
            kind,
            rd,
            base,
            off,
            rs,
        })
    }

    /// `jmp label`
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Instr::Jmp {
            target: Target::Label(label.into()),
        })
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: BrCond, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.push(Instr::Br {
            cond,
            rs,
            target: Target::Label(label.into()),
        })
    }

    /// `beqz rs, label`
    pub fn beqz(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.br(BrCond::Eqz, rs, label)
    }

    /// `bnez rs, label`
    pub fn bnez(&mut self, rs: Reg, label: impl Into<String>) -> &mut Self {
        self.br(BrCond::Nez, rs, label)
    }

    /// `call label`
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.push(Instr::Call {
            target: Target::Label(label.into()),
        })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instr::Ret)
    }

    /// `setthick src`
    pub fn setthick(&mut self, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::SetThick { src: src.into() })
    }

    /// `numa slots`
    pub fn numa(&mut self, slots: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Numa {
            slots: slots.into(),
        })
    }

    /// `endnuma`
    pub fn endnuma(&mut self) -> &mut Self {
        self.push(Instr::EndNuma)
    }

    /// `split (thickness -> label), ...`
    pub fn split(&mut self, arms: Vec<(Operand, String)>) -> &mut Self {
        self.push(Instr::Split {
            arms: arms
                .into_iter()
                .map(|(thickness, label)| SplitArm {
                    thickness,
                    target: Target::Label(label),
                })
                .collect(),
        })
    }

    /// `join`
    pub fn join(&mut self) -> &mut Self {
        self.push(Instr::Join)
    }

    /// `spawn count, label`
    pub fn spawn(&mut self, count: impl Into<Operand>, label: impl Into<String>) -> &mut Self {
        self.push(Instr::Spawn {
            count: count.into(),
            target: Target::Label(label.into()),
        })
    }

    /// `sjoin`
    pub fn sjoin(&mut self) -> &mut Self {
        self.push(Instr::SJoin)
    }

    /// `sync`
    pub fn sync(&mut self) -> &mut Self {
        self.push(Instr::Sync)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Finalizes the program, resolving labels.
    pub fn build(self) -> Result<Program, IsaError> {
        if let Some(label) = self.duplicate {
            return Err(IsaError::DuplicateLabel { label });
        }
        Program::new(self.instrs, self.labels, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::r;

    #[test]
    fn builds_and_resolves() {
        let mut b = ProgramBuilder::new();
        b.ldi(r(1), 3);
        b.label("l");
        b.alu(AluOp::Sub, r(1), r(1), 1);
        b.bnez(r(1), "l");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.instrs[2].targets()[0].abs(), Some(1));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = ProgramBuilder::new();
        b.label("x").nop();
        b.label("x").halt();
        assert!(matches!(b.build(), Err(IsaError::DuplicateLabel { .. })));
    }

    #[test]
    fn forward_references_work() {
        let mut b = ProgramBuilder::new();
        b.jmp("end");
        b.nop();
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instrs[0].targets()[0].abs(), Some(2));
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut b = ProgramBuilder::new();
        let l1 = b.fresh_label("if");
        b.label(l1.clone());
        let l2 = b.fresh_label("if");
        assert_ne!(l1, l2);
    }

    #[test]
    fn data_blocks_carried_through() {
        let mut b = ProgramBuilder::new();
        b.data(10, vec![7, 8]).halt();
        let p = b.build().unwrap();
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].base, 10);
    }
}
