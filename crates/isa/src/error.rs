//! Error types of the ISA layer.

use core::fmt;

/// Errors produced while building, assembling, encoding or decoding
/// programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A control transfer references a label that was never defined.
    UnknownLabel {
        /// The missing label.
        label: String,
        /// Instruction index of the reference.
        at: usize,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label.
        label: String,
    },
    /// A resolved target points past the end of the program.
    TargetOutOfRange {
        /// Instruction index of the reference.
        at: usize,
        /// The bad target.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// An instruction still carries a symbolic target after resolution.
    UnresolvedTarget {
        /// Instruction index.
        at: usize,
    },
    /// Syntax error in assembler input.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Malformed binary encoding.
    Decode {
        /// Word offset of the problem.
        at: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnknownLabel { label, at } => {
                write!(f, "unknown label `{label}` referenced at instruction {at}")
            }
            IsaError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            IsaError::TargetOutOfRange { at, target, len } => write!(
                f,
                "target {target} at instruction {at} is outside program of length {len}"
            ),
            IsaError::UnresolvedTarget { at } => {
                write!(f, "unresolved symbolic target at instruction {at}")
            }
            IsaError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IsaError::Decode { at, msg } => write!(f, "decode error at word {at}: {msg}"),
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IsaError::UnknownLabel {
            label: "x".into(),
            at: 3,
        };
        assert!(e.to_string().contains("unknown label `x`"));
        let e = IsaError::Parse {
            line: 7,
            msg: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
