//! Binary encoding of programs into instruction-memory words.
//!
//! The CESM-style machines of this workspace fetch instructions from a
//! word-addressed instruction memory; this module defines the (simple,
//! deliberately non-compact) encoding used to place a [`Program`] there and
//! read it back. Every instruction encodes as a tag word followed by one
//! word per field; operands encode as a flag word plus a value word.
//!
//! Only *resolved* programs can be encoded — a symbolic [`Target::Label`]
//! is an [`IsaError::UnresolvedTarget`]. Labels are source-level artifacts
//! and are not preserved by the binary form; `decode(&encode(p))` therefore
//! reproduces `p`'s instructions, entry point and data, not its label map.

use crate::error::IsaError;
use crate::instr::{BrCond, Instr, MemSpace, MultiKind, Operand, SplitArm, Target};
use crate::op::AluOp;
use crate::program::{DataBlock, Program};
use crate::reg::Reg;
use crate::word::Word;

/// Magic number leading every encoded program (`"TCF1"` in ASCII).
pub const MAGIC: u64 = 0x5443_4631;

const TAG_ALU: u64 = 1;
const TAG_LDI: u64 = 2;
const TAG_MFS: u64 = 3;
const TAG_SEL: u64 = 4;
const TAG_LD: u64 = 5;
const TAG_ST: u64 = 6;
const TAG_STM: u64 = 7;
const TAG_MOP: u64 = 8;
const TAG_MPREFIX: u64 = 9;
const TAG_JMP: u64 = 10;
const TAG_BR: u64 = 11;
const TAG_CALL: u64 = 12;
const TAG_RET: u64 = 13;
const TAG_SETTHICK: u64 = 14;
const TAG_NUMA: u64 = 15;
const TAG_ENDNUMA: u64 = 16;
const TAG_SPLIT: u64 = 17;
const TAG_JOIN: u64 = 18;
const TAG_SPAWN: u64 = 19;
const TAG_SJOIN: u64 = 20;
const TAG_SYNC: u64 = 21;
const TAG_HALT: u64 = 22;
const TAG_NOP: u64 = 23;

struct Enc {
    words: Vec<u64>,
}

impl Enc {
    fn word(&mut self, w: u64) {
        self.words.push(w);
    }

    fn signed(&mut self, w: Word) {
        self.words.push(w as u64);
    }

    fn reg(&mut self, r: Reg) {
        self.words.push(r.index() as u64);
    }

    fn operand(&mut self, o: &Operand) {
        match o {
            Operand::Reg(r) => {
                self.word(0);
                self.reg(*r);
            }
            Operand::Imm(w) => {
                self.word(1);
                self.signed(*w);
            }
        }
    }

    fn target(&mut self, t: &Target, at: usize) -> Result<(), IsaError> {
        match t.abs() {
            Some(abs) => {
                self.word(abs as u64);
                Ok(())
            }
            None => Err(IsaError::UnresolvedTarget { at }),
        }
    }

    fn space(&mut self, s: MemSpace) {
        self.word(match s {
            MemSpace::Shared => 0,
            MemSpace::Local => 1,
        });
    }
}

struct Dec<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn err(&self, msg: impl Into<String>) -> IsaError {
        IsaError::Decode {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn word(&mut self) -> Result<u64, IsaError> {
        let w = *self
            .words
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(w)
    }

    fn signed(&mut self) -> Result<Word, IsaError> {
        Ok(self.word()? as Word)
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        let i = self.word()?;
        u8::try_from(i)
            .ok()
            .and_then(Reg::try_new)
            .ok_or_else(|| self.err(format!("bad register index {i}")))
    }

    fn operand(&mut self) -> Result<Operand, IsaError> {
        match self.word()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::Imm(self.signed()?)),
            k => Err(self.err(format!("bad operand kind {k}"))),
        }
    }

    fn target(&mut self) -> Result<Target, IsaError> {
        Ok(Target::Abs(self.word()? as usize))
    }

    fn space(&mut self) -> Result<MemSpace, IsaError> {
        match self.word()? {
            0 => Ok(MemSpace::Shared),
            1 => Ok(MemSpace::Local),
            k => Err(self.err(format!("bad memory space {k}"))),
        }
    }

    fn index<T: Copy>(&mut self, table: &[T], what: &str) -> Result<T, IsaError> {
        let i = self.word()? as usize;
        table
            .get(i)
            .copied()
            .ok_or_else(|| self.err(format!("bad {what} index {i}")))
    }
}

fn alu_index(op: AluOp) -> u64 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u64
}

fn multi_index(k: MultiKind) -> u64 {
    MultiKind::ALL
        .iter()
        .position(|&o| o == k)
        .expect("kind in ALL") as u64
}

fn br_index(c: BrCond) -> u64 {
    BrCond::ALL
        .iter()
        .position(|&o| o == c)
        .expect("cond in ALL") as u64
}

fn encode_instr(e: &mut Enc, instr: &Instr, at: usize) -> Result<(), IsaError> {
    match instr {
        Instr::Alu { op, rd, ra, rb } => {
            e.word(TAG_ALU);
            e.word(alu_index(*op));
            e.reg(*rd);
            e.reg(*ra);
            e.operand(rb);
        }
        Instr::Ldi { rd, imm } => {
            e.word(TAG_LDI);
            e.reg(*rd);
            e.signed(*imm);
        }
        Instr::Mfs { rd, sr } => {
            e.word(TAG_MFS);
            e.reg(*rd);
            e.word(
                crate::reg::SpecialReg::ALL
                    .iter()
                    .position(|s| s == sr)
                    .expect("sr in ALL") as u64,
            );
        }
        Instr::Sel { rd, cond, rt, rf } => {
            e.word(TAG_SEL);
            e.reg(*rd);
            e.reg(*cond);
            e.reg(*rt);
            e.operand(rf);
        }
        Instr::Ld {
            rd,
            base,
            off,
            space,
        } => {
            e.word(TAG_LD);
            e.reg(*rd);
            e.reg(*base);
            e.signed(*off);
            e.space(*space);
        }
        Instr::St {
            rs,
            base,
            off,
            space,
        } => {
            e.word(TAG_ST);
            e.reg(*rs);
            e.reg(*base);
            e.signed(*off);
            e.space(*space);
        }
        Instr::StMasked {
            cond,
            rs,
            base,
            off,
            space,
        } => {
            e.word(TAG_STM);
            e.reg(*cond);
            e.reg(*rs);
            e.reg(*base);
            e.signed(*off);
            e.space(*space);
        }
        Instr::MultiOp {
            kind,
            base,
            off,
            rs,
        } => {
            e.word(TAG_MOP);
            e.word(multi_index(*kind));
            e.reg(*base);
            e.signed(*off);
            e.reg(*rs);
        }
        Instr::MultiPrefix {
            kind,
            rd,
            base,
            off,
            rs,
        } => {
            e.word(TAG_MPREFIX);
            e.word(multi_index(*kind));
            e.reg(*rd);
            e.reg(*base);
            e.signed(*off);
            e.reg(*rs);
        }
        Instr::Jmp { target } => {
            e.word(TAG_JMP);
            e.target(target, at)?;
        }
        Instr::Br { cond, rs, target } => {
            e.word(TAG_BR);
            e.word(br_index(*cond));
            e.reg(*rs);
            e.target(target, at)?;
        }
        Instr::Call { target } => {
            e.word(TAG_CALL);
            e.target(target, at)?;
        }
        Instr::Ret => e.word(TAG_RET),
        Instr::SetThick { src } => {
            e.word(TAG_SETTHICK);
            e.operand(src);
        }
        Instr::Numa { slots } => {
            e.word(TAG_NUMA);
            e.operand(slots);
        }
        Instr::EndNuma => e.word(TAG_ENDNUMA),
        Instr::Split { arms } => {
            e.word(TAG_SPLIT);
            e.word(arms.len() as u64);
            for arm in arms {
                e.operand(&arm.thickness);
                e.target(&arm.target, at)?;
            }
        }
        Instr::Join => e.word(TAG_JOIN),
        Instr::Spawn { count, target } => {
            e.word(TAG_SPAWN);
            e.operand(count);
            e.target(target, at)?;
        }
        Instr::SJoin => e.word(TAG_SJOIN),
        Instr::Sync => e.word(TAG_SYNC),
        Instr::Halt => e.word(TAG_HALT),
        Instr::Nop => e.word(TAG_NOP),
    }
    Ok(())
}

fn decode_instr(d: &mut Dec<'_>) -> Result<Instr, IsaError> {
    let tag = d.word()?;
    Ok(match tag {
        TAG_ALU => Instr::Alu {
            op: d.index(&AluOp::ALL, "alu op")?,
            rd: d.reg()?,
            ra: d.reg()?,
            rb: d.operand()?,
        },
        TAG_LDI => Instr::Ldi {
            rd: d.reg()?,
            imm: d.signed()?,
        },
        TAG_MFS => Instr::Mfs {
            rd: d.reg()?,
            sr: d.index(&crate::reg::SpecialReg::ALL, "special register")?,
        },
        TAG_SEL => Instr::Sel {
            rd: d.reg()?,
            cond: d.reg()?,
            rt: d.reg()?,
            rf: d.operand()?,
        },
        TAG_LD => Instr::Ld {
            rd: d.reg()?,
            base: d.reg()?,
            off: d.signed()?,
            space: d.space()?,
        },
        TAG_ST => Instr::St {
            rs: d.reg()?,
            base: d.reg()?,
            off: d.signed()?,
            space: d.space()?,
        },
        TAG_STM => Instr::StMasked {
            cond: d.reg()?,
            rs: d.reg()?,
            base: d.reg()?,
            off: d.signed()?,
            space: d.space()?,
        },
        TAG_MOP => Instr::MultiOp {
            kind: d.index(&MultiKind::ALL, "multiop kind")?,
            base: d.reg()?,
            off: d.signed()?,
            rs: d.reg()?,
        },
        TAG_MPREFIX => Instr::MultiPrefix {
            kind: d.index(&MultiKind::ALL, "multiop kind")?,
            rd: d.reg()?,
            base: d.reg()?,
            off: d.signed()?,
            rs: d.reg()?,
        },
        TAG_JMP => Instr::Jmp {
            target: d.target()?,
        },
        TAG_BR => Instr::Br {
            cond: d.index(&BrCond::ALL, "branch condition")?,
            rs: d.reg()?,
            target: d.target()?,
        },
        TAG_CALL => Instr::Call {
            target: d.target()?,
        },
        TAG_RET => Instr::Ret,
        TAG_SETTHICK => Instr::SetThick { src: d.operand()? },
        TAG_NUMA => Instr::Numa {
            slots: d.operand()?,
        },
        TAG_ENDNUMA => Instr::EndNuma,
        TAG_SPLIT => {
            let n = d.word()? as usize;
            if n > 1 << 20 {
                return Err(d.err(format!("implausible split arm count {n}")));
            }
            let mut arms = Vec::with_capacity(n);
            for _ in 0..n {
                arms.push(SplitArm {
                    thickness: d.operand()?,
                    target: d.target()?,
                });
            }
            Instr::Split { arms }
        }
        TAG_JOIN => Instr::Join,
        TAG_SPAWN => Instr::Spawn {
            count: d.operand()?,
            target: d.target()?,
        },
        TAG_SJOIN => Instr::SJoin,
        TAG_SYNC => Instr::Sync,
        TAG_HALT => Instr::Halt,
        TAG_NOP => Instr::Nop,
        other => return Err(d.err(format!("unknown instruction tag {other}"))),
    })
}

/// Encodes a resolved program into instruction-memory words.
pub fn encode(p: &Program) -> Result<Vec<u64>, IsaError> {
    let mut e = Enc { words: Vec::new() };
    e.word(MAGIC);
    e.word(p.entry as u64);
    e.word(p.instrs.len() as u64);
    for (at, instr) in p.instrs.iter().enumerate() {
        encode_instr(&mut e, instr, at)?;
    }
    e.word(p.data.len() as u64);
    for block in &p.data {
        e.word(block.base as u64);
        e.word(block.words.len() as u64);
        for &w in &block.words {
            e.signed(w);
        }
    }
    Ok(e.words)
}

/// Decodes instruction-memory words back into a program (without labels).
pub fn decode(words: &[u64]) -> Result<Program, IsaError> {
    let mut d = Dec { words, pos: 0 };
    if d.word()? != MAGIC {
        return Err(d.err("bad magic"));
    }
    let entry = d.word()? as usize;
    let n = d.word()? as usize;
    if n > words.len() {
        return Err(d.err(format!("implausible instruction count {n}")));
    }
    let mut instrs = Vec::with_capacity(n);
    for _ in 0..n {
        instrs.push(decode_instr(&mut d)?);
    }
    let nblocks = d.word()? as usize;
    if nblocks > words.len() {
        return Err(d.err(format!("implausible data block count {nblocks}")));
    }
    let mut data = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let base = d.word()? as usize;
        let len = d.word()? as usize;
        if len > words.len() {
            return Err(d.err(format!("implausible data length {len}")));
        }
        let mut block = Vec::with_capacity(len);
        for _ in 0..len {
            block.push(d.signed()?);
        }
        data.push(DataBlock { base, words: block });
    }
    if d.pos != words.len() {
        return Err(d.err("trailing words after program"));
    }
    let mut p = Program {
        instrs,
        labels: Default::default(),
        data,
        entry,
    };
    // Re-validate target ranges through the public constructor path.
    let labels = std::mem::take(&mut p.labels);
    let validated = Program::new(p.instrs, labels, p.data)?;
    if entry > validated.instrs.len() {
        return Err(IsaError::TargetOutOfRange {
            at: 0,
            target: entry,
            len: validated.instrs.len(),
        });
    }
    Ok(Program { entry, ..validated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn roundtrip_representative_program() {
        let p = assemble(
            "main:\n    setthick 16\n    mfs r1, tid\n    ldi r2, 100\n    add r3, r2, r1\n    ld r4, [r3+0]\n    mpadd r5, [r2+64], r4\n    madd [r2+65], r4\n    sel r6, r4, r5, 0\n    stm r4, r6, [r3+1]\n    split (8 -> w), (r1 -> w)\n    numa 4\n    endnuma\n    spawn 4, w\n    sjoin\n    sync\n    halt\nw:  join\n",
        )
        .unwrap();
        let bin = encode(&p).unwrap();
        let q = decode(&bin).unwrap();
        assert_eq!(p.instrs, q.instrs);
        assert_eq!(p.entry, q.entry);
        assert_eq!(p.data, q.data);
    }

    #[test]
    fn unresolved_target_cannot_encode() {
        use crate::instr::{Instr, Target};
        let p = Program {
            instrs: vec![Instr::Jmp {
                target: Target::Label("x".into()),
            }],
            labels: Default::default(),
            data: vec![],
            entry: 0,
        };
        assert!(matches!(encode(&p), Err(IsaError::UnresolvedTarget { .. })));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(decode(&[0, 0, 0]), Err(IsaError::Decode { .. })));
    }

    #[test]
    fn truncated_input_rejected() {
        let p = assemble("ldi r1, 5\nhalt\n").unwrap();
        let bin = encode(&p).unwrap();
        assert!(decode(&bin[..bin.len() - 1]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let p = assemble("halt\n").unwrap();
        let mut bin = encode(&p).unwrap();
        bin.push(99);
        assert!(decode(&bin).is_err());
    }
}
