//! Assembled programs: instruction sequence, labels and static data.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::instr::{Instr, Target};
use crate::word::{Addr, Word};

/// A block of words to be placed in shared memory before execution starts
/// (the `.data` directive of the assembler).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataBlock {
    /// First word address of the block.
    pub base: Addr,
    /// Initial contents.
    pub words: Vec<Word>,
}

/// An executable program: resolved instructions plus metadata.
///
/// Programs are produced by [`crate::asm::assemble`] or
/// [`crate::builder::ProgramBuilder`] and are immutable afterwards; all
/// execution engines in the workspace share them by reference (often behind
/// an `Arc`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The instruction memory.
    pub instrs: Vec<Instr>,
    /// Label name → instruction index. Kept for disassembly and debugging.
    pub labels: BTreeMap<String, usize>,
    /// Static shared-memory initializers.
    pub data: Vec<DataBlock>,
    /// Entry point (instruction index), normally 0 or the `main` label.
    pub entry: usize,
}

impl Program {
    /// Creates a program from raw parts and resolves every symbolic target.
    pub fn new(
        instrs: Vec<Instr>,
        labels: BTreeMap<String, usize>,
        data: Vec<DataBlock>,
    ) -> Result<Program, IsaError> {
        let mut p = Program {
            instrs,
            labels,
            data,
            entry: 0,
        };
        p.resolve()?;
        if let Some(&main) = p.labels.get("main") {
            p.entry = main;
        }
        p.validate()?;
        Ok(p)
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Looks up a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Rewrites every `Target::Label` to `Target::Abs` using the label map.
    fn resolve(&mut self) -> Result<(), IsaError> {
        let labels = self.labels.clone();
        for (idx, instr) in self.instrs.iter_mut().enumerate() {
            for t in instr.targets_mut() {
                if let Target::Label(name) = t {
                    match labels.get(name.as_str()) {
                        Some(&abs) => *t = Target::Abs(abs),
                        None => {
                            return Err(IsaError::UnknownLabel {
                                label: name.clone(),
                                at: idx,
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks that all targets are resolved and within the program, and the
    /// entry point is valid.
    fn validate(&self) -> Result<(), IsaError> {
        for (idx, instr) in self.instrs.iter().enumerate() {
            for t in instr.targets() {
                match t.abs() {
                    Some(abs) if abs <= self.instrs.len() => {}
                    Some(abs) => {
                        return Err(IsaError::TargetOutOfRange {
                            at: idx,
                            target: abs,
                            len: self.instrs.len(),
                        })
                    }
                    None => {
                        return Err(IsaError::UnresolvedTarget { at: idx });
                    }
                }
            }
        }
        if self.entry > self.instrs.len() {
            return Err(IsaError::TargetOutOfRange {
                at: 0,
                target: self.entry,
                len: self.instrs.len(),
            });
        }
        Ok(())
    }

    /// Produces an assembler listing with labels interleaved, suitable for
    /// re-assembly (`asm::assemble(&p.listing())` round-trips).
    pub fn listing(&self) -> String {
        let mut by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, &idx) in &self.labels {
            by_index.entry(idx).or_default().push(name);
        }
        let mut out = String::new();
        for block in &self.data {
            out.push_str(&format!(".data {}:", block.base));
            for w in &block.words {
                out.push_str(&format!(" {w}"));
            }
            out.push('\n');
        }
        for (idx, instr) in self.instrs.iter().enumerate() {
            if let Some(names) = by_index.get(&idx) {
                for name in names {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            // Render targets symbolically when a label exists for them.
            out.push_str("    ");
            out.push_str(&self.render_instr(instr));
            out.push('\n');
        }
        if let Some(names) = by_index.get(&self.instrs.len()) {
            for name in names {
                out.push_str(&format!("{name}:\n"));
            }
        }
        out
    }

    fn render_instr(&self, instr: &Instr) -> String {
        let mut text = instr.to_string();
        // Replace "@<idx>" occurrences by a label when one maps to the index;
        // string-level replacement is fine because "@" only ever appears in
        // rendered targets.
        for (name, idx) in &self.labels {
            let pat = format!("@{idx}");
            if text.contains(&pat) {
                text = text.replace(&pat, name);
            }
        }
        text
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BrCond, Operand};
    use crate::op::AluOp;
    use crate::reg::r;

    fn jmp(l: &str) -> Instr {
        Instr::Jmp {
            target: Target::Label(l.into()),
        }
    }

    #[test]
    fn resolves_labels() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 0);
        let p = Program::new(vec![Instr::Nop, jmp("loop")], labels, vec![]).unwrap();
        assert_eq!(p.instrs[1].targets()[0].abs(), Some(0));
    }

    #[test]
    fn unknown_label_is_error() {
        let e = Program::new(vec![jmp("nowhere")], BTreeMap::new(), vec![]).unwrap_err();
        assert!(matches!(e, IsaError::UnknownLabel { .. }));
    }

    #[test]
    fn entry_defaults_to_main() {
        let mut labels = BTreeMap::new();
        labels.insert("main".to_string(), 1);
        let p = Program::new(vec![Instr::Nop, Instr::Halt], labels, vec![]).unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn out_of_range_target_is_error() {
        let p = Program::new(
            vec![Instr::Jmp {
                target: Target::Abs(5),
            }],
            BTreeMap::new(),
            vec![],
        );
        assert!(matches!(p, Err(IsaError::TargetOutOfRange { .. })));
    }

    #[test]
    fn listing_renders_labels() {
        let mut labels = BTreeMap::new();
        labels.insert("top".to_string(), 0);
        let p = Program::new(
            vec![
                Instr::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    ra: r(1),
                    rb: Operand::Imm(1),
                },
                Instr::Br {
                    cond: BrCond::Nez,
                    rs: r(1),
                    target: Target::Label("top".into()),
                },
            ],
            labels,
            vec![DataBlock {
                base: 100,
                words: vec![1, 2, 3],
            }],
        )
        .unwrap();
        let listing = p.listing();
        assert!(listing.contains("top:"));
        assert!(listing.contains("bnez r1, top"));
        assert!(listing.contains(".data 100: 1 2 3"));
    }

    #[test]
    fn fetch_past_end_is_none() {
        let p = Program::new(vec![Instr::Halt], BTreeMap::new(), vec![]).unwrap();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
    }
}
