//! Machine words and addresses.
//!
//! The extended PRAM-NUMA model is a *word-wise accessible* shared-memory
//! model; every register and memory cell holds one [`Word`]. Arithmetic is
//! two's-complement wrapping, matching what a fixed-width hardware datapath
//! would produce, so that simulator results are deterministic and the
//! property tests can compare execution models bit-for-bit.

/// A 64-bit machine word (two's-complement).
pub type Word = i64;

/// A word address into one of the memory spaces.
///
/// Addresses index *words*, not bytes: the model of the paper is word-wise
/// accessible and nothing in it requires sub-word addressing.
pub type Addr = usize;

/// Wrapping signed division with the hardware convention that division by
/// zero yields 0 (rather than trapping — the model has no trap machinery).
#[inline]
pub fn div_w(a: Word, b: Word) -> Word {
    if b == 0 {
        0
    } else {
        a.wrapping_div(b)
    }
}

/// Wrapping signed remainder; remainder by zero yields 0.
#[inline]
pub fn rem_w(a: Word, b: Word) -> Word {
    if b == 0 {
        0
    } else {
        a.wrapping_rem(b)
    }
}

/// Shift amount masked to the word width, as hardware shifters do.
#[inline]
pub fn shamt(b: Word) -> u32 {
    (b as u64 & 63) as u32
}

/// Convert a word to an address, clamping negatives to 0.
///
/// Negative addresses can only arise from buggy guest programs; clamping
/// keeps the simulator deterministic while the out-of-range check in the
/// memory system reports the fault.
#[inline]
pub fn to_addr(w: Word) -> Addr {
    if w < 0 {
        0
    } else {
        w as Addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_by_zero_is_zero() {
        assert_eq!(div_w(42, 0), 0);
        assert_eq!(rem_w(42, 0), 0);
    }

    #[test]
    fn div_min_by_minus_one_wraps() {
        assert_eq!(div_w(Word::MIN, -1), Word::MIN);
        assert_eq!(rem_w(Word::MIN, -1), 0);
    }

    #[test]
    fn shamt_masks_to_six_bits() {
        assert_eq!(shamt(64), 0);
        assert_eq!(shamt(65), 1);
        assert_eq!(shamt(-1), 63);
    }

    #[test]
    fn to_addr_clamps_negative() {
        assert_eq!(to_addr(-5), 0);
        assert_eq!(to_addr(7), 7);
    }
}
