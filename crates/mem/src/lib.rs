#![warn(missing_docs)]
//! # tcf-mem — the memory system of the (extended) PRAM-NUMA machine
//!
//! The PRAM-NUMA model (Forsell & Leppänen) gives every processor group two
//! views of storage:
//!
//! * a **word-wise accessible global shared memory**, physically distributed
//!   over `M` memory modules and reached through the interconnection
//!   network (the *emulated shared memory* of ESM machines), and
//! * a **local memory block** per processor group, accessed directly in
//!   NUMA mode.
//!
//! This crate implements both, together with the concurrent-access
//! semantics the model family needs:
//!
//! * step-synchronous PRAM access — within one step all reads observe the
//!   state *before* the step's writes ([`SharedMemory::step`]),
//! * configurable concurrent-write resolution ([`CrcwPolicy`]),
//! * **multioperations** — concurrent writes to one word combined by the
//!   active memory unit (`madd`, `mmax`, …), and
//! * **multiprefixes** — the ordered variant where every participant also
//!   receives the prefix of the combination in thread-rank order.
//!
//! Address-to-module placement is pluggable ([`ModuleMap`]): plain
//! interleaving or the randomizing linear hash used by ESM realizations to
//! spread references evenly over modules. Per-step congestion statistics
//! ([`StepStats`]) feed the network model of `tcf-machine`.

pub mod error;
pub mod hash;
pub mod local;
pub mod module;
pub mod refs;
pub mod shared;
pub mod stats;

pub use error::MemError;
pub use hash::ModuleMap;
pub use local::LocalMemory;
pub use refs::{MemOp, MemRef, RefOrigin};
pub use shared::{
    BulkPathStats, BulkReplies, BulkView, CrcwPolicy, ShardOutcome, SharedMemory, StepScratch,
};
pub use stats::StepStats;
