//! The emulated shared memory: step-synchronous word storage distributed
//! over modules.

use serde::{Deserialize, Serialize};

use tcf_isa::instr::MultiKind;
use tcf_isa::program::DataBlock;
use tcf_isa::word::{Addr, Word};

use crate::error::MemError;
use crate::hash::ModuleMap;
use crate::module::combine;
use crate::refs::{MemOp, MemRef, RefOrigin};
use crate::stats::StepStats;

/// Concurrent-access policy of the shared memory.
///
/// The PRAM-NUMA machine family is a CRCW PRAM with multioperations; the
/// weaker policies are provided so algorithm implementations can be checked
/// against stricter PRAM submodels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrcwPolicy {
    /// Concurrent writes allowed; the *highest*-rank writer wins. (A legal
    /// refinement of "arbitrary" that keeps simulation deterministic, and
    /// deliberately different from `Priority` so the two are observably
    /// distinct.)
    Arbitrary,
    /// Concurrent writes allowed; the *lowest*-rank writer wins (the
    /// classical Priority CRCW PRAM).
    Priority,
    /// Concurrent writes must all carry the same value, else a fault.
    Common,
    /// Concurrent reads allowed, concurrent writes fault (CREW).
    Crew,
    /// Any concurrent access to one address faults (EREW).
    Erew,
}

/// Outcome of resolving one module's references without mutating the
/// memory (see [`SharedMemory::resolve_shard`]): the values staged for the
/// module's addresses, the replies owed to individual references, and the
/// shard's contribution to the step statistics.
///
/// Shards of one step touch disjoint address sets (an address maps to
/// exactly one module), so outcomes can be produced concurrently and
/// committed in any order; every ordering-sensitive decision (CRCW winner,
/// multiprefix order) is taken inside the shard from reference ranks.
#[derive(Debug, Clone, Default)]
pub struct ShardOutcome {
    /// `(addr, new value)` pairs to apply at commit.
    pub staged: Vec<(Addr, Word)>,
    /// `(reference index, reply)` pairs for `Read`/`Prefix` references.
    pub replies: Vec<(usize, Word)>,
    /// Addresses that received more than one reference.
    pub hot_addrs: usize,
    /// References absorbed by combining.
    pub combined: usize,
}

/// How bulk (strided) references were resolved so far: through the
/// disjoint closed-form path or through literal lane expansion. These are
/// memory-lifetime counters (not per-step [`StepStats`]) so the
/// fast-vs-expansion equivalence tests, which compare per-step stats
/// across the two paths, stay meaningful.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BulkPathStats {
    /// Bulk references resolved by the disjoint fast path (no lane
    /// materialization).
    pub fast: u64,
    /// Bulk references that fell back to literal lane expansion
    /// (conflict-driven: overlapping address sets or a zero stride).
    pub expanded: u64,
    /// Total lanes materialized by those expansions.
    pub expanded_lanes: u64,
}

/// Reusable buffers for the shared-memory step: the sort-based
/// address-grouping pairs plus per-address resolution arenas.
///
/// A machine in steady state issues a memory step every cycle; building a
/// fresh `BTreeMap<Addr, Vec<usize>>` (plus per-address vectors) each time
/// dominated the resolution cost. A `StepScratch` persists across steps —
/// its vectors reach the workload's high-water mark once and then recycle
/// their allocations. [`SharedMemory::step_with`] and
/// [`SharedMemory::resolve_shard_with`] take one; the scratch-free
/// [`step`](SharedMemory::step)/[`resolve_shard`](SharedMemory::resolve_shard)
/// wrappers build a throwaway (tests, one-shot host calls).
///
/// Determinism is unchanged: the pair sort orders by `(addr, ref index)`,
/// reproducing the old map's ascending-address iteration with
/// ascending-index groups, and the per-kind combine buffers are visited in
/// [`MultiKind`] declaration order — the same order the old
/// `BTreeMap<MultiKind, _>` iterated, since the enum's `Ord` derives from
/// declaration order.
#[derive(Debug, Default, Clone)]
pub struct StepScratch {
    /// `(addr, ref index)` pairs, sorted to group references by address.
    pairs: Vec<(Addr, usize)>,
    /// Pending `(ref index, reply)` pairs of the step.
    replies: Vec<(usize, Word)>,
    /// Staged `(addr, new value)` writes of the step.
    staged: Vec<(Addr, Word)>,
    /// Per-address resolution arena.
    addr: AddrScratch,
    /// Lane-expanded references of a bulk step that could not take the
    /// disjoint fast path.
    flat: Vec<MemRef>,
    /// Reply slots of the lane-expanded step.
    flat_replies: Vec<Option<Word>>,
}

/// Per-address scratch of [`StepScratch`]: plain-write and combining
/// buffers, cleared for every resolved address.
#[derive(Debug, Default, Clone)]
struct AddrScratch {
    /// `(rank, value)` plain-write contenders.
    plain_writes: Vec<(usize, Word)>,
    /// `(rank, contribution, reply slot)` per combining kind, indexed by
    /// `MultiKind` declaration order.
    combines: [Vec<(usize, Word, Option<usize>)>; 6],
    /// Rank-ordered contribution values handed to the combiner.
    values: Vec<Word>,
    /// Rank-indexed slot map of the dense scatter (`u32::MAX` = empty).
    slots: Vec<u32>,
    /// Scatter output, swapped with the combine buffer being ordered.
    sorted: Vec<(usize, Word, Option<usize>)>,
}

/// Orders combine entries by rank. Ranks within one combining step are
/// lane ids and in practice unique and near-contiguous, so a dense
/// rank-bucket scatter replaces the former `O(n log n)`
/// `sort_by_key(rank)`: place each entry at `rank - min` in a slot map,
/// then read the slots back in order. Falls back to the stable sort when
/// ranks collide (two flows contributing under the same rank) or span too
/// wide a range for a cheap slot fill — the fallback preserves the exact
/// pre-scatter semantics (issue order among equal ranks).
fn order_by_rank(
    entries: &mut Vec<(usize, Word, Option<usize>)>,
    slots: &mut Vec<u32>,
    sorted: &mut Vec<(usize, Word, Option<usize>)>,
) {
    let n = entries.len();
    if n <= 1 {
        return;
    }
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for &(rank, _, _) in entries.iter() {
        lo = lo.min(rank);
        hi = hi.max(rank);
    }
    let range = hi - lo + 1;
    // `range < n` implies a duplicate; a huge sparse range would make the
    // slot fill itself the cost.
    if range >= n && range <= 4 * n + 1024 {
        slots.clear();
        slots.resize(range, u32::MAX);
        let mut unique = true;
        for (j, &(rank, _, _)) in entries.iter().enumerate() {
            let s = rank - lo;
            if slots[s] != u32::MAX {
                unique = false;
                break;
            }
            slots[s] = j as u32;
        }
        if unique {
            sorted.clear();
            sorted.extend(
                slots
                    .iter()
                    .filter(|&&j| j != u32::MAX)
                    .map(|&j| entries[j as usize]),
            );
            std::mem::swap(entries, sorted);
            return;
        }
    }
    entries.sort_by_key(|&(rank, _, _)| rank);
}

/// The step-synchronous shared memory of one machine.
///
/// Within a [`step`](SharedMemory::step) every read observes the state
/// before the step's writes (the classical PRAM read-then-write step), plain
/// concurrent writes resolve per [`CrcwPolicy`], and
/// multioperation/multiprefix contributions to one word are combined by the
/// active memory unit in thread-rank order. Multioperations are exempt from
/// the exclusivity checks of `Crew`/`Erew`: combining is their entire
/// purpose, and the machines that provide them route them through dedicated
/// hardware.
///
/// If one step mixes plain writes and multioperations on the same address,
/// the plain writes resolve first and the combinations apply on top — a
/// defined (if inadvisable) guest behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedMemory {
    words: Vec<Word>,
    modules: usize,
    map: ModuleMap,
    policy: CrcwPolicy,
    bulk_stats: BulkPathStats,
}

impl SharedMemory {
    /// Creates a zeroed shared memory of `size` words over `modules`
    /// modules.
    pub fn new(size: usize, modules: usize, map: ModuleMap, policy: CrcwPolicy) -> SharedMemory {
        assert!(modules > 0, "a machine needs at least one memory module");
        SharedMemory {
            words: vec![0; size],
            modules,
            map,
            policy,
            bulk_stats: BulkPathStats::default(),
        }
    }

    /// Bulk-resolution counters so far (fast-path vs conflict-driven
    /// expansion).
    pub fn bulk_stats(&self) -> &BulkPathStats {
        &self.bulk_stats
    }

    /// Size of the address space in words.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Number of physical modules.
    #[inline]
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module an address maps to.
    #[inline]
    pub fn module_of(&self, addr: Addr) -> usize {
        self.map.module_of(addr, self.modules)
    }

    /// Per-lane module increment of an address progression with the given
    /// stride, when the module map preserves progressions: under low-order
    /// interleaving lane `k` of a strided access hits module
    /// `(module_of(base) + k·step) mod modules`. A hashed map scatters the
    /// progression, so there is no step — callers fall back to per-lane
    /// module lookups.
    #[inline]
    pub fn strided_node_step(&self, stride: i64) -> Option<usize> {
        match self.map {
            ModuleMap::Interleaved => Some(stride.rem_euclid(self.modules as i64) as usize),
            ModuleMap::LinearHash { .. } => None,
        }
    }

    /// Host read (no step semantics), for runtimes and tests.
    pub fn peek(&self, addr: Addr) -> Result<Word, MemError> {
        self.words.get(addr).copied().ok_or(MemError::OutOfBounds {
            addr,
            size: self.words.len(),
        })
    }

    /// Host write (no step semantics), for runtimes and tests.
    pub fn poke(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let size = self.words.len();
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(MemError::OutOfBounds { addr, size }),
        }
    }

    /// Host read of a contiguous range.
    pub fn peek_range(&self, base: Addr, len: usize) -> Result<Vec<Word>, MemError> {
        (base..base + len).map(|a| self.peek(a)).collect()
    }

    /// Loads a program's static data blocks.
    pub fn load_data(&mut self, blocks: &[DataBlock]) -> Result<(), MemError> {
        for block in blocks {
            for (i, &w) in block.words.iter().enumerate() {
                self.poke(block.base + i, w)?;
            }
        }
        Ok(())
    }

    /// Executes one synchronous memory step.
    ///
    /// Returns one reply slot per input reference (aligned by index): the
    /// read value for `Read`, the rank-order exclusive prefix for `Prefix`,
    /// and `None` for `Write`/`Multi`. Also returns the step's congestion
    /// statistics.
    pub fn step(&mut self, refs: &[MemRef]) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let mut scratch = StepScratch::default();
        self.step_with(refs, &mut scratch)
    }

    /// [`step`](SharedMemory::step) with caller-provided scratch buffers —
    /// the steady-state entry point. Machines keep one [`StepScratch`] per
    /// resolution context so the per-step address grouping and combining
    /// allocate nothing once warm.
    pub fn step_with(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
    ) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let mut replies = Vec::new();
        let stats = self.step_into(refs, scratch, &mut replies)?;
        Ok((replies, stats))
    }

    /// [`step_with`](SharedMemory::step_with), writing the per-reference
    /// reply slots into a caller-owned buffer (cleared and refilled each
    /// call) so a warm caller allocates nothing at all.
    pub fn step_into(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
        replies: &mut Vec<Option<Word>>,
    ) -> Result<StepStats, MemError> {
        debug_assert!(
            refs.iter().all(|r| !r.op.is_bulk()),
            "bulk references resolve through step_bulk_into"
        );
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();

        // Bounds check and module accounting up front so faults are
        // reported before any mutation.
        for r in refs {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            stats.per_module[self.module_of(addr)] += 1;
        }

        // Group references by address, deterministically: sorting the
        // `(addr, index)` pairs yields ascending addresses with ascending
        // indices inside each address run (the pair order is total, so the
        // unstable sort is deterministic).
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(refs.iter().enumerate().map(|(i, r)| (r.op.addr(), i)));
        scratch.pairs.sort_unstable();

        replies.clear();
        replies.resize(refs.len(), None);
        // The step is atomic: new values are staged and applied only after
        // every address resolved without fault, so a failed step never
        // leaves partial writes behind.
        scratch.replies.clear();
        scratch.staged.clear();

        self.resolve_pairs(refs, scratch, &mut stats)?;
        for &(i, v) in &scratch.replies {
            replies[i] = Some(v);
        }
        for &(addr, value) in &scratch.staged {
            self.words[addr] = value;
        }

        Ok(stats)
    }

    /// Resolves the sorted `(addr, index)` pairs in `scratch.pairs` into
    /// `scratch.replies`/`scratch.staged`, accumulating `hot_addrs` and
    /// `combined` into `stats` — the address-grouped core of
    /// [`step_into`](SharedMemory::step_into), shared with the
    /// scalar-subset resolution of the bulk path.
    fn resolve_pairs(
        &self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
        stats: &mut StepStats,
    ) -> Result<(), MemError> {
        let mut start = 0;
        while start < scratch.pairs.len() {
            let addr = scratch.pairs[start].0;
            let mut end = start + 1;
            while end < scratch.pairs.len() && scratch.pairs[end].0 == addr {
                end += 1;
            }
            let value = if end - start == 1 {
                // Overwhelmingly common case (per-thread strided access):
                // one reference per address needs no policy check and no
                // combine arena.
                self.resolve_single(scratch.pairs[start].1, refs, &mut scratch.replies)
            } else {
                stats.hot_addrs += 1;
                let run = &scratch.pairs[start..end];
                let (value, combined) =
                    self.resolve_addr(addr, run, refs, &mut scratch.addr, &mut scratch.replies)?;
                stats.combined += combined;
                value
            };
            scratch.staged.push((addr, value));
            start = end;
        }
        Ok(())
    }

    /// Resolves an address referenced exactly once — the overwhelmingly
    /// common case under per-thread strided access. A lone reference can
    /// violate no exclusivity policy and a lone multioperation
    /// contribution combines directly, so the combine arena (and its
    /// per-address clear/sort work) is skipped entirely. Must agree with
    /// [`resolve_addr`](Self::resolve_addr) on single-element runs (see
    /// the `single_ref_fast_path_matches_general_path` test).
    #[inline]
    fn resolve_single(&self, i: usize, refs: &[MemRef], replies: &mut Vec<(usize, Word)>) -> Word {
        match refs[i].op {
            MemOp::Read(addr) => {
                let old = self.words[addr];
                replies.push((i, old));
                old
            }
            MemOp::Write(_, v) => v,
            MemOp::Multi(kind, addr, v) => kind.combine(self.words[addr], v),
            MemOp::Prefix(kind, addr, v) => {
                // The exclusive prefix of the sole participant is the
                // memory's old value (the combine seed).
                let old = self.words[addr];
                replies.push((i, old));
                kind.combine(old, v)
            }
            MemOp::StridedRead { .. } | MemOp::StridedWrite { .. } | MemOp::BulkMulti { .. } => {
                unreachable!("bulk references resolve through step_bulk_into")
            }
        }
    }

    /// Resolves every reference to one address (the `run` of sorted
    /// `(addr, index)` pairs): CRCW policy checks, plain write resolution,
    /// multioperation combining. Pure with respect to the stored words;
    /// both the sequential [`step`](SharedMemory::step) and the sharded
    /// path go through here so the two cannot diverge. Replies append to
    /// `replies`; returns `(staged value, references absorbed by
    /// combining)`.
    fn resolve_addr(
        &self,
        addr: Addr,
        run: &[(Addr, usize)],
        refs: &[MemRef],
        arena: &mut AddrScratch,
        replies: &mut Vec<(usize, Word)>,
    ) -> Result<(Word, usize), MemError> {
        let old = self.words[addr];
        let mut combined = 0usize;

        arena.plain_writes.clear();
        for c in &mut arena.combines {
            c.clear();
        }
        let mut readers = 0usize;
        let mut writers = 0usize;

        for &(_, i) in run {
            match refs[i].op {
                MemOp::Read(_) => {
                    replies.push((i, old));
                    readers += 1;
                }
                MemOp::Write(_, v) => {
                    arena.plain_writes.push((refs[i].origin.rank, v));
                    writers += 1;
                }
                MemOp::Multi(kind, _, v) => {
                    arena.combines[kind as usize].push((refs[i].origin.rank, v, None));
                }
                MemOp::Prefix(kind, _, v) => {
                    arena.combines[kind as usize].push((refs[i].origin.rank, v, Some(i)));
                }
                MemOp::StridedRead { .. }
                | MemOp::StridedWrite { .. }
                | MemOp::BulkMulti { .. } => {
                    unreachable!("bulk references resolve through step_bulk_into")
                }
            }
        }

        // Exclusivity policies (multioperations exempt, see type docs).
        match self.policy {
            CrcwPolicy::Erew => {
                if readers + writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: readers + writers,
                    });
                }
            }
            CrcwPolicy::Crew => {
                if writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: writers,
                    });
                }
            }
            CrcwPolicy::Common => {
                if writers > 1 {
                    let first = arena.plain_writes[0].1;
                    if arena.plain_writes.iter().any(|&(_, v)| v != first) {
                        return Err(MemError::CommonWriteConflict { addr });
                    }
                }
            }
            CrcwPolicy::Arbitrary | CrcwPolicy::Priority => {}
        }

        // Resolve plain writes. Only one extreme-rank contender survives,
        // so a linear scan replaces the former stable sort: `Arbitrary`
        // takes the highest rank (`>=` so the later contender wins rank
        // ties, as `.last()` after a stable sort did), everything else
        // the lowest (strict `<` keeps the earliest tied contender, as
        // `.first()` did).
        let mut value = old;
        if let Some(&first) = arena.plain_writes.first() {
            let mut best = first;
            match self.policy {
                CrcwPolicy::Arbitrary => {
                    for &(rank, v) in &arena.plain_writes[1..] {
                        if rank >= best.0 {
                            best = (rank, v);
                        }
                    }
                }
                _ => {
                    for &(rank, v) in &arena.plain_writes[1..] {
                        if rank < best.0 {
                            best = (rank, v);
                        }
                    }
                }
            }
            value = best.1;
        }

        // Apply combinations in `MultiKind` declaration order (== the
        // enum's `Ord`, so the same deterministic order the former
        // `BTreeMap<MultiKind, _>` iterated in).
        for k in 0..arena.combines.len() {
            if arena.combines[k].is_empty() {
                continue;
            }
            let kind = MultiKind::ALL[k];
            {
                let AddrScratch {
                    combines,
                    slots,
                    sorted,
                    ..
                } = arena;
                order_by_rank(&mut combines[k], slots, sorted);
            }
            combined += arena.combines[k].len().saturating_sub(1);
            arena.values.clear();
            arena
                .values
                .extend(arena.combines[k].iter().map(|&(_, v, _)| v));
            let want_prefixes = arena.combines[k].iter().any(|&(_, _, slot)| slot.is_some());
            let outcome = combine(kind, value, &arena.values, want_prefixes);
            if want_prefixes {
                for (j, &(_, _, slot)) in arena.combines[k].iter().enumerate() {
                    if let Some(i) = slot {
                        replies.push((i, outcome.prefixes[j]));
                    }
                }
            }
            value = outcome.new_value;
        }

        Ok((value, combined))
    }

    /// Buckets `refs` (by index) per module, bounds-checking every address
    /// up front — the first out-of-bounds reference in issue order faults,
    /// exactly as [`step`](SharedMemory::step) does. Returns the buckets
    /// and a [`StepStats`] with `refs`/`per_module` filled in; the caller
    /// accumulates `hot_addrs`/`combined` from the shard outcomes.
    pub fn shard_refs(&self, refs: &[MemRef]) -> Result<(Vec<Vec<usize>>, StepStats), MemError> {
        let mut buckets = Vec::new();
        let stats = self.shard_refs_into(refs, &mut buckets)?;
        Ok((buckets, stats))
    }

    /// [`shard_refs`](SharedMemory::shard_refs) into caller-owned buckets:
    /// the outer vector is resized to the module count and every inner
    /// vector is cleared, so a machine reusing the same buckets each step
    /// stops allocating once they reach the workload's high-water mark.
    pub fn shard_refs_into(
        &self,
        refs: &[MemRef],
        buckets: &mut Vec<Vec<usize>>,
    ) -> Result<StepStats, MemError> {
        debug_assert!(
            refs.iter().all(|r| !r.op.is_bulk()),
            "bulk references resolve through the sequential step_bulk_into"
        );
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();
        buckets.resize_with(self.modules, Vec::new);
        for b in buckets.iter_mut() {
            b.clear();
        }
        for (i, r) in refs.iter().enumerate() {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            let m = self.module_of(addr);
            stats.per_module[m] += 1;
            buckets[m].push(i);
        }
        Ok(stats)
    }

    /// Resolves one module's references (`idxs` into `refs`, as produced
    /// by [`shard_refs`](SharedMemory::shard_refs)) without mutating the
    /// memory. Addresses resolve in ascending order, so a faulting shard
    /// reports its *lowest* faulting address — the caller takes the
    /// minimum over shards to reproduce the sequential step's first fault.
    pub fn resolve_shard(&self, refs: &[MemRef], idxs: &[usize]) -> Result<ShardOutcome, MemError> {
        let mut scratch = StepScratch::default();
        self.resolve_shard_with(refs, idxs, &mut scratch)
    }

    /// [`resolve_shard`](SharedMemory::resolve_shard) with caller-provided
    /// scratch. Concurrent shard workers each need their own
    /// [`StepScratch`]; a machine keeps one per module so the parallel
    /// resolution path stays allocation-free in steady state (the returned
    /// [`ShardOutcome`] still owns its staged/reply vectors — they outlive
    /// the call).
    pub fn resolve_shard_with(
        &self,
        refs: &[MemRef],
        idxs: &[usize],
        scratch: &mut StepScratch,
    ) -> Result<ShardOutcome, MemError> {
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(idxs.iter().map(|&i| (refs[i].op.addr(), i)));
        scratch.pairs.sort_unstable();
        let mut out = ShardOutcome::default();
        let mut start = 0;
        while start < scratch.pairs.len() {
            let addr = scratch.pairs[start].0;
            let mut end = start + 1;
            while end < scratch.pairs.len() && scratch.pairs[end].0 == addr {
                end += 1;
            }
            let value = if end - start == 1 {
                self.resolve_single(scratch.pairs[start].1, refs, &mut out.replies)
            } else {
                out.hot_addrs += 1;
                let run = &scratch.pairs[start..end];
                let (value, combined) =
                    self.resolve_addr(addr, run, refs, &mut scratch.addr, &mut out.replies)?;
                out.combined += combined;
                value
            };
            out.staged.push((addr, value));
            start = end;
        }
        Ok(out)
    }

    /// Applies staged shard outcomes. Shards stage disjoint address sets,
    /// so the application order is immaterial; commit nothing when any
    /// shard faulted to keep the step atomic.
    pub fn commit_shards(&mut self, outcomes: &[ShardOutcome]) {
        for o in outcomes {
            for &(addr, value) in &o.staged {
                self.words[addr] = value;
            }
        }
    }

    /// [`step`](SharedMemory::step) for reference lists that may contain
    /// bulk (strided) references; the one-shot convenience wrapper around
    /// [`step_bulk_into`](SharedMemory::step_bulk_into).
    pub fn step_bulk(
        &mut self,
        refs: &[MemRef],
    ) -> Result<(Vec<Option<Word>>, BulkReplies, StepStats), MemError> {
        let mut scratch = StepScratch::default();
        let mut replies = Vec::new();
        let mut bulk = BulkReplies::default();
        let stats = self.step_bulk_into(refs, &mut scratch, &mut replies, &mut bulk)?;
        Ok((replies, bulk, stats))
    }

    /// [`step_into`](SharedMemory::step_into) accepting bulk (strided)
    /// references.
    ///
    /// A bulk reference's semantics are its lane expansion (see
    /// [`MemOp`]); this entry point resolves it without materializing the
    /// lanes whenever the step's address sets are provably disjoint —
    /// each bulk read gathers directly (compressing an affine value run
    /// back to `base + k·stride` form when it detects one) and each bulk
    /// write scatters its progression, for O(lanes) word traffic instead
    /// of O(lanes · log lanes) sort-and-resolve work and no per-lane
    /// `MemRef` materialization. Anything short of provable disjointness
    /// (including a zero address stride) falls back to literal expansion,
    /// so CRCW policies, combining and fault semantics cannot diverge
    /// from the scalar path.
    ///
    /// Scalar replies land in `replies` (aligned by reference index, as
    /// in `step_into`; bulk slots stay `None`); each `StridedRead`'s lane
    /// values land in `bulk` keyed by its reference index.
    pub fn step_bulk_into(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
        replies: &mut Vec<Option<Word>>,
        bulk: &mut BulkReplies,
    ) -> Result<StepStats, MemError> {
        bulk.clear();
        if refs.iter().all(|r| !r.op.is_bulk()) {
            return self.step_into(refs, scratch, replies);
        }
        if self.bulk_overlaps(refs) {
            for r in refs.iter().filter(|r| r.op.is_bulk()) {
                self.bulk_stats.expanded += 1;
                self.bulk_stats.expanded_lanes += r.op.bulk_count() as u64;
            }
            return self.step_bulk_expanded(refs, scratch, replies, bulk);
        }
        self.bulk_stats.fast += refs.iter().filter(|r| r.op.is_bulk()).count() as u64;

        // Disjoint fast path. Bounds-check every lane in issue order
        // first, so faults are reported before any mutation and agree
        // with the expansion.
        let mut stats = StepStats::new(self.modules);
        // Zero-astride multioperation targets, grouped after the scan:
        // a rank-ordered chain of same-word references must count its hot
        // address once with `total - 1` combines, matching the expansion.
        let mut hot: Vec<(Addr, usize)> = Vec::new();
        for r in refs {
            match r.op {
                MemOp::StridedRead {
                    base,
                    stride,
                    count,
                }
                | MemOp::StridedWrite {
                    base,
                    stride,
                    count,
                    ..
                } => {
                    if let Some(addr) = self.first_oob_lane(base, stride, count) {
                        return Err(MemError::OutOfBounds {
                            addr,
                            size: self.words.len(),
                        });
                    }
                    stats.refs += count as usize;
                    self.count_strided_modules(base, stride, count, &mut stats);
                }
                MemOp::BulkMulti {
                    base,
                    astride,
                    count,
                    ..
                } => {
                    if let Some(addr) = self.first_oob_lane(base, astride, count) {
                        return Err(MemError::OutOfBounds {
                            addr,
                            size: self.words.len(),
                        });
                    }
                    stats.refs += count as usize;
                    self.count_strided_modules(base, astride, count, &mut stats);
                    if astride == 0 && count >= 1 {
                        hot.push((base, count as usize));
                    }
                }
                op => {
                    let addr = op.addr();
                    if addr >= self.words.len() {
                        return Err(MemError::OutOfBounds {
                            addr,
                            size: self.words.len(),
                        });
                    }
                    stats.refs += 1;
                    stats.per_module[self.module_of(addr)] += 1;
                }
            }
        }
        // The expansion resolves all contributions to one word through the
        // combine arena, whether they arrive as one `BulkMulti` or as a
        // rank-ordered chain of them.
        hot.sort_unstable();
        let mut k = 0usize;
        while k < hot.len() {
            let base = hot[k].0;
            let mut total = 0usize;
            while k < hot.len() && hot[k].0 == base {
                total += hot[k].1;
                k += 1;
            }
            if total >= 2 {
                stats.hot_addrs += 1;
                stats.combined += total - 1;
            }
        }

        // Resolve the scalar subset through the ordinary grouped path
        // (it may still fault on a policy violation, in which case
        // nothing has been applied yet).
        scratch.pairs.clear();
        scratch.pairs.extend(
            refs.iter()
                .enumerate()
                .filter(|(_, r)| !r.op.is_bulk())
                .map(|(i, r)| (r.op.addr(), i)),
        );
        scratch.pairs.sort_unstable();
        scratch.replies.clear();
        scratch.staged.clear();
        self.resolve_pairs(refs, scratch, &mut stats)?;

        // Gather bulk reads against the pre-step state (scalar writes are
        // still only staged), then apply scalar writes and scatter bulk
        // writes — disjointness makes the write order immaterial. Bulk
        // multioperations resolve in this same pass: disjointness proves
        // no other reference of the step touches their addresses, so the
        // read-combine-write (and its prefix replies, pushed in reference
        // order like the reads) cannot be observed out of order.
        for (i, r) in refs.iter().enumerate() {
            match r.op {
                MemOp::StridedRead {
                    base,
                    stride,
                    count,
                } => {
                    bulk.push_gathered(
                        i,
                        (0..count as usize)
                            .map(|k| self.words[(base as i64 + k as i64 * stride) as usize]),
                    );
                }
                MemOp::BulkMulti {
                    kind,
                    prefix,
                    base,
                    astride,
                    count,
                    vbase,
                    vstride,
                } => {
                    self.resolve_bulk_multi(
                        i, kind, prefix, base, astride, count, vbase, vstride, bulk,
                    );
                }
                _ => {}
            }
        }
        replies.clear();
        replies.resize(refs.len(), None);
        for &(i, v) in &scratch.replies {
            replies[i] = Some(v);
        }
        for &(addr, value) in &scratch.staged {
            self.words[addr] = value;
        }
        for r in refs {
            if let MemOp::StridedWrite {
                base,
                stride,
                count,
                vbase,
                vstride,
            } = r.op
            {
                for k in 0..count as usize {
                    let addr = (base as i64 + k as i64 * stride) as usize;
                    self.words[addr] = vbase.wrapping_add((k as Word).wrapping_mul(vstride));
                }
            }
        }

        Ok(stats)
    }

    /// Resolves one disjoint-path `BulkMulti`: lane `k` contributes
    /// `vbase + k·vstride` to `base + k·astride`, with rank order equal
    /// to lane order by construction. With `astride == 0` the whole run
    /// combines into one word: `Add` folds by the arithmetic-series sum
    /// in O(1) (exact mod 2^64), `Max`/`Min` take the progression's
    /// endpoint extremes when it provably does not wrap, the bitwise
    /// kinds collapse for uniform contributions, and anything else folds
    /// the `count` values directly — still without materializing per-lane
    /// `MemRef`s or touching the combine arena. Prefix replies are the
    /// running combine in lane (= rank) order, pushed through the same
    /// compressing reply arena as bulk reads. Only called from the
    /// disjoint fast path, where no other reference of the step can touch
    /// this reference's addresses.
    #[allow(clippy::too_many_arguments)]
    fn resolve_bulk_multi(
        &mut self,
        ref_idx: usize,
        kind: MultiKind,
        prefix: bool,
        base: Addr,
        astride: i64,
        count: u32,
        vbase: Word,
        vstride: Word,
        bulk: &mut BulkReplies,
    ) {
        let count = count as usize;
        if count == 0 {
            if prefix {
                bulk.push_gathered(ref_idx, std::iter::empty());
            }
            return;
        }
        let contrib = |k: usize| vbase.wrapping_add((k as Word).wrapping_mul(vstride));
        if astride != 0 {
            // Distinct addresses: every lane is its combine's sole
            // participant, so its exclusive prefix is the word's old
            // value (the combine seed).
            if prefix {
                bulk.push_gathered(
                    ref_idx,
                    (0..count).map(|k| self.words[(base as i64 + k as i64 * astride) as usize]),
                );
            }
            for k in 0..count {
                let addr = (base as i64 + k as i64 * astride) as usize;
                self.words[addr] = kind.combine(self.words[addr], contrib(k));
            }
            return;
        }
        let old = self.words[base];
        if prefix {
            let mut acc = old;
            bulk.push_gathered(
                ref_idx,
                (0..count).map(|k| {
                    let p = acc;
                    acc = kind.combine(acc, contrib(k));
                    p
                }),
            );
            self.words[base] = acc;
            return;
        }
        let new = match kind {
            MultiKind::Add => {
                // Σ_k (vbase + k·vstride) = count·vbase + vstride·T(count−1),
                // with the triangular number taken mod 2^64 — wrapping
                // addition is associative and commutative, so the series
                // sum equals the lane-order fold exactly.
                let tri = ((count as u128 * (count as u128 - 1)) / 2) as u64 as i64;
                old.wrapping_add((count as Word).wrapping_mul(vbase))
                    .wrapping_add(vstride.wrapping_mul(tri))
            }
            MultiKind::Max | MultiKind::Min if progression_fits(vbase, vstride, count) => {
                // No wrap ⇒ the progression is monotone, so its extremes
                // sit at the endpoints.
                let last = contrib(count - 1);
                if kind == MultiKind::Max {
                    old.max(vbase.max(last))
                } else {
                    old.min(vbase.min(last))
                }
            }
            MultiKind::And if vstride == 0 => old & vbase,
            MultiKind::Or if vstride == 0 => old | vbase,
            MultiKind::Xor if vstride == 0 => {
                if count % 2 == 1 {
                    old ^ vbase
                } else {
                    old
                }
            }
            // No closed form: chunked progression reduction (exact —
            // every kind is associative and commutative).
            _ => crate::module::fold_progression(kind, old, vbase, vstride, count),
        };
        self.words[base] = new;
    }

    /// The literal-expansion fallback of
    /// [`step_bulk_into`](SharedMemory::step_bulk_into): replace every
    /// bulk reference by its lanes in place (lane `k` gets rank
    /// `origin.rank + k`), run the scalar step, and reassemble the bulk
    /// replies. Trivially equivalent to the defined semantics.
    fn step_bulk_expanded(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
        replies: &mut Vec<Option<Word>>,
        bulk: &mut BulkReplies,
    ) -> Result<StepStats, MemError> {
        let mut flat = std::mem::take(&mut scratch.flat);
        let mut flat_replies = std::mem::take(&mut scratch.flat_replies);
        flat.clear();
        for r in refs {
            match r.op {
                MemOp::StridedRead {
                    base,
                    stride,
                    count,
                } => {
                    flat.extend((0..count as usize).map(|k| {
                        MemRef::new(
                            RefOrigin::new(r.origin.group, r.origin.rank + k),
                            MemOp::Read(Self::lane_addr(base, stride, k)),
                        )
                    }));
                }
                MemOp::StridedWrite {
                    base,
                    stride,
                    count,
                    vbase,
                    vstride,
                } => {
                    flat.extend((0..count as usize).map(|k| {
                        MemRef::new(
                            RefOrigin::new(r.origin.group, r.origin.rank + k),
                            MemOp::Write(
                                Self::lane_addr(base, stride, k),
                                vbase.wrapping_add((k as Word).wrapping_mul(vstride)),
                            ),
                        )
                    }));
                }
                MemOp::BulkMulti {
                    kind,
                    prefix,
                    base,
                    astride,
                    count,
                    vbase,
                    vstride,
                } => {
                    flat.extend((0..count as usize).map(|k| {
                        let addr = Self::lane_addr(base, astride, k);
                        let v = vbase.wrapping_add((k as Word).wrapping_mul(vstride));
                        MemRef::new(
                            RefOrigin::new(r.origin.group, r.origin.rank + k),
                            if prefix {
                                MemOp::Prefix(kind, addr, v)
                            } else {
                                MemOp::Multi(kind, addr, v)
                            },
                        )
                    }));
                }
                _ => flat.push(*r),
            }
        }
        let result = self.step_into(&flat, scratch, &mut flat_replies);
        scratch.flat = flat;
        let stats = match result {
            Ok(s) => s,
            Err(e) => {
                scratch.flat_replies = flat_replies;
                return Err(e);
            }
        };
        replies.clear();
        replies.resize(refs.len(), None);
        let mut pos = 0usize;
        for (i, r) in refs.iter().enumerate() {
            match r.op {
                MemOp::StridedRead { count, .. } => {
                    bulk.push_gathered(
                        i,
                        flat_replies[pos..pos + count as usize]
                            .iter()
                            .map(|v| v.expect("lane read always replies")),
                    );
                    pos += count as usize;
                }
                MemOp::StridedWrite { count, .. } => pos += count as usize,
                MemOp::BulkMulti { prefix, count, .. } => {
                    if prefix {
                        bulk.push_gathered(
                            i,
                            flat_replies[pos..pos + count as usize]
                                .iter()
                                .map(|v| v.expect("lane prefix always replies")),
                        );
                    }
                    pos += count as usize;
                }
                _ => {
                    replies[i] = flat_replies[pos];
                    pos += 1;
                }
            }
        }
        scratch.flat_replies = flat_replies;
        Ok(stats)
    }

    /// Address of lane `k` of a strided reference. Negative lane
    /// addresses cannot arise from a bounds-checked reference; in the
    /// unchecked expansion they saturate to an out-of-range sentinel so
    /// the scalar step faults instead of wrapping.
    #[inline]
    fn lane_addr(base: Addr, stride: i64, k: usize) -> Addr {
        let a = base as i128 + k as i128 * stride as i128;
        if a < 0 {
            usize::MAX
        } else {
            a.min(usize::MAX as i128) as usize
        }
    }

    /// First out-of-bounds lane address of a strided reference, if any —
    /// the lane-order first fault, computed without walking the lanes.
    /// Negative lane addresses report the [`lane_addr`](Self::lane_addr)
    /// sentinel.
    fn first_oob_lane(&self, base: Addr, stride: i64, count: u32) -> Option<Addr> {
        if count == 0 {
            return None;
        }
        let size = self.words.len() as i128;
        let first = base as i128;
        let last = base as i128 + (count as i128 - 1) * stride as i128;
        if first >= 0 && first < size && last >= 0 && last < size {
            // The progression is monotone, so its extremes are at the
            // ends; both in bounds ⇒ every lane in bounds.
            return None;
        }
        // Walk-free first offender: a monotone progression leaves the
        // window exactly once.
        let k = if first >= size {
            0
        } else if stride > 0 {
            // first lane with base + k·stride ≥ size
            ((size - first) + stride as i128 - 1) / stride as i128
        } else if stride < 0 {
            // first lane with base + k·stride < 0
            (first / (-stride as i128)) + 1
        } else {
            0
        };
        Some(Self::lane_addr(base, stride, k as usize))
    }

    /// Adds a strided reference's per-module load to `stats`, matching
    /// the lane expansion. Under low-order interleaving the progression's
    /// residues cycle with period `modules / gcd(stride, modules)`, so
    /// the count folds into one pass over that cycle; a hashed map gets
    /// the per-lane walk.
    fn count_strided_modules(&self, base: Addr, stride: i64, count: u32, stats: &mut StepStats) {
        let count = count as usize;
        match self.map {
            ModuleMap::Interleaved => {
                let m = self.modules;
                let s = stride.rem_euclid(m as i64) as usize;
                let cycle = if s == 0 { 1 } else { m / gcd(s, m) };
                let mut module = base % m;
                for k in 0..cycle.min(count) {
                    // Lanes k, k+cycle, k+2·cycle… all land on `module`.
                    stats.per_module[module] += (count - k).div_ceil(cycle);
                    module = (module + s) % m;
                }
            }
            ModuleMap::LinearHash { .. } => {
                for k in 0..count {
                    let addr = (base as i64 + k as i64 * stride) as usize;
                    stats.per_module[self.module_of(addr)] += 1;
                }
            }
        }
    }

    /// Whether any two references of the step can touch a common address,
    /// treating bulk references as their lane progressions. Conservative:
    /// `true` routes to the expansion path, so false positives cost only
    /// speed, never correctness. Progressions are compared exactly when
    /// they share a stride (the common case: slices of one thick access),
    /// by address-interval intersection otherwise.
    fn bulk_overlaps(&self, refs: &[MemRef]) -> bool {
        // Normalized (lo, hi, step, aligned) progressions of the bulk
        // refs, with `step > 0`; scalar refs use step 0.
        fn norm(op: &MemOp) -> Option<(i128, i128, i128)> {
            match *op {
                MemOp::StridedRead {
                    base,
                    stride,
                    count,
                }
                | MemOp::StridedWrite {
                    base,
                    stride,
                    count,
                    ..
                } => {
                    if count == 0 {
                        return None;
                    }
                    if stride == 0 && count > 1 {
                        // Self-overlapping: every lane hits `base`.
                        return Some((base as i128, base as i128, -1));
                    }
                    let first = base as i128;
                    let last = base as i128 + (count as i128 - 1) * stride as i128;
                    Some((
                        first.min(last),
                        first.max(last),
                        (stride as i128).abs().max(1),
                    ))
                }
                MemOp::BulkMulti {
                    base,
                    astride,
                    count,
                    ..
                } => {
                    if count == 0 {
                        return None;
                    }
                    if astride == 0 {
                        // Every lane combining into one word is the
                        // reference's purpose, not a self-conflict: it
                        // occupies a single-address span.
                        return Some((base as i128, base as i128, 1));
                    }
                    let first = base as i128;
                    let last = base as i128 + (count as i128 - 1) * astride as i128;
                    Some((first.min(last), first.max(last), (astride as i128).abs()))
                }
                op => Some((op.addr() as i128, op.addr() as i128, 1)),
            }
        }
        type Chain = ((Addr, tcf_isa::instr::MultiKind, bool), usize, usize);
        type Span = ((i128, i128, i128), Option<Chain>);
        // A masked thick multioperation splits into up to one chained
        // same-word reference per mask run, so the cheap pairwise check
        // must hold a full run-budget chain plus the step's other bulk
        // refs before giving up and expanding.
        let mut spans: [Option<Span>; 48] = [None; 48];
        let mut n = 0usize;
        for r in refs {
            let Some(s) = norm(&r.op) else { continue };
            if s.2 < 0 {
                return true; // zero-stride bulk self-overlaps
            }
            let chain = r.multi_chain_key();
            for &(prev, pchain) in spans.iter().take(n).flatten() {
                let (lo1, hi1, s1) = prev;
                let (lo2, hi2, s2) = s;
                if hi1 < lo2 || hi2 < lo1 {
                    continue; // disjoint intervals
                }
                let collide = if s1 == s2 {
                    // Same stride: progressions collide iff their bases
                    // agree modulo the stride (given the intervals meet).
                    (lo1 - lo2).rem_euclid(s1) == 0
                } else {
                    true // different strides, intervals meet: assume the worst
                };
                if collide {
                    // Exception: a rank-ordered chain of same-word bulk
                    // multioperations (equal address/operator/reply kind,
                    // later reference's rank window strictly after the
                    // earlier's) combines associatively in reference
                    // order — exactly the rank-ordered expansion — so the
                    // disjoint fast path resolves it sequentially. This
                    // is what a masked thick multioperation splits into.
                    if let (Some((pk, _, pend)), Some((ck, clo, _))) = (pchain, chain) {
                        if pk == ck && clo >= pend {
                            continue;
                        }
                    }
                    return true;
                }
            }
            if n == spans.len() {
                return true; // too many spans to check cheaply: expand
            }
            spans[n] = Some((s, chain));
            n += 1;
        }
        false
    }
}

/// Whether `vbase + k·vstride` stays within `i64` for every `k < count`
/// when computed exactly — the progression never wraps and is therefore
/// monotone with its extremes at the endpoints. (Intermediate terms lie
/// between the first and last, so checking the last term suffices.)
fn progression_fits(vbase: Word, vstride: Word, count: usize) -> bool {
    let last = vbase as i128 + (count as i128 - 1) * vstride as i128;
    (i64::MIN as i128..=i64::MAX as i128).contains(&last)
}

/// Greatest common divisor (positive inputs).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reply data of one bulk step's `StridedRead` references.
///
/// Lane values are either recognized as an arithmetic progression
/// (`Affine`) — which lets the machine write the destination register
/// back in compressed form — or stored in a flat arena shared by the
/// step's reads. Cleared and refilled by every
/// [`SharedMemory::step_bulk_into`] call.
#[derive(Debug, Default, Clone)]
pub struct BulkReplies {
    /// `(reference index, data)` per replying bulk reference, in
    /// reference order.
    entries: Vec<(usize, BulkData)>,
    /// Value arena backing [`BulkData::Values`].
    words: Vec<Word>,
}

/// The shape of one bulk read's lane values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BulkData {
    /// Lane `k` read `base + k·stride` (wrapping word arithmetic).
    Affine {
        /// Lane 0's value.
        base: Word,
        /// Per-lane increment.
        stride: Word,
    },
    /// Lane values live in the arena at `start .. start + len`.
    Values {
        /// Arena offset of lane 0.
        start: usize,
        /// Lane count.
        len: usize,
    },
}

/// A borrowed view of one bulk read's lane values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkView<'a> {
    /// Lane `k` read `base + k·stride` (wrapping word arithmetic).
    Affine {
        /// Lane 0's value.
        base: Word,
        /// Per-lane increment.
        stride: Word,
    },
    /// One value per lane.
    Values(&'a [Word]),
}

impl BulkReplies {
    /// Drops all entries and arena contents (capacity is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.words.clear();
    }

    /// The lane values of the bulk read at reference index `ref_idx`.
    pub fn get(&self, ref_idx: usize) -> Option<BulkView<'_>> {
        let &(_, data) = self.entries.iter().find(|&&(i, _)| i == ref_idx)?;
        Some(match data {
            BulkData::Affine { base, stride } => BulkView::Affine { base, stride },
            BulkData::Values { start, len } => BulkView::Values(&self.words[start..start + len]),
        })
    }

    /// Lane `k` of the bulk read at `ref_idx` (test/debug convenience).
    pub fn lane(&self, ref_idx: usize, k: usize) -> Option<Word> {
        match self.get(ref_idx)? {
            BulkView::Affine { base, stride } => {
                Some(base.wrapping_add((k as Word).wrapping_mul(stride)))
            }
            BulkView::Values(vals) => vals.get(k).copied(),
        }
    }

    /// Records the gathered lane values of the read at `ref_idx`,
    /// compressing them to affine form when they form an arithmetic
    /// progression (so an affine value written by a strided sweep reads
    /// back in the same compressed representation it was written from).
    fn push_gathered(&mut self, ref_idx: usize, vals: impl Iterator<Item = Word>) {
        let start = self.words.len();
        self.words.extend(vals);
        let lane = &self.words[start..];
        let affine = match lane {
            [] | [_] => true,
            [first, second, rest @ ..] => {
                let d = second.wrapping_sub(*first);
                let mut prev = *second;
                let mut ok = true;
                for &w in rest {
                    if w.wrapping_sub(prev) != d {
                        ok = false;
                        break;
                    }
                    prev = w;
                }
                ok
            }
        };
        let data = if affine {
            let base = lane.first().copied().unwrap_or(0);
            let stride = if lane.len() >= 2 {
                lane[1].wrapping_sub(base)
            } else {
                0
            };
            self.words.truncate(start);
            BulkData::Affine { base, stride }
        } else {
            BulkData::Values {
                start,
                len: self.words.len() - start,
            }
        };
        self.entries.push((ref_idx, data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::RefOrigin;

    fn sm(policy: CrcwPolicy) -> SharedMemory {
        SharedMemory::new(64, 4, ModuleMap::Interleaved, policy)
    }

    fn rref(rank: usize, addr: Addr) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Read(addr))
    }

    /// The rank-bucket scatter must reproduce the stable sort it replaced
    /// across its regimes: dense unique ranks, gappy ranks, duplicate
    /// ranks (fallback), and ranges too sparse to scatter (fallback).
    #[test]
    fn order_by_rank_matches_stable_sort() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![7],
            vec![3, 1, 2, 0],            // dense unique, shuffled
            vec![10, 2, 6, 4],           // gappy unique
            vec![5, 1, 5, 3],            // duplicate -> fallback
            vec![100_000, 3, 50_000, 7], // sparse -> fallback
            (0..500).rev().collect(),    // larger dense run
        ];
        let mut slots = Vec::new();
        let mut sorted = Vec::new();
        for ranks in cases {
            // Payload tags each entry with its issue position so tie
            // handling is observable.
            let mut scattered: Vec<(usize, Word, Option<usize>)> = ranks
                .iter()
                .enumerate()
                .map(|(j, &r)| (r, j as Word, Some(j)))
                .collect();
            let mut reference = scattered.clone();
            reference.sort_by_key(|&(rank, _, _)| rank);
            order_by_rank(&mut scattered, &mut slots, &mut sorted);
            assert_eq!(scattered, reference, "ranks {ranks:?}");
        }
    }

    fn wref(rank: usize, addr: Addr, v: Word) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Write(addr, v))
    }

    #[test]
    fn reads_see_pre_step_state() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(5, 100).unwrap();
        let (replies, _) = m.step(&[rref(0, 5), wref(1, 5, 7)]).unwrap();
        assert_eq!(replies[0], Some(100)); // read ignores same-step write
        assert_eq!(m.peek(5).unwrap(), 7);
    }

    #[test]
    fn arbitrary_highest_rank_wins_priority_lowest() {
        let refs = [wref(2, 1, 20), wref(0, 1, 10), wref(1, 1, 15)];
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 20);
        let mut m = sm(CrcwPolicy::Priority);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 10);
    }

    #[test]
    fn common_agreeing_ok_conflict_faults() {
        let mut m = sm(CrcwPolicy::Common);
        m.step(&[wref(0, 2, 9), wref(1, 2, 9)]).unwrap();
        assert_eq!(m.peek(2).unwrap(), 9);
        let e = m.step(&[wref(0, 2, 1), wref(1, 2, 2)]).unwrap_err();
        assert!(matches!(e, MemError::CommonWriteConflict { addr: 2 }));
    }

    #[test]
    fn crew_faults_on_concurrent_writes_only() {
        let mut m = sm(CrcwPolicy::Crew);
        m.step(&[rref(0, 3), rref(1, 3), wref(2, 4, 1)]).unwrap();
        let e = m.step(&[wref(0, 3, 1), wref(1, 3, 2)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn erew_faults_on_any_concurrency() {
        let mut m = sm(CrcwPolicy::Erew);
        m.step(&[rref(0, 3), wref(1, 4, 1)]).unwrap();
        let e = m.step(&[rref(0, 3), rref(1, 3)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn multiadd_combines_in_one_step() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 5).unwrap();
        let refs: Vec<MemRef> = (0..8)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Add, 10, rank as Word + 1),
                )
            })
            .collect();
        let (_, stats) = m.step(&refs).unwrap();
        assert_eq!(m.peek(10).unwrap(), 5 + 36);
        assert_eq!(stats.combined, 7);
        assert_eq!(stats.hot_addrs, 1);
    }

    #[test]
    fn multiprefix_returns_rank_ordered_prefixes() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 100).unwrap();
        // Issue out of rank order to check the sort.
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 10, 30)),
            MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 10, 10)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 10, 20)),
        ];
        let (replies, _) = m.step(&refs).unwrap();
        assert_eq!(replies[1], Some(100)); // rank 0: memory seed
        assert_eq!(replies[2], Some(110)); // rank 1: seed + 10
        assert_eq!(replies[0], Some(130)); // rank 2: seed + 10 + 20
        assert_eq!(m.peek(10).unwrap(), 160);
    }

    #[test]
    fn multiops_allowed_under_erew() {
        let mut m = sm(CrcwPolicy::Erew);
        let refs: Vec<MemRef> = (0..4)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Max, 0, rank as Word),
                )
            })
            .collect();
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 3);
    }

    #[test]
    fn mixed_write_and_multi_write_first() {
        let mut m = sm(CrcwPolicy::Priority);
        m.poke(0, 1000).unwrap();
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 0), MemOp::Write(0, 50)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Multi(MultiKind::Add, 0, 3)),
        ];
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 53); // write resolves, then combine
    }

    #[test]
    fn out_of_bounds_faults_before_mutation() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        let e = m.step(&[wref(0, 1, 7), wref(1, 9999, 1)]).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
        assert_eq!(m.peek(1).unwrap(), 0); // first write not applied
    }

    /// Drives the sharding API the way the parallel engine does and
    /// returns the same `(replies, stats)` shape as `step`.
    fn sharded_step(
        m: &mut SharedMemory,
        refs: &[MemRef],
    ) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let (buckets, mut stats) = m.shard_refs(refs)?;
        let mut outcomes = Vec::new();
        let mut fault: Option<MemError> = None;
        for b in buckets.iter().filter(|b| !b.is_empty()) {
            match m.resolve_shard(refs, b) {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    if fault.as_ref().map(|f| e.addr() < f.addr()).unwrap_or(true) {
                        fault = Some(e);
                    }
                }
            }
        }
        if let Some(e) = fault {
            return Err(e);
        }
        let mut replies = vec![None; refs.len()];
        for o in &outcomes {
            stats.hot_addrs += o.hot_addrs;
            stats.combined += o.combined;
            for &(i, v) in &o.replies {
                replies[i] = Some(v);
            }
        }
        m.commit_shards(&outcomes);
        Ok((replies, stats))
    }

    #[test]
    fn sharded_step_matches_sequential_step() {
        // A mixed bag across modules: reads, competing writes, multi-adds
        // and prefixes, some sharing addresses.
        let refs = vec![
            rref(0, 5),
            wref(1, 5, 70),
            wref(9, 5, 90),
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 9, 3)),
            MemRef::new(RefOrigin::new(1, 3), MemOp::Prefix(MultiKind::Add, 9, 4)),
            MemRef::new(RefOrigin::new(1, 4), MemOp::Multi(MultiKind::Max, 13, 44)),
            wref(5, 2, 11),
            rref(6, 2),
            rref(7, 63),
        ];
        for policy in [CrcwPolicy::Arbitrary, CrcwPolicy::Priority] {
            let mut seq = sm(policy);
            let mut par = sm(policy);
            for a in 0..64 {
                seq.poke(a, a as Word * 10).unwrap();
                par.poke(a, a as Word * 10).unwrap();
            }
            let (r1, s1) = seq.step(&refs).unwrap();
            let (r2, s2) = sharded_step(&mut par, &refs).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(s1, s2);
            for a in 0..64 {
                assert_eq!(seq.peek(a).unwrap(), par.peek(a).unwrap());
            }
        }
    }

    #[test]
    fn sharded_step_faults_atomically_with_lowest_address() {
        // Module 1 (addr 9) and module 3 (addr 3) both violate CREW; the
        // reported fault must be the lowest address, and nothing commits.
        let refs = vec![
            wref(0, 9, 1),
            wref(1, 9, 2),
            wref(2, 3, 5),
            wref(3, 3, 6),
            wref(4, 8, 77),
        ];
        let mut seq = sm(CrcwPolicy::Crew);
        let mut par = sm(CrcwPolicy::Crew);
        let e1 = seq.step(&refs).unwrap_err();
        let e2 = sharded_step(&mut par, &refs).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e2, MemError::ExclusiveViolation { addr: 3, .. }));
        assert_eq!(par.peek(8).unwrap(), 0); // non-faulting shard not applied
    }

    #[test]
    fn shard_refs_reports_first_out_of_bounds_in_issue_order() {
        let m = sm(CrcwPolicy::Arbitrary);
        let refs = vec![wref(0, 1, 7), wref(1, 9999, 1), wref(2, 8888, 1)];
        let e = m.shard_refs(&refs).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
    }

    #[test]
    fn multikind_cast_indexes_declaration_order() {
        // The per-kind combine buffers are indexed by `kind as usize`;
        // that is only the declaration (== `Ord`) order while the enum
        // carries no explicit discriminants.
        for (k, kind) in MultiKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, k);
        }
    }

    #[test]
    fn step_with_reused_scratch_matches_fresh_scratch() {
        // One scratch driven across dissimilar steps (combines, then plain
        // writes, then a faulting step, then reads) must behave exactly
        // like per-step fresh scratch: stale buffer contents never leak.
        let steps: Vec<Vec<MemRef>> = vec![
            vec![
                MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 9, 4)),
                MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 9, 3)),
                MemRef::new(RefOrigin::new(0, 2), MemOp::Multi(MultiKind::Max, 13, 44)),
            ],
            vec![wref(2, 1, 20), wref(0, 1, 10), rref(1, 9)],
            vec![wref(0, 2, 7), wref(1, 9999, 1)], // faults, nothing staged
            vec![rref(0, 1), rref(1, 13), rref(2, 2)],
        ];
        let mut reused = sm(CrcwPolicy::Arbitrary);
        let mut fresh = sm(CrcwPolicy::Arbitrary);
        let mut scratch = StepScratch::default();
        for refs in &steps {
            let a = reused.step_with(refs, &mut scratch);
            let b = fresh.step(refs);
            match (a, b) {
                (Ok((r1, s1)), Ok((r2, s2))) => {
                    assert_eq!(r1, r2);
                    assert_eq!(s1, s2);
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("diverged: {a:?} vs {b:?}"),
            }
        }
        for a in 0..64 {
            assert_eq!(reused.peek(a).unwrap(), fresh.peek(a).unwrap());
        }
    }

    #[test]
    fn single_ref_fast_path_matches_general_path() {
        // Every op kind through a single-reference address must produce
        // the replies, staged value and stats `resolve_addr` would: pair
        // each lone reference with a two-reference run of the same ops so
        // both paths execute in one step, then cross-check against a
        // memory resolving the lone references via the general path (by
        // duplicating them at rank order extremes that keep the outcome).
        for kind in MultiKind::ALL {
            let mut m = sm(CrcwPolicy::Arbitrary);
            m.poke(3, 100).unwrap();
            m.poke(7, -5).unwrap();
            let refs = vec![
                rref(0, 3),
                wref(1, 5, 42),
                MemRef::new(RefOrigin::new(0, 2), MemOp::Multi(kind, 7, 9)),
                MemRef::new(RefOrigin::new(0, 3), MemOp::Prefix(kind, 11, 6)),
            ];
            let (replies, stats) = m.step(&refs).unwrap();
            assert_eq!(replies[0], Some(100));
            assert_eq!(replies[1], None);
            assert_eq!(replies[2], None);
            assert_eq!(replies[3], Some(0)); // exclusive prefix = old value
            assert_eq!(m.peek(5).unwrap(), 42);
            assert_eq!(m.peek(7).unwrap(), kind.combine(-5, 9));
            assert_eq!(m.peek(11).unwrap(), kind.combine(0, 6));
            assert_eq!(m.peek(3).unwrap(), 100); // read stages the old value
            assert_eq!(stats.hot_addrs, 0);
            assert_eq!(stats.combined, 0);
        }
    }

    /// Expands bulk references into their defining lane references (the
    /// reference semantics the bulk path must reproduce).
    fn expand(refs: &[MemRef]) -> Vec<MemRef> {
        let mut flat = Vec::new();
        for r in refs {
            match r.op {
                MemOp::StridedRead {
                    base,
                    stride,
                    count,
                } => flat.extend((0..count as usize).map(|k| {
                    MemRef::new(
                        RefOrigin::new(r.origin.group, r.origin.rank + k),
                        MemOp::Read((base as i64 + k as i64 * stride) as usize),
                    )
                })),
                MemOp::StridedWrite {
                    base,
                    stride,
                    count,
                    vbase,
                    vstride,
                } => flat.extend((0..count as usize).map(|k| {
                    MemRef::new(
                        RefOrigin::new(r.origin.group, r.origin.rank + k),
                        MemOp::Write(
                            (base as i64 + k as i64 * stride) as usize,
                            vbase.wrapping_add((k as Word).wrapping_mul(vstride)),
                        ),
                    )
                })),
                _ => flat.push(*r),
            }
        }
        flat
    }

    /// Runs `refs` through the bulk step on one memory and the expansion
    /// through the scalar step on another, asserting identical faults,
    /// replies, statistics, and final memory.
    fn assert_bulk_matches_expansion(policy: CrcwPolicy, refs: &[MemRef]) {
        let mut a = sm(policy);
        let mut b = sm(policy);
        for addr in 0..64 {
            a.poke(addr, addr as Word * 3 - 20).unwrap();
            b.poke(addr, addr as Word * 3 - 20).unwrap();
        }
        let flat = expand(refs);
        let bulk_result = a.step_bulk(refs);
        let flat_result = b.step(&flat);
        match (bulk_result, flat_result) {
            (Err(e1), Err(e2)) => assert_eq!(e1, e2),
            (Ok((replies, bulk, s1)), Ok((flat_replies, s2))) => {
                assert_eq!(s1, s2, "stats diverged");
                let mut pos = 0usize;
                for (i, r) in refs.iter().enumerate() {
                    match r.op {
                        MemOp::StridedRead { count, .. } => {
                            for k in 0..count as usize {
                                assert_eq!(
                                    bulk.lane(i, k),
                                    flat_replies[pos + k],
                                    "lane {k} of bulk read {i}"
                                );
                            }
                            pos += count as usize;
                        }
                        MemOp::StridedWrite { count, .. } => pos += count as usize,
                        _ => {
                            assert_eq!(replies[i], flat_replies[pos]);
                            pos += 1;
                        }
                    }
                }
            }
            (x, y) => panic!("fault behaviour diverged: {x:?} vs {y:?}"),
        }
        for addr in 0..64 {
            assert_eq!(
                a.peek(addr).unwrap(),
                b.peek(addr).unwrap(),
                "address {addr} diverged"
            );
        }
    }

    fn sread(rank: usize, base: Addr, stride: i64, count: u32) -> MemRef {
        MemRef::new(
            RefOrigin::new(0, rank),
            MemOp::StridedRead {
                base,
                stride,
                count,
            },
        )
    }

    fn swrite(
        rank: usize,
        base: Addr,
        stride: i64,
        count: u32,
        vbase: Word,
        vstride: Word,
    ) -> MemRef {
        MemRef::new(
            RefOrigin::new(0, rank),
            MemOp::StridedWrite {
                base,
                stride,
                count,
                vbase,
                vstride,
            },
        )
    }

    #[test]
    fn strided_write_then_read_roundtrips_affine() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        let (_, _, stats) = m.step_bulk(&[swrite(0, 4, 2, 16, 100, 7)]).unwrap();
        assert_eq!(stats.refs, 16);
        for k in 0..16 {
            assert_eq!(m.peek(4 + 2 * k).unwrap(), 100 + 7 * k as Word);
        }
        let (replies, bulk, _) = m.step_bulk(&[sread(0, 4, 2, 16)]).unwrap();
        assert_eq!(replies[0], None); // bulk replies bypass the scalar slot
        assert_eq!(
            bulk.get(0),
            Some(BulkView::Affine {
                base: 100,
                stride: 7
            }),
            "an affine sweep must read back in compressed form"
        );
    }

    #[test]
    fn non_affine_gather_returns_values() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 5).unwrap();
        m.poke(11, 6).unwrap();
        m.poke(12, 99).unwrap();
        let (_, bulk, _) = m.step_bulk(&[sread(0, 10, 1, 3)]).unwrap();
        assert_eq!(bulk.get(0), Some(BulkView::Values(&[5, 6, 99])));
    }

    #[test]
    fn bulk_fast_path_matches_expansion_when_disjoint() {
        for policy in [
            CrcwPolicy::Arbitrary,
            CrcwPolicy::Priority,
            CrcwPolicy::Common,
            CrcwPolicy::Crew,
            CrcwPolicy::Erew,
        ] {
            // One read sweep, one write sweep, and scalar traffic — all
            // address-disjoint.
            assert_bulk_matches_expansion(
                policy,
                &[
                    sread(0, 0, 2, 8),
                    swrite(8, 1, 2, 8, -4, 3),
                    rref(16, 63),
                    wref(17, 33, 7),
                ],
            );
        }
    }

    #[test]
    fn overlapping_bulk_falls_back_to_expansion() {
        // Zero-stride bulk write: every lane hits one address; the CRCW
        // policy decides (Arbitrary: highest lane rank wins).
        assert_bulk_matches_expansion(CrcwPolicy::Arbitrary, &[swrite(0, 9, 0, 5, 10, 1)]);
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.step_bulk(&[swrite(0, 9, 0, 5, 10, 1)]).unwrap();
        assert_eq!(m.peek(9).unwrap(), 14);

        // Bulk write crossing a scalar read and a scalar write.
        for policy in [CrcwPolicy::Arbitrary, CrcwPolicy::Priority] {
            assert_bulk_matches_expansion(
                policy,
                &[swrite(0, 0, 3, 10, 50, 5), rref(10, 6), wref(11, 9, -1)],
            );
        }
        // Two overlapping sweeps with equal strides.
        assert_bulk_matches_expansion(
            CrcwPolicy::Arbitrary,
            &[swrite(0, 0, 2, 10, 1, 1), swrite(10, 4, 2, 10, 2, 2)],
        );
        // EREW must fault on the collision exactly as the expansion does.
        assert_bulk_matches_expansion(
            CrcwPolicy::Erew,
            &[swrite(0, 0, 2, 10, 1, 1), swrite(10, 4, 2, 10, 2, 2)],
        );
    }

    #[test]
    fn bulk_out_of_bounds_faults_atomically_with_first_lane() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        // Lanes 0..10 at stride 7 from 22: lane 6 is the first ≥ 64.
        let e = m
            .step_bulk(&[swrite(0, 0, 1, 4, 9, 0), sread(4, 22, 7, 10)])
            .unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 64, .. }));
        assert_eq!(m.peek(0).unwrap(), 0, "faulted step must not mutate");
        // A two-lane sweep whose second lane crosses the boundary.
        let e = m.step_bulk(&[sread(0, 63, 1, 2)]).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 64, .. }));
    }

    #[test]
    fn bulk_module_stats_match_expansion() {
        // Strides that are coprime with, divide, and share factors with
        // the module count, plus descending progressions.
        for (base, stride, count) in [
            (0usize, 1i64, 13u32),
            (5, 3, 9),
            (0, 4, 10),
            (2, 6, 7),
            (63, -2, 20),
            (8, 0, 1),
        ] {
            let refs = [sread(0, base, stride, count)];
            let mut a = sm(CrcwPolicy::Arbitrary);
            let mut b = sm(CrcwPolicy::Arbitrary);
            let (_, _, s1) = a.step_bulk(&refs).unwrap();
            let (_, s2) = b.step(&expand(&refs)).unwrap();
            assert_eq!(s1.per_module, s2.per_module, "stride {stride}");
            assert_eq!(s1.refs, s2.refs);
        }
    }

    #[test]
    fn step_bulk_without_bulk_refs_matches_step() {
        let refs = [rref(0, 5), wref(1, 5, 70), wref(2, 9, 4)];
        let mut a = sm(CrcwPolicy::Arbitrary);
        let mut b = sm(CrcwPolicy::Arbitrary);
        let (r1, bulk, s1) = a.step_bulk(&refs).unwrap();
        let (r2, s2) = b.step(&refs).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert!(bulk.get(0).is_none());
    }

    #[test]
    fn load_data_places_blocks() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.load_data(&[DataBlock {
            base: 8,
            words: vec![1, 2, 3],
        }])
        .unwrap();
        assert_eq!(m.peek_range(8, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_track_module_loads() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        // Interleaved over 4 modules: addresses 0,4,8 hit module 0.
        let (_, stats) = m
            .step(&[rref(0, 0), rref(1, 4), rref(2, 8), rref(3, 1)])
            .unwrap();
        assert_eq!(stats.per_module[0], 3);
        assert_eq!(stats.max_module_load(), 3);
    }
}
