//! The emulated shared memory: step-synchronous word storage distributed
//! over modules.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tcf_isa::instr::MultiKind;
use tcf_isa::program::DataBlock;
use tcf_isa::word::{Addr, Word};

use crate::error::MemError;
use crate::hash::ModuleMap;
use crate::module::combine;
use crate::refs::{MemOp, MemRef};
use crate::stats::StepStats;

/// Concurrent-access policy of the shared memory.
///
/// The PRAM-NUMA machine family is a CRCW PRAM with multioperations; the
/// weaker policies are provided so algorithm implementations can be checked
/// against stricter PRAM submodels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrcwPolicy {
    /// Concurrent writes allowed; the *highest*-rank writer wins. (A legal
    /// refinement of "arbitrary" that keeps simulation deterministic, and
    /// deliberately different from `Priority` so the two are observably
    /// distinct.)
    Arbitrary,
    /// Concurrent writes allowed; the *lowest*-rank writer wins (the
    /// classical Priority CRCW PRAM).
    Priority,
    /// Concurrent writes must all carry the same value, else a fault.
    Common,
    /// Concurrent reads allowed, concurrent writes fault (CREW).
    Crew,
    /// Any concurrent access to one address faults (EREW).
    Erew,
}

/// Outcome of resolving one module's references without mutating the
/// memory (see [`SharedMemory::resolve_shard`]): the values staged for the
/// module's addresses, the replies owed to individual references, and the
/// shard's contribution to the step statistics.
///
/// Shards of one step touch disjoint address sets (an address maps to
/// exactly one module), so outcomes can be produced concurrently and
/// committed in any order; every ordering-sensitive decision (CRCW winner,
/// multiprefix order) is taken inside the shard from reference ranks.
#[derive(Debug, Clone, Default)]
pub struct ShardOutcome {
    /// `(addr, new value)` pairs to apply at commit.
    pub staged: Vec<(Addr, Word)>,
    /// `(reference index, reply)` pairs for `Read`/`Prefix` references.
    pub replies: Vec<(usize, Word)>,
    /// Addresses that received more than one reference.
    pub hot_addrs: usize,
    /// References absorbed by combining.
    pub combined: usize,
}

/// Per-address resolution result shared by [`SharedMemory::step`] and
/// [`SharedMemory::resolve_shard`].
struct AddrOutcome {
    value: Word,
    replies: Vec<(usize, Word)>,
    combined: usize,
}

/// The step-synchronous shared memory of one machine.
///
/// Within a [`step`](SharedMemory::step) every read observes the state
/// before the step's writes (the classical PRAM read-then-write step), plain
/// concurrent writes resolve per [`CrcwPolicy`], and
/// multioperation/multiprefix contributions to one word are combined by the
/// active memory unit in thread-rank order. Multioperations are exempt from
/// the exclusivity checks of `Crew`/`Erew`: combining is their entire
/// purpose, and the machines that provide them route them through dedicated
/// hardware.
///
/// If one step mixes plain writes and multioperations on the same address,
/// the plain writes resolve first and the combinations apply on top — a
/// defined (if inadvisable) guest behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedMemory {
    words: Vec<Word>,
    modules: usize,
    map: ModuleMap,
    policy: CrcwPolicy,
}

impl SharedMemory {
    /// Creates a zeroed shared memory of `size` words over `modules`
    /// modules.
    pub fn new(size: usize, modules: usize, map: ModuleMap, policy: CrcwPolicy) -> SharedMemory {
        assert!(modules > 0, "a machine needs at least one memory module");
        SharedMemory {
            words: vec![0; size],
            modules,
            map,
            policy,
        }
    }

    /// Size of the address space in words.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Number of physical modules.
    #[inline]
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module an address maps to.
    #[inline]
    pub fn module_of(&self, addr: Addr) -> usize {
        self.map.module_of(addr, self.modules)
    }

    /// Host read (no step semantics), for runtimes and tests.
    pub fn peek(&self, addr: Addr) -> Result<Word, MemError> {
        self.words.get(addr).copied().ok_or(MemError::OutOfBounds {
            addr,
            size: self.words.len(),
        })
    }

    /// Host write (no step semantics), for runtimes and tests.
    pub fn poke(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let size = self.words.len();
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(MemError::OutOfBounds { addr, size }),
        }
    }

    /// Host read of a contiguous range.
    pub fn peek_range(&self, base: Addr, len: usize) -> Result<Vec<Word>, MemError> {
        (base..base + len).map(|a| self.peek(a)).collect()
    }

    /// Loads a program's static data blocks.
    pub fn load_data(&mut self, blocks: &[DataBlock]) -> Result<(), MemError> {
        for block in blocks {
            for (i, &w) in block.words.iter().enumerate() {
                self.poke(block.base + i, w)?;
            }
        }
        Ok(())
    }

    /// Executes one synchronous memory step.
    ///
    /// Returns one reply slot per input reference (aligned by index): the
    /// read value for `Read`, the rank-order exclusive prefix for `Prefix`,
    /// and `None` for `Write`/`Multi`. Also returns the step's congestion
    /// statistics.
    pub fn step(&mut self, refs: &[MemRef]) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();

        // Bounds check and module accounting up front so faults are
        // reported before any mutation.
        for r in refs {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            stats.per_module[self.module_of(addr)] += 1;
        }

        // Group references by address, deterministically.
        let mut by_addr: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
        for (i, r) in refs.iter().enumerate() {
            by_addr.entry(r.op.addr()).or_default().push(i);
        }

        let mut replies: Vec<Option<Word>> = vec![None; refs.len()];
        // The step is atomic: new values are staged and applied only after
        // every address resolved without fault, so a failed step never
        // leaves partial writes behind.
        let mut staged: Vec<(Addr, Word)> = Vec::new();

        for (addr, idxs) in by_addr {
            if idxs.len() > 1 {
                stats.hot_addrs += 1;
            }
            let out = self.resolve_addr(addr, &idxs, refs)?;
            stats.combined += out.combined;
            for (i, v) in out.replies {
                replies[i] = Some(v);
            }
            staged.push((addr, out.value));
        }
        for (addr, value) in staged {
            self.words[addr] = value;
        }

        Ok((replies, stats))
    }

    /// Resolves every reference to one address: CRCW policy checks, plain
    /// write resolution, multioperation combining. Pure with respect to the
    /// stored words; both the sequential [`step`](SharedMemory::step) and
    /// the sharded path go through here so the two cannot diverge.
    fn resolve_addr(
        &self,
        addr: Addr,
        idxs: &[usize],
        refs: &[MemRef],
    ) -> Result<AddrOutcome, MemError> {
        let old = self.words[addr];
        let mut replies: Vec<(usize, Word)> = Vec::new();
        let mut combined = 0usize;

        let mut plain_writes: Vec<(usize, Word)> = Vec::new(); // (rank, value)
        let mut combines: BTreeMap<MultiKind, Vec<(usize, Word, Option<usize>)>> = BTreeMap::new(); // kind -> (rank, contribution, reply slot)
        let mut readers = 0usize;
        let mut writers = 0usize;

        for &i in idxs {
            match refs[i].op {
                MemOp::Read(_) => {
                    replies.push((i, old));
                    readers += 1;
                }
                MemOp::Write(_, v) => {
                    plain_writes.push((refs[i].origin.rank, v));
                    writers += 1;
                }
                MemOp::Multi(kind, _, v) => {
                    combines
                        .entry(kind)
                        .or_default()
                        .push((refs[i].origin.rank, v, None));
                }
                MemOp::Prefix(kind, _, v) => {
                    combines
                        .entry(kind)
                        .or_default()
                        .push((refs[i].origin.rank, v, Some(i)));
                }
            }
        }

        // Exclusivity policies (multioperations exempt, see type docs).
        match self.policy {
            CrcwPolicy::Erew => {
                if readers + writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: readers + writers,
                    });
                }
            }
            CrcwPolicy::Crew => {
                if writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: writers,
                    });
                }
            }
            CrcwPolicy::Common => {
                if writers > 1 {
                    let first = plain_writes[0].1;
                    if plain_writes.iter().any(|&(_, v)| v != first) {
                        return Err(MemError::CommonWriteConflict { addr });
                    }
                }
            }
            CrcwPolicy::Arbitrary | CrcwPolicy::Priority => {}
        }

        // Resolve plain writes.
        let mut value = old;
        if !plain_writes.is_empty() {
            plain_writes.sort_by_key(|&(rank, _)| rank);
            value = match self.policy {
                CrcwPolicy::Arbitrary => plain_writes.last().unwrap().1,
                _ => plain_writes.first().unwrap().1,
            };
        }

        // Apply combinations (BTreeMap ⇒ deterministic kind order).
        for (kind, mut contributions) in combines {
            contributions.sort_by_key(|&(rank, _, _)| rank);
            combined += contributions.len().saturating_sub(1);
            let values: Vec<Word> = contributions.iter().map(|&(_, v, _)| v).collect();
            let want_prefixes = contributions.iter().any(|&(_, _, slot)| slot.is_some());
            let outcome = combine(kind, value, &values, want_prefixes);
            if want_prefixes {
                for (j, &(_, _, slot)) in contributions.iter().enumerate() {
                    if let Some(i) = slot {
                        replies.push((i, outcome.prefixes[j]));
                    }
                }
            }
            value = outcome.new_value;
        }

        Ok(AddrOutcome {
            value,
            replies,
            combined,
        })
    }

    /// Buckets `refs` (by index) per module, bounds-checking every address
    /// up front — the first out-of-bounds reference in issue order faults,
    /// exactly as [`step`](SharedMemory::step) does. Returns the buckets
    /// and a [`StepStats`] with `refs`/`per_module` filled in; the caller
    /// accumulates `hot_addrs`/`combined` from the shard outcomes.
    pub fn shard_refs(&self, refs: &[MemRef]) -> Result<(Vec<Vec<usize>>, StepStats), MemError> {
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.modules];
        for (i, r) in refs.iter().enumerate() {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            let m = self.module_of(addr);
            stats.per_module[m] += 1;
            buckets[m].push(i);
        }
        Ok((buckets, stats))
    }

    /// Resolves one module's references (`idxs` into `refs`, as produced
    /// by [`shard_refs`](SharedMemory::shard_refs)) without mutating the
    /// memory. Addresses resolve in ascending order, so a faulting shard
    /// reports its *lowest* faulting address — the caller takes the
    /// minimum over shards to reproduce the sequential step's first fault.
    pub fn resolve_shard(&self, refs: &[MemRef], idxs: &[usize]) -> Result<ShardOutcome, MemError> {
        let mut by_addr: BTreeMap<Addr, Vec<usize>> = BTreeMap::new();
        for &i in idxs {
            by_addr.entry(refs[i].op.addr()).or_default().push(i);
        }
        let mut out = ShardOutcome::default();
        for (addr, idxs) in by_addr {
            if idxs.len() > 1 {
                out.hot_addrs += 1;
            }
            let r = self.resolve_addr(addr, &idxs, refs)?;
            out.combined += r.combined;
            out.replies.extend(r.replies);
            out.staged.push((addr, r.value));
        }
        Ok(out)
    }

    /// Applies staged shard outcomes. Shards stage disjoint address sets,
    /// so the application order is immaterial; commit nothing when any
    /// shard faulted to keep the step atomic.
    pub fn commit_shards(&mut self, outcomes: &[ShardOutcome]) {
        for o in outcomes {
            for &(addr, value) in &o.staged {
                self.words[addr] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::RefOrigin;

    fn sm(policy: CrcwPolicy) -> SharedMemory {
        SharedMemory::new(64, 4, ModuleMap::Interleaved, policy)
    }

    fn rref(rank: usize, addr: Addr) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Read(addr))
    }

    fn wref(rank: usize, addr: Addr, v: Word) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Write(addr, v))
    }

    #[test]
    fn reads_see_pre_step_state() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(5, 100).unwrap();
        let (replies, _) = m.step(&[rref(0, 5), wref(1, 5, 7)]).unwrap();
        assert_eq!(replies[0], Some(100)); // read ignores same-step write
        assert_eq!(m.peek(5).unwrap(), 7);
    }

    #[test]
    fn arbitrary_highest_rank_wins_priority_lowest() {
        let refs = [wref(2, 1, 20), wref(0, 1, 10), wref(1, 1, 15)];
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 20);
        let mut m = sm(CrcwPolicy::Priority);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 10);
    }

    #[test]
    fn common_agreeing_ok_conflict_faults() {
        let mut m = sm(CrcwPolicy::Common);
        m.step(&[wref(0, 2, 9), wref(1, 2, 9)]).unwrap();
        assert_eq!(m.peek(2).unwrap(), 9);
        let e = m.step(&[wref(0, 2, 1), wref(1, 2, 2)]).unwrap_err();
        assert!(matches!(e, MemError::CommonWriteConflict { addr: 2 }));
    }

    #[test]
    fn crew_faults_on_concurrent_writes_only() {
        let mut m = sm(CrcwPolicy::Crew);
        m.step(&[rref(0, 3), rref(1, 3), wref(2, 4, 1)]).unwrap();
        let e = m.step(&[wref(0, 3, 1), wref(1, 3, 2)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn erew_faults_on_any_concurrency() {
        let mut m = sm(CrcwPolicy::Erew);
        m.step(&[rref(0, 3), wref(1, 4, 1)]).unwrap();
        let e = m.step(&[rref(0, 3), rref(1, 3)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn multiadd_combines_in_one_step() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 5).unwrap();
        let refs: Vec<MemRef> = (0..8)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Add, 10, rank as Word + 1),
                )
            })
            .collect();
        let (_, stats) = m.step(&refs).unwrap();
        assert_eq!(m.peek(10).unwrap(), 5 + 36);
        assert_eq!(stats.combined, 7);
        assert_eq!(stats.hot_addrs, 1);
    }

    #[test]
    fn multiprefix_returns_rank_ordered_prefixes() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 100).unwrap();
        // Issue out of rank order to check the sort.
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 10, 30)),
            MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 10, 10)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 10, 20)),
        ];
        let (replies, _) = m.step(&refs).unwrap();
        assert_eq!(replies[1], Some(100)); // rank 0: memory seed
        assert_eq!(replies[2], Some(110)); // rank 1: seed + 10
        assert_eq!(replies[0], Some(130)); // rank 2: seed + 10 + 20
        assert_eq!(m.peek(10).unwrap(), 160);
    }

    #[test]
    fn multiops_allowed_under_erew() {
        let mut m = sm(CrcwPolicy::Erew);
        let refs: Vec<MemRef> = (0..4)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Max, 0, rank as Word),
                )
            })
            .collect();
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 3);
    }

    #[test]
    fn mixed_write_and_multi_write_first() {
        let mut m = sm(CrcwPolicy::Priority);
        m.poke(0, 1000).unwrap();
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 0), MemOp::Write(0, 50)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Multi(MultiKind::Add, 0, 3)),
        ];
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 53); // write resolves, then combine
    }

    #[test]
    fn out_of_bounds_faults_before_mutation() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        let e = m.step(&[wref(0, 1, 7), wref(1, 9999, 1)]).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
        assert_eq!(m.peek(1).unwrap(), 0); // first write not applied
    }

    /// Drives the sharding API the way the parallel engine does and
    /// returns the same `(replies, stats)` shape as `step`.
    fn sharded_step(
        m: &mut SharedMemory,
        refs: &[MemRef],
    ) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let (buckets, mut stats) = m.shard_refs(refs)?;
        let mut outcomes = Vec::new();
        let mut fault: Option<MemError> = None;
        for b in buckets.iter().filter(|b| !b.is_empty()) {
            match m.resolve_shard(refs, b) {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    if fault.as_ref().map(|f| e.addr() < f.addr()).unwrap_or(true) {
                        fault = Some(e);
                    }
                }
            }
        }
        if let Some(e) = fault {
            return Err(e);
        }
        let mut replies = vec![None; refs.len()];
        for o in &outcomes {
            stats.hot_addrs += o.hot_addrs;
            stats.combined += o.combined;
            for &(i, v) in &o.replies {
                replies[i] = Some(v);
            }
        }
        m.commit_shards(&outcomes);
        Ok((replies, stats))
    }

    #[test]
    fn sharded_step_matches_sequential_step() {
        // A mixed bag across modules: reads, competing writes, multi-adds
        // and prefixes, some sharing addresses.
        let refs = vec![
            rref(0, 5),
            wref(1, 5, 70),
            wref(9, 5, 90),
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 9, 3)),
            MemRef::new(RefOrigin::new(1, 3), MemOp::Prefix(MultiKind::Add, 9, 4)),
            MemRef::new(RefOrigin::new(1, 4), MemOp::Multi(MultiKind::Max, 13, 44)),
            wref(5, 2, 11),
            rref(6, 2),
            rref(7, 63),
        ];
        for policy in [CrcwPolicy::Arbitrary, CrcwPolicy::Priority] {
            let mut seq = sm(policy);
            let mut par = sm(policy);
            for a in 0..64 {
                seq.poke(a, a as Word * 10).unwrap();
                par.poke(a, a as Word * 10).unwrap();
            }
            let (r1, s1) = seq.step(&refs).unwrap();
            let (r2, s2) = sharded_step(&mut par, &refs).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(s1, s2);
            for a in 0..64 {
                assert_eq!(seq.peek(a).unwrap(), par.peek(a).unwrap());
            }
        }
    }

    #[test]
    fn sharded_step_faults_atomically_with_lowest_address() {
        // Module 1 (addr 9) and module 3 (addr 3) both violate CREW; the
        // reported fault must be the lowest address, and nothing commits.
        let refs = vec![
            wref(0, 9, 1),
            wref(1, 9, 2),
            wref(2, 3, 5),
            wref(3, 3, 6),
            wref(4, 8, 77),
        ];
        let mut seq = sm(CrcwPolicy::Crew);
        let mut par = sm(CrcwPolicy::Crew);
        let e1 = seq.step(&refs).unwrap_err();
        let e2 = sharded_step(&mut par, &refs).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e2, MemError::ExclusiveViolation { addr: 3, .. }));
        assert_eq!(par.peek(8).unwrap(), 0); // non-faulting shard not applied
    }

    #[test]
    fn shard_refs_reports_first_out_of_bounds_in_issue_order() {
        let m = sm(CrcwPolicy::Arbitrary);
        let refs = vec![wref(0, 1, 7), wref(1, 9999, 1), wref(2, 8888, 1)];
        let e = m.shard_refs(&refs).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
    }

    #[test]
    fn load_data_places_blocks() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.load_data(&[DataBlock {
            base: 8,
            words: vec![1, 2, 3],
        }])
        .unwrap();
        assert_eq!(m.peek_range(8, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_track_module_loads() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        // Interleaved over 4 modules: addresses 0,4,8 hit module 0.
        let (_, stats) = m
            .step(&[rref(0, 0), rref(1, 4), rref(2, 8), rref(3, 1)])
            .unwrap();
        assert_eq!(stats.per_module[0], 3);
        assert_eq!(stats.max_module_load(), 3);
    }
}
