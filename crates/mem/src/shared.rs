//! The emulated shared memory: step-synchronous word storage distributed
//! over modules.

use serde::{Deserialize, Serialize};

use tcf_isa::instr::MultiKind;
use tcf_isa::program::DataBlock;
use tcf_isa::word::{Addr, Word};

use crate::error::MemError;
use crate::hash::ModuleMap;
use crate::module::combine;
use crate::refs::{MemOp, MemRef};
use crate::stats::StepStats;

/// Concurrent-access policy of the shared memory.
///
/// The PRAM-NUMA machine family is a CRCW PRAM with multioperations; the
/// weaker policies are provided so algorithm implementations can be checked
/// against stricter PRAM submodels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrcwPolicy {
    /// Concurrent writes allowed; the *highest*-rank writer wins. (A legal
    /// refinement of "arbitrary" that keeps simulation deterministic, and
    /// deliberately different from `Priority` so the two are observably
    /// distinct.)
    Arbitrary,
    /// Concurrent writes allowed; the *lowest*-rank writer wins (the
    /// classical Priority CRCW PRAM).
    Priority,
    /// Concurrent writes must all carry the same value, else a fault.
    Common,
    /// Concurrent reads allowed, concurrent writes fault (CREW).
    Crew,
    /// Any concurrent access to one address faults (EREW).
    Erew,
}

/// Outcome of resolving one module's references without mutating the
/// memory (see [`SharedMemory::resolve_shard`]): the values staged for the
/// module's addresses, the replies owed to individual references, and the
/// shard's contribution to the step statistics.
///
/// Shards of one step touch disjoint address sets (an address maps to
/// exactly one module), so outcomes can be produced concurrently and
/// committed in any order; every ordering-sensitive decision (CRCW winner,
/// multiprefix order) is taken inside the shard from reference ranks.
#[derive(Debug, Clone, Default)]
pub struct ShardOutcome {
    /// `(addr, new value)` pairs to apply at commit.
    pub staged: Vec<(Addr, Word)>,
    /// `(reference index, reply)` pairs for `Read`/`Prefix` references.
    pub replies: Vec<(usize, Word)>,
    /// Addresses that received more than one reference.
    pub hot_addrs: usize,
    /// References absorbed by combining.
    pub combined: usize,
}

/// Reusable buffers for the shared-memory step: the sort-based
/// address-grouping pairs plus per-address resolution arenas.
///
/// A machine in steady state issues a memory step every cycle; building a
/// fresh `BTreeMap<Addr, Vec<usize>>` (plus per-address vectors) each time
/// dominated the resolution cost. A `StepScratch` persists across steps —
/// its vectors reach the workload's high-water mark once and then recycle
/// their allocations. [`SharedMemory::step_with`] and
/// [`SharedMemory::resolve_shard_with`] take one; the scratch-free
/// [`step`](SharedMemory::step)/[`resolve_shard`](SharedMemory::resolve_shard)
/// wrappers build a throwaway (tests, one-shot host calls).
///
/// Determinism is unchanged: the pair sort orders by `(addr, ref index)`,
/// reproducing the old map's ascending-address iteration with
/// ascending-index groups, and the per-kind combine buffers are visited in
/// [`MultiKind`] declaration order — the same order the old
/// `BTreeMap<MultiKind, _>` iterated, since the enum's `Ord` derives from
/// declaration order.
#[derive(Debug, Default, Clone)]
pub struct StepScratch {
    /// `(addr, ref index)` pairs, sorted to group references by address.
    pairs: Vec<(Addr, usize)>,
    /// Pending `(ref index, reply)` pairs of the step.
    replies: Vec<(usize, Word)>,
    /// Staged `(addr, new value)` writes of the step.
    staged: Vec<(Addr, Word)>,
    /// Per-address resolution arena.
    addr: AddrScratch,
}

/// Per-address scratch of [`StepScratch`]: plain-write and combining
/// buffers, cleared for every resolved address.
#[derive(Debug, Default, Clone)]
struct AddrScratch {
    /// `(rank, value)` plain-write contenders.
    plain_writes: Vec<(usize, Word)>,
    /// `(rank, contribution, reply slot)` per combining kind, indexed by
    /// `MultiKind` declaration order.
    combines: [Vec<(usize, Word, Option<usize>)>; 6],
    /// Rank-ordered contribution values handed to the combiner.
    values: Vec<Word>,
}

/// The step-synchronous shared memory of one machine.
///
/// Within a [`step`](SharedMemory::step) every read observes the state
/// before the step's writes (the classical PRAM read-then-write step), plain
/// concurrent writes resolve per [`CrcwPolicy`], and
/// multioperation/multiprefix contributions to one word are combined by the
/// active memory unit in thread-rank order. Multioperations are exempt from
/// the exclusivity checks of `Crew`/`Erew`: combining is their entire
/// purpose, and the machines that provide them route them through dedicated
/// hardware.
///
/// If one step mixes plain writes and multioperations on the same address,
/// the plain writes resolve first and the combinations apply on top — a
/// defined (if inadvisable) guest behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedMemory {
    words: Vec<Word>,
    modules: usize,
    map: ModuleMap,
    policy: CrcwPolicy,
}

impl SharedMemory {
    /// Creates a zeroed shared memory of `size` words over `modules`
    /// modules.
    pub fn new(size: usize, modules: usize, map: ModuleMap, policy: CrcwPolicy) -> SharedMemory {
        assert!(modules > 0, "a machine needs at least one memory module");
        SharedMemory {
            words: vec![0; size],
            modules,
            map,
            policy,
        }
    }

    /// Size of the address space in words.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Number of physical modules.
    #[inline]
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module an address maps to.
    #[inline]
    pub fn module_of(&self, addr: Addr) -> usize {
        self.map.module_of(addr, self.modules)
    }

    /// Host read (no step semantics), for runtimes and tests.
    pub fn peek(&self, addr: Addr) -> Result<Word, MemError> {
        self.words.get(addr).copied().ok_or(MemError::OutOfBounds {
            addr,
            size: self.words.len(),
        })
    }

    /// Host write (no step semantics), for runtimes and tests.
    pub fn poke(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let size = self.words.len();
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(MemError::OutOfBounds { addr, size }),
        }
    }

    /// Host read of a contiguous range.
    pub fn peek_range(&self, base: Addr, len: usize) -> Result<Vec<Word>, MemError> {
        (base..base + len).map(|a| self.peek(a)).collect()
    }

    /// Loads a program's static data blocks.
    pub fn load_data(&mut self, blocks: &[DataBlock]) -> Result<(), MemError> {
        for block in blocks {
            for (i, &w) in block.words.iter().enumerate() {
                self.poke(block.base + i, w)?;
            }
        }
        Ok(())
    }

    /// Executes one synchronous memory step.
    ///
    /// Returns one reply slot per input reference (aligned by index): the
    /// read value for `Read`, the rank-order exclusive prefix for `Prefix`,
    /// and `None` for `Write`/`Multi`. Also returns the step's congestion
    /// statistics.
    pub fn step(&mut self, refs: &[MemRef]) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let mut scratch = StepScratch::default();
        self.step_with(refs, &mut scratch)
    }

    /// [`step`](SharedMemory::step) with caller-provided scratch buffers —
    /// the steady-state entry point. Machines keep one [`StepScratch`] per
    /// resolution context so the per-step address grouping and combining
    /// allocate nothing once warm.
    pub fn step_with(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
    ) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let mut replies = Vec::new();
        let stats = self.step_into(refs, scratch, &mut replies)?;
        Ok((replies, stats))
    }

    /// [`step_with`](SharedMemory::step_with), writing the per-reference
    /// reply slots into a caller-owned buffer (cleared and refilled each
    /// call) so a warm caller allocates nothing at all.
    pub fn step_into(
        &mut self,
        refs: &[MemRef],
        scratch: &mut StepScratch,
        replies: &mut Vec<Option<Word>>,
    ) -> Result<StepStats, MemError> {
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();

        // Bounds check and module accounting up front so faults are
        // reported before any mutation.
        for r in refs {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            stats.per_module[self.module_of(addr)] += 1;
        }

        // Group references by address, deterministically: sorting the
        // `(addr, index)` pairs yields ascending addresses with ascending
        // indices inside each address run (the pair order is total, so the
        // unstable sort is deterministic).
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(refs.iter().enumerate().map(|(i, r)| (r.op.addr(), i)));
        scratch.pairs.sort_unstable();

        replies.clear();
        replies.resize(refs.len(), None);
        // The step is atomic: new values are staged and applied only after
        // every address resolved without fault, so a failed step never
        // leaves partial writes behind.
        scratch.replies.clear();
        scratch.staged.clear();

        let mut start = 0;
        while start < scratch.pairs.len() {
            let addr = scratch.pairs[start].0;
            let mut end = start + 1;
            while end < scratch.pairs.len() && scratch.pairs[end].0 == addr {
                end += 1;
            }
            let value = if end - start == 1 {
                // Overwhelmingly common case (per-thread strided access):
                // one reference per address needs no policy check and no
                // combine arena.
                self.resolve_single(scratch.pairs[start].1, refs, &mut scratch.replies)
            } else {
                stats.hot_addrs += 1;
                let run = &scratch.pairs[start..end];
                let (value, combined) =
                    self.resolve_addr(addr, run, refs, &mut scratch.addr, &mut scratch.replies)?;
                stats.combined += combined;
                value
            };
            scratch.staged.push((addr, value));
            start = end;
        }
        for &(i, v) in &scratch.replies {
            replies[i] = Some(v);
        }
        for &(addr, value) in &scratch.staged {
            self.words[addr] = value;
        }

        Ok(stats)
    }

    /// Resolves an address referenced exactly once — the overwhelmingly
    /// common case under per-thread strided access. A lone reference can
    /// violate no exclusivity policy and a lone multioperation
    /// contribution combines directly, so the combine arena (and its
    /// per-address clear/sort work) is skipped entirely. Must agree with
    /// [`resolve_addr`](Self::resolve_addr) on single-element runs (see
    /// the `single_ref_fast_path_matches_general_path` test).
    #[inline]
    fn resolve_single(&self, i: usize, refs: &[MemRef], replies: &mut Vec<(usize, Word)>) -> Word {
        match refs[i].op {
            MemOp::Read(addr) => {
                let old = self.words[addr];
                replies.push((i, old));
                old
            }
            MemOp::Write(_, v) => v,
            MemOp::Multi(kind, addr, v) => kind.combine(self.words[addr], v),
            MemOp::Prefix(kind, addr, v) => {
                // The exclusive prefix of the sole participant is the
                // memory's old value (the combine seed).
                let old = self.words[addr];
                replies.push((i, old));
                kind.combine(old, v)
            }
        }
    }

    /// Resolves every reference to one address (the `run` of sorted
    /// `(addr, index)` pairs): CRCW policy checks, plain write resolution,
    /// multioperation combining. Pure with respect to the stored words;
    /// both the sequential [`step`](SharedMemory::step) and the sharded
    /// path go through here so the two cannot diverge. Replies append to
    /// `replies`; returns `(staged value, references absorbed by
    /// combining)`.
    fn resolve_addr(
        &self,
        addr: Addr,
        run: &[(Addr, usize)],
        refs: &[MemRef],
        arena: &mut AddrScratch,
        replies: &mut Vec<(usize, Word)>,
    ) -> Result<(Word, usize), MemError> {
        let old = self.words[addr];
        let mut combined = 0usize;

        arena.plain_writes.clear();
        for c in &mut arena.combines {
            c.clear();
        }
        let mut readers = 0usize;
        let mut writers = 0usize;

        for &(_, i) in run {
            match refs[i].op {
                MemOp::Read(_) => {
                    replies.push((i, old));
                    readers += 1;
                }
                MemOp::Write(_, v) => {
                    arena.plain_writes.push((refs[i].origin.rank, v));
                    writers += 1;
                }
                MemOp::Multi(kind, _, v) => {
                    arena.combines[kind as usize].push((refs[i].origin.rank, v, None));
                }
                MemOp::Prefix(kind, _, v) => {
                    arena.combines[kind as usize].push((refs[i].origin.rank, v, Some(i)));
                }
            }
        }

        // Exclusivity policies (multioperations exempt, see type docs).
        match self.policy {
            CrcwPolicy::Erew => {
                if readers + writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: readers + writers,
                    });
                }
            }
            CrcwPolicy::Crew => {
                if writers > 1 {
                    return Err(MemError::ExclusiveViolation {
                        addr,
                        refs: writers,
                    });
                }
            }
            CrcwPolicy::Common => {
                if writers > 1 {
                    let first = arena.plain_writes[0].1;
                    if arena.plain_writes.iter().any(|&(_, v)| v != first) {
                        return Err(MemError::CommonWriteConflict { addr });
                    }
                }
            }
            CrcwPolicy::Arbitrary | CrcwPolicy::Priority => {}
        }

        // Resolve plain writes. The stable sort keeps issue order among
        // equal ranks, matching the pre-arena resolution exactly.
        let mut value = old;
        if !arena.plain_writes.is_empty() {
            arena.plain_writes.sort_by_key(|&(rank, _)| rank);
            value = match self.policy {
                CrcwPolicy::Arbitrary => arena.plain_writes.last().unwrap().1,
                _ => arena.plain_writes.first().unwrap().1,
            };
        }

        // Apply combinations in `MultiKind` declaration order (== the
        // enum's `Ord`, so the same deterministic order the former
        // `BTreeMap<MultiKind, _>` iterated in).
        for k in 0..arena.combines.len() {
            if arena.combines[k].is_empty() {
                continue;
            }
            let kind = MultiKind::ALL[k];
            arena.combines[k].sort_by_key(|&(rank, _, _)| rank);
            combined += arena.combines[k].len().saturating_sub(1);
            arena.values.clear();
            arena
                .values
                .extend(arena.combines[k].iter().map(|&(_, v, _)| v));
            let want_prefixes = arena.combines[k].iter().any(|&(_, _, slot)| slot.is_some());
            let outcome = combine(kind, value, &arena.values, want_prefixes);
            if want_prefixes {
                for (j, &(_, _, slot)) in arena.combines[k].iter().enumerate() {
                    if let Some(i) = slot {
                        replies.push((i, outcome.prefixes[j]));
                    }
                }
            }
            value = outcome.new_value;
        }

        Ok((value, combined))
    }

    /// Buckets `refs` (by index) per module, bounds-checking every address
    /// up front — the first out-of-bounds reference in issue order faults,
    /// exactly as [`step`](SharedMemory::step) does. Returns the buckets
    /// and a [`StepStats`] with `refs`/`per_module` filled in; the caller
    /// accumulates `hot_addrs`/`combined` from the shard outcomes.
    pub fn shard_refs(&self, refs: &[MemRef]) -> Result<(Vec<Vec<usize>>, StepStats), MemError> {
        let mut buckets = Vec::new();
        let stats = self.shard_refs_into(refs, &mut buckets)?;
        Ok((buckets, stats))
    }

    /// [`shard_refs`](SharedMemory::shard_refs) into caller-owned buckets:
    /// the outer vector is resized to the module count and every inner
    /// vector is cleared, so a machine reusing the same buckets each step
    /// stops allocating once they reach the workload's high-water mark.
    pub fn shard_refs_into(
        &self,
        refs: &[MemRef],
        buckets: &mut Vec<Vec<usize>>,
    ) -> Result<StepStats, MemError> {
        let mut stats = StepStats::new(self.modules);
        stats.refs = refs.len();
        buckets.resize_with(self.modules, Vec::new);
        for b in buckets.iter_mut() {
            b.clear();
        }
        for (i, r) in refs.iter().enumerate() {
            let addr = r.op.addr();
            if addr >= self.words.len() {
                return Err(MemError::OutOfBounds {
                    addr,
                    size: self.words.len(),
                });
            }
            let m = self.module_of(addr);
            stats.per_module[m] += 1;
            buckets[m].push(i);
        }
        Ok(stats)
    }

    /// Resolves one module's references (`idxs` into `refs`, as produced
    /// by [`shard_refs`](SharedMemory::shard_refs)) without mutating the
    /// memory. Addresses resolve in ascending order, so a faulting shard
    /// reports its *lowest* faulting address — the caller takes the
    /// minimum over shards to reproduce the sequential step's first fault.
    pub fn resolve_shard(&self, refs: &[MemRef], idxs: &[usize]) -> Result<ShardOutcome, MemError> {
        let mut scratch = StepScratch::default();
        self.resolve_shard_with(refs, idxs, &mut scratch)
    }

    /// [`resolve_shard`](SharedMemory::resolve_shard) with caller-provided
    /// scratch. Concurrent shard workers each need their own
    /// [`StepScratch`]; a machine keeps one per module so the parallel
    /// resolution path stays allocation-free in steady state (the returned
    /// [`ShardOutcome`] still owns its staged/reply vectors — they outlive
    /// the call).
    pub fn resolve_shard_with(
        &self,
        refs: &[MemRef],
        idxs: &[usize],
        scratch: &mut StepScratch,
    ) -> Result<ShardOutcome, MemError> {
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(idxs.iter().map(|&i| (refs[i].op.addr(), i)));
        scratch.pairs.sort_unstable();
        let mut out = ShardOutcome::default();
        let mut start = 0;
        while start < scratch.pairs.len() {
            let addr = scratch.pairs[start].0;
            let mut end = start + 1;
            while end < scratch.pairs.len() && scratch.pairs[end].0 == addr {
                end += 1;
            }
            let value = if end - start == 1 {
                self.resolve_single(scratch.pairs[start].1, refs, &mut out.replies)
            } else {
                out.hot_addrs += 1;
                let run = &scratch.pairs[start..end];
                let (value, combined) =
                    self.resolve_addr(addr, run, refs, &mut scratch.addr, &mut out.replies)?;
                out.combined += combined;
                value
            };
            out.staged.push((addr, value));
            start = end;
        }
        Ok(out)
    }

    /// Applies staged shard outcomes. Shards stage disjoint address sets,
    /// so the application order is immaterial; commit nothing when any
    /// shard faulted to keep the step atomic.
    pub fn commit_shards(&mut self, outcomes: &[ShardOutcome]) {
        for o in outcomes {
            for &(addr, value) in &o.staged {
                self.words[addr] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::RefOrigin;

    fn sm(policy: CrcwPolicy) -> SharedMemory {
        SharedMemory::new(64, 4, ModuleMap::Interleaved, policy)
    }

    fn rref(rank: usize, addr: Addr) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Read(addr))
    }

    fn wref(rank: usize, addr: Addr, v: Word) -> MemRef {
        MemRef::new(RefOrigin::new(0, rank), MemOp::Write(addr, v))
    }

    #[test]
    fn reads_see_pre_step_state() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(5, 100).unwrap();
        let (replies, _) = m.step(&[rref(0, 5), wref(1, 5, 7)]).unwrap();
        assert_eq!(replies[0], Some(100)); // read ignores same-step write
        assert_eq!(m.peek(5).unwrap(), 7);
    }

    #[test]
    fn arbitrary_highest_rank_wins_priority_lowest() {
        let refs = [wref(2, 1, 20), wref(0, 1, 10), wref(1, 1, 15)];
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 20);
        let mut m = sm(CrcwPolicy::Priority);
        m.step(&refs).unwrap();
        assert_eq!(m.peek(1).unwrap(), 10);
    }

    #[test]
    fn common_agreeing_ok_conflict_faults() {
        let mut m = sm(CrcwPolicy::Common);
        m.step(&[wref(0, 2, 9), wref(1, 2, 9)]).unwrap();
        assert_eq!(m.peek(2).unwrap(), 9);
        let e = m.step(&[wref(0, 2, 1), wref(1, 2, 2)]).unwrap_err();
        assert!(matches!(e, MemError::CommonWriteConflict { addr: 2 }));
    }

    #[test]
    fn crew_faults_on_concurrent_writes_only() {
        let mut m = sm(CrcwPolicy::Crew);
        m.step(&[rref(0, 3), rref(1, 3), wref(2, 4, 1)]).unwrap();
        let e = m.step(&[wref(0, 3, 1), wref(1, 3, 2)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn erew_faults_on_any_concurrency() {
        let mut m = sm(CrcwPolicy::Erew);
        m.step(&[rref(0, 3), wref(1, 4, 1)]).unwrap();
        let e = m.step(&[rref(0, 3), rref(1, 3)]).unwrap_err();
        assert!(matches!(e, MemError::ExclusiveViolation { .. }));
    }

    #[test]
    fn multiadd_combines_in_one_step() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 5).unwrap();
        let refs: Vec<MemRef> = (0..8)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Add, 10, rank as Word + 1),
                )
            })
            .collect();
        let (_, stats) = m.step(&refs).unwrap();
        assert_eq!(m.peek(10).unwrap(), 5 + 36);
        assert_eq!(stats.combined, 7);
        assert_eq!(stats.hot_addrs, 1);
    }

    #[test]
    fn multiprefix_returns_rank_ordered_prefixes() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.poke(10, 100).unwrap();
        // Issue out of rank order to check the sort.
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 10, 30)),
            MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 10, 10)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 10, 20)),
        ];
        let (replies, _) = m.step(&refs).unwrap();
        assert_eq!(replies[1], Some(100)); // rank 0: memory seed
        assert_eq!(replies[2], Some(110)); // rank 1: seed + 10
        assert_eq!(replies[0], Some(130)); // rank 2: seed + 10 + 20
        assert_eq!(m.peek(10).unwrap(), 160);
    }

    #[test]
    fn multiops_allowed_under_erew() {
        let mut m = sm(CrcwPolicy::Erew);
        let refs: Vec<MemRef> = (0..4)
            .map(|rank| {
                MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(MultiKind::Max, 0, rank as Word),
                )
            })
            .collect();
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 3);
    }

    #[test]
    fn mixed_write_and_multi_write_first() {
        let mut m = sm(CrcwPolicy::Priority);
        m.poke(0, 1000).unwrap();
        let refs = vec![
            MemRef::new(RefOrigin::new(0, 0), MemOp::Write(0, 50)),
            MemRef::new(RefOrigin::new(0, 1), MemOp::Multi(MultiKind::Add, 0, 3)),
        ];
        m.step(&refs).unwrap();
        assert_eq!(m.peek(0).unwrap(), 53); // write resolves, then combine
    }

    #[test]
    fn out_of_bounds_faults_before_mutation() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        let e = m.step(&[wref(0, 1, 7), wref(1, 9999, 1)]).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
        assert_eq!(m.peek(1).unwrap(), 0); // first write not applied
    }

    /// Drives the sharding API the way the parallel engine does and
    /// returns the same `(replies, stats)` shape as `step`.
    fn sharded_step(
        m: &mut SharedMemory,
        refs: &[MemRef],
    ) -> Result<(Vec<Option<Word>>, StepStats), MemError> {
        let (buckets, mut stats) = m.shard_refs(refs)?;
        let mut outcomes = Vec::new();
        let mut fault: Option<MemError> = None;
        for b in buckets.iter().filter(|b| !b.is_empty()) {
            match m.resolve_shard(refs, b) {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    if fault.as_ref().map(|f| e.addr() < f.addr()).unwrap_or(true) {
                        fault = Some(e);
                    }
                }
            }
        }
        if let Some(e) = fault {
            return Err(e);
        }
        let mut replies = vec![None; refs.len()];
        for o in &outcomes {
            stats.hot_addrs += o.hot_addrs;
            stats.combined += o.combined;
            for &(i, v) in &o.replies {
                replies[i] = Some(v);
            }
        }
        m.commit_shards(&outcomes);
        Ok((replies, stats))
    }

    #[test]
    fn sharded_step_matches_sequential_step() {
        // A mixed bag across modules: reads, competing writes, multi-adds
        // and prefixes, some sharing addresses.
        let refs = vec![
            rref(0, 5),
            wref(1, 5, 70),
            wref(9, 5, 90),
            MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 9, 3)),
            MemRef::new(RefOrigin::new(1, 3), MemOp::Prefix(MultiKind::Add, 9, 4)),
            MemRef::new(RefOrigin::new(1, 4), MemOp::Multi(MultiKind::Max, 13, 44)),
            wref(5, 2, 11),
            rref(6, 2),
            rref(7, 63),
        ];
        for policy in [CrcwPolicy::Arbitrary, CrcwPolicy::Priority] {
            let mut seq = sm(policy);
            let mut par = sm(policy);
            for a in 0..64 {
                seq.poke(a, a as Word * 10).unwrap();
                par.poke(a, a as Word * 10).unwrap();
            }
            let (r1, s1) = seq.step(&refs).unwrap();
            let (r2, s2) = sharded_step(&mut par, &refs).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(s1, s2);
            for a in 0..64 {
                assert_eq!(seq.peek(a).unwrap(), par.peek(a).unwrap());
            }
        }
    }

    #[test]
    fn sharded_step_faults_atomically_with_lowest_address() {
        // Module 1 (addr 9) and module 3 (addr 3) both violate CREW; the
        // reported fault must be the lowest address, and nothing commits.
        let refs = vec![
            wref(0, 9, 1),
            wref(1, 9, 2),
            wref(2, 3, 5),
            wref(3, 3, 6),
            wref(4, 8, 77),
        ];
        let mut seq = sm(CrcwPolicy::Crew);
        let mut par = sm(CrcwPolicy::Crew);
        let e1 = seq.step(&refs).unwrap_err();
        let e2 = sharded_step(&mut par, &refs).unwrap_err();
        assert_eq!(e1, e2);
        assert!(matches!(e2, MemError::ExclusiveViolation { addr: 3, .. }));
        assert_eq!(par.peek(8).unwrap(), 0); // non-faulting shard not applied
    }

    #[test]
    fn shard_refs_reports_first_out_of_bounds_in_issue_order() {
        let m = sm(CrcwPolicy::Arbitrary);
        let refs = vec![wref(0, 1, 7), wref(1, 9999, 1), wref(2, 8888, 1)];
        let e = m.shard_refs(&refs).unwrap_err();
        assert!(matches!(e, MemError::OutOfBounds { addr: 9999, .. }));
    }

    #[test]
    fn multikind_cast_indexes_declaration_order() {
        // The per-kind combine buffers are indexed by `kind as usize`;
        // that is only the declaration (== `Ord`) order while the enum
        // carries no explicit discriminants.
        for (k, kind) in MultiKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, k);
        }
    }

    #[test]
    fn step_with_reused_scratch_matches_fresh_scratch() {
        // One scratch driven across dissimilar steps (combines, then plain
        // writes, then a faulting step, then reads) must behave exactly
        // like per-step fresh scratch: stale buffer contents never leak.
        let steps: Vec<Vec<MemRef>> = vec![
            vec![
                MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 9, 4)),
                MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 9, 3)),
                MemRef::new(RefOrigin::new(0, 2), MemOp::Multi(MultiKind::Max, 13, 44)),
            ],
            vec![wref(2, 1, 20), wref(0, 1, 10), rref(1, 9)],
            vec![wref(0, 2, 7), wref(1, 9999, 1)], // faults, nothing staged
            vec![rref(0, 1), rref(1, 13), rref(2, 2)],
        ];
        let mut reused = sm(CrcwPolicy::Arbitrary);
        let mut fresh = sm(CrcwPolicy::Arbitrary);
        let mut scratch = StepScratch::default();
        for refs in &steps {
            let a = reused.step_with(refs, &mut scratch);
            let b = fresh.step(refs);
            match (a, b) {
                (Ok((r1, s1)), Ok((r2, s2))) => {
                    assert_eq!(r1, r2);
                    assert_eq!(s1, s2);
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("diverged: {a:?} vs {b:?}"),
            }
        }
        for a in 0..64 {
            assert_eq!(reused.peek(a).unwrap(), fresh.peek(a).unwrap());
        }
    }

    #[test]
    fn single_ref_fast_path_matches_general_path() {
        // Every op kind through a single-reference address must produce
        // the replies, staged value and stats `resolve_addr` would: pair
        // each lone reference with a two-reference run of the same ops so
        // both paths execute in one step, then cross-check against a
        // memory resolving the lone references via the general path (by
        // duplicating them at rank order extremes that keep the outcome).
        for kind in MultiKind::ALL {
            let mut m = sm(CrcwPolicy::Arbitrary);
            m.poke(3, 100).unwrap();
            m.poke(7, -5).unwrap();
            let refs = vec![
                rref(0, 3),
                wref(1, 5, 42),
                MemRef::new(RefOrigin::new(0, 2), MemOp::Multi(kind, 7, 9)),
                MemRef::new(RefOrigin::new(0, 3), MemOp::Prefix(kind, 11, 6)),
            ];
            let (replies, stats) = m.step(&refs).unwrap();
            assert_eq!(replies[0], Some(100));
            assert_eq!(replies[1], None);
            assert_eq!(replies[2], None);
            assert_eq!(replies[3], Some(0)); // exclusive prefix = old value
            assert_eq!(m.peek(5).unwrap(), 42);
            assert_eq!(m.peek(7).unwrap(), kind.combine(-5, 9));
            assert_eq!(m.peek(11).unwrap(), kind.combine(0, 6));
            assert_eq!(m.peek(3).unwrap(), 100); // read stages the old value
            assert_eq!(stats.hot_addrs, 0);
            assert_eq!(stats.combined, 0);
        }
    }

    #[test]
    fn load_data_places_blocks() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        m.load_data(&[DataBlock {
            base: 8,
            words: vec![1, 2, 3],
        }])
        .unwrap();
        assert_eq!(m.peek_range(8, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn stats_track_module_loads() {
        let mut m = sm(CrcwPolicy::Arbitrary);
        // Interleaved over 4 modules: addresses 0,4,8 hit module 0.
        let (_, stats) = m
            .step(&[rref(0, 0), rref(1, 4), rref(2, 8), rref(3, 1)])
            .unwrap();
        assert_eq!(stats.per_module[0], 3);
        assert_eq!(stats.max_module_load(), 3);
    }
}
