//! Address-to-module placement.
//!
//! ESM realizations of the PRAM distribute the shared address space over
//! `M` physical modules. Plain interleaving (`addr mod M`) is simple but
//! pathological for strided access; the classical remedy — used by the
//! machines the paper builds on — is a *randomizing linear hash*
//! `h(a) = ((α·a + β) mod p) mod M` with `p` prime, which spreads any fixed
//! access pattern nearly evenly over the modules with high probability.

use serde::{Deserialize, Serialize};

use tcf_isa::word::Addr;

/// A large prime for the linear hash, comfortably above any simulated
/// address space (2^61 - 1, a Mersenne prime).
pub const HASH_PRIME: u128 = (1 << 61) - 1;

/// Maps shared-memory word addresses to memory modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModuleMap {
    /// Low-order interleaving: module = `addr mod M`.
    Interleaved,
    /// Randomizing linear hash `((a·addr + b) mod HASH_PRIME) mod M`.
    ///
    /// `a` must be non-zero; `Self::linear` picks suitable defaults from a
    /// seed.
    LinearHash {
        /// Multiplier (non-zero, < `HASH_PRIME`).
        a: u64,
        /// Offset (< `HASH_PRIME`).
        b: u64,
    },
}

impl ModuleMap {
    /// Creates a linear hash with parameters derived from `seed` using a
    /// splitmix64 scramble, so different seeds give independent placements.
    pub fn linear(seed: u64) -> ModuleMap {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = (next() % (HASH_PRIME as u64 - 1)) + 1; // non-zero mod p
        let b = next() % HASH_PRIME as u64;
        ModuleMap::LinearHash { a, b }
    }

    /// Module index for `addr` with `modules` modules.
    #[inline]
    pub fn module_of(&self, addr: Addr, modules: usize) -> usize {
        debug_assert!(modules > 0);
        match *self {
            ModuleMap::Interleaved => addr % modules,
            ModuleMap::LinearHash { a, b } => {
                let h = (a as u128 * addr as u128 + b as u128) % HASH_PRIME;
                (h % modules as u128) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_is_modulo() {
        let m = ModuleMap::Interleaved;
        for a in 0..100 {
            assert_eq!(m.module_of(a, 8), a % 8);
        }
    }

    #[test]
    fn linear_hash_in_range() {
        let m = ModuleMap::linear(42);
        for a in 0..10_000 {
            assert!(m.module_of(a, 7) < 7);
        }
    }

    #[test]
    fn linear_hash_is_deterministic_per_seed() {
        let m1 = ModuleMap::linear(1);
        let m2 = ModuleMap::linear(1);
        let m3 = ModuleMap::linear(2);
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
    }

    #[test]
    fn linear_hash_spreads_strided_pattern() {
        // Stride-8 access over 8 modules is the worst case for interleaving
        // (everything lands in module 0); the hash must spread it.
        let modules = 8;
        let strided: Vec<usize> = (0..1024).map(|i| i * modules).collect();
        let inter = ModuleMap::Interleaved;
        assert!(strided.iter().all(|&a| inter.module_of(a, modules) == 0));

        let hash = ModuleMap::linear(7);
        let mut counts = vec![0usize; modules];
        for &a in &strided {
            counts[hash.module_of(a, modules)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // Perfect balance would be 128 per module; accept anything far from
        // the degenerate 1024-in-one-module case.
        assert!(
            max < 320,
            "hash failed to spread strided pattern: {counts:?}"
        );
    }
}
