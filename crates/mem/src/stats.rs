//! Per-step access statistics, used for congestion analysis and by the
//! network timing model.

use serde::{Deserialize, Serialize};
use tcf_obs::LatencyHistogram;

/// Statistics of one shared-memory step.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepStats {
    /// Total references in the step.
    pub refs: usize,
    /// References received by each module.
    pub per_module: Vec<usize>,
    /// Number of distinct addresses that received more than one reference
    /// (combining opportunities / conflicts).
    pub hot_addrs: usize,
    /// References absorbed by combining (multioperations / multiprefixes
    /// beyond the first reference per address).
    pub combined: usize,
    /// Distribution of per-step peak module loads (one sample per absorbed
    /// non-empty step): the step service-time distribution under a
    /// one-reference-per-cycle module model.
    pub load_hist: LatencyHistogram,
}

impl StepStats {
    /// Creates empty statistics for `modules` modules.
    pub fn new(modules: usize) -> StepStats {
        StepStats {
            refs: 0,
            per_module: vec![0; modules],
            hot_addrs: 0,
            combined: 0,
            load_hist: LatencyHistogram::new(),
        }
    }

    /// The maximum number of references any single module received — the
    /// step's service time under a one-reference-per-cycle module model.
    pub fn max_module_load(&self) -> usize {
        self.per_module.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the heaviest module load to the ideal (perfectly even)
    /// load; 1.0 is perfectly balanced. Returns 0.0 for an empty step.
    pub fn imbalance(&self) -> f64 {
        if self.refs == 0 || self.per_module.is_empty() {
            return 0.0;
        }
        let ideal = self.refs as f64 / self.per_module.len() as f64;
        self.max_module_load() as f64 / ideal
    }

    /// Merges another step's statistics into an aggregate.
    pub fn absorb(&mut self, other: &StepStats) {
        self.refs += other.refs;
        if self.per_module.len() < other.per_module.len() {
            self.per_module.resize(other.per_module.len(), 0);
        }
        for (dst, src) in self.per_module.iter_mut().zip(&other.per_module) {
            *dst += src;
        }
        self.hot_addrs += other.hot_addrs;
        self.combined += other.combined;
        if other.load_hist.count() > 0 {
            // Aggregate-of-aggregates: keep the already-collected samples.
            self.load_hist.merge(&other.load_hist);
        } else if other.refs > 0 {
            // A raw single step: its peak module load is one sample.
            self.load_hist.record(other.max_module_load() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_load_and_imbalance() {
        let mut s = StepStats::new(4);
        s.refs = 8;
        s.per_module = vec![5, 1, 1, 1];
        assert_eq!(s.max_module_load(), 5);
        assert!((s.imbalance() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = StepStats::new(0);
        assert_eq!(s.max_module_load(), 0);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = StepStats::new(2);
        a.refs = 3;
        a.per_module = vec![2, 1];
        let mut b = StepStats::new(2);
        b.refs = 1;
        b.per_module = vec![0, 1];
        b.combined = 1;
        a.absorb(&b);
        assert_eq!(a.refs, 4);
        assert_eq!(a.per_module, vec![2, 2]);
        assert_eq!(a.combined, 1);
    }

    #[test]
    fn absorb_samples_peak_module_load() {
        let mut agg = StepStats::new(2);
        let mut s1 = StepStats::new(2);
        s1.refs = 3;
        s1.per_module = vec![3, 0];
        let mut s2 = StepStats::new(2);
        s2.refs = 2;
        s2.per_module = vec![1, 1];
        agg.absorb(&s1);
        agg.absorb(&s2);
        assert_eq!(agg.load_hist.count(), 2);
        assert_eq!(agg.load_hist.max(), 3);
        // Absorbing the aggregate elsewhere keeps all samples.
        let mut total = StepStats::new(2);
        total.absorb(&agg);
        assert_eq!(total.load_hist.count(), 2);
        // Empty steps contribute no sample.
        agg.absorb(&StepStats::new(2));
        assert_eq!(agg.load_hist.count(), 2);
    }
}
