//! Per-group NUMA local memory blocks.
//!
//! Each processor group of a PRAM-NUMA machine owns one local memory block
//! reachable without crossing the shared-memory emulation: accesses are
//! direct, low-latency, and never combined — there is exactly one
//! instruction stream (the NUMA bunch) referencing the block at a time, so
//! step-synchronous arbitration is unnecessary.

use serde::{Deserialize, Serialize};

use tcf_isa::word::{Addr, Word};

use crate::error::MemError;

/// One processor group's local memory block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalMemory {
    group: usize,
    words: Vec<Word>,
}

impl LocalMemory {
    /// Creates a zeroed block of `size` words belonging to `group`.
    pub fn new(group: usize, size: usize) -> LocalMemory {
        LocalMemory {
            group,
            words: vec![0; size],
        }
    }

    /// The owning processor group.
    #[inline]
    pub fn group(&self) -> usize {
        self.group
    }

    /// Size in words.
    #[inline]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Reads one word.
    pub fn read(&self, addr: Addr) -> Result<Word, MemError> {
        self.words
            .get(addr)
            .copied()
            .ok_or(MemError::LocalOutOfBounds {
                addr,
                size: self.words.len(),
                group: self.group,
            })
    }

    /// Writes one word.
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        let size = self.words.len();
        let group = self.group;
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(MemError::LocalOutOfBounds { addr, size, group }),
        }
    }

    /// Reads a contiguous range.
    pub fn read_range(&self, base: Addr, len: usize) -> Result<Vec<Word>, MemError> {
        (base..base + len).map(|a| self.read(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut l = LocalMemory::new(3, 16);
        l.write(5, -9).unwrap();
        assert_eq!(l.read(5).unwrap(), -9);
        assert_eq!(l.group(), 3);
        assert_eq!(l.size(), 16);
    }

    #[test]
    fn out_of_bounds_names_group() {
        let l = LocalMemory::new(2, 4);
        match l.read(4) {
            Err(MemError::LocalOutOfBounds {
                group: 2,
                size: 4,
                addr: 4,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_read() {
        let mut l = LocalMemory::new(0, 8);
        for i in 0..8 {
            l.write(i, i as Word * 2).unwrap();
        }
        assert_eq!(l.read_range(2, 3).unwrap(), vec![4, 6, 8]);
    }
}
