//! One physical memory module with an active memory unit.
//!
//! A module owns a slice of the shared address space (the placement is
//! decided by [`crate::hash::ModuleMap`], so a module stores *hashed*
//! addresses sparsely is avoided by giving each module the full backing
//! array segment it is responsible for — see [`crate::shared`] for the
//! partitioning). The *active memory unit* is the piece of logic that
//! combines concurrent references to one word inside the module, which is
//! what makes constant-time multioperations possible in ESM machines.

use tcf_isa::instr::MultiKind;
use tcf_isa::word::Word;

/// Result of the active memory unit combining the references to one
/// address in one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombineOutcome {
    /// Value the word holds after the step.
    pub new_value: Word,
    /// Per-participant prefix replies (rank-sorted order, aligned with the
    /// input contribution order), present only for prefix requests.
    pub prefixes: Vec<Word>,
}

/// Combines multioperation contributions into a word.
///
/// `contributions` must already be sorted by thread rank; the prefix
/// returned to participant `i` is the combination of the word's old value
/// with contributions `0..i` (exclusive prefix seeded by memory).
///
/// The prefix chain is inherently sequential, but when no prefixes are
/// wanted the total is just a reduction over an associative, commutative
/// operator (every [`MultiKind`] is both), so it runs through the chunked
/// [`fold_words`] kernel instead.
pub fn combine(
    kind: MultiKind,
    old: Word,
    contributions: &[Word],
    want_prefixes: bool,
) -> CombineOutcome {
    if !want_prefixes {
        return CombineOutcome {
            new_value: fold_words(kind, old, contributions),
            prefixes: Vec::new(),
        };
    }
    let mut acc = old;
    let mut prefixes = Vec::with_capacity(contributions.len());
    for &c in contributions {
        prefixes.push(acc);
        acc = kind.combine(acc, c);
    }
    CombineOutcome {
        new_value: acc,
        prefixes,
    }
}

/// Lanes reduced per inner-loop iteration of the chunked folds (mirrors
/// `tcf_core::lanes::LANE_CHUNK`: eight 64-bit lanes per vector).
const FOLD_CHUNK: usize = 8;

/// Chunked reduction: combines `seed` with every word of `xs` under
/// `kind`. Eight identity-seeded accumulators consume eight lanes per
/// iteration, then fold into the seed, then the scalar tail. Every
/// [`MultiKind`] is associative and commutative with a true identity
/// ([`MultiKind::identity`]), so the regrouped reduction is *bit-exact*
/// against the sequential left fold — pinned by the property suite in
/// `tests/properties.rs`.
pub fn fold_words(kind: MultiKind, seed: Word, xs: &[Word]) -> Word {
    #[inline(always)]
    fn chunked(seed: Word, xs: &[Word], id: Word, f: impl Fn(Word, Word) -> Word + Copy) -> Word {
        let mut acc = [id; FOLD_CHUNK];
        let mut it = xs.chunks_exact(FOLD_CHUNK);
        for c in &mut it {
            let c: &[Word; FOLD_CHUNK] = c.try_into().unwrap();
            for k in 0..FOLD_CHUNK {
                acc[k] = f(acc[k], c[k]);
            }
        }
        let mut r = seed;
        for a in acc {
            r = f(r, a);
        }
        for &x in it.remainder() {
            r = f(r, x);
        }
        r
    }
    if xs.len() < FOLD_CHUNK {
        return xs.iter().fold(seed, |a, &b| kind.combine(a, b));
    }
    let id = kind.identity();
    match kind {
        MultiKind::Add => chunked(seed, xs, id, |a, b| a.wrapping_add(b)),
        MultiKind::And => chunked(seed, xs, id, |a, b| a & b),
        MultiKind::Or => chunked(seed, xs, id, |a, b| a | b),
        MultiKind::Xor => chunked(seed, xs, id, |a, b| a ^ b),
        MultiKind::Max => chunked(seed, xs, id, |a, b| a.max(b)),
        MultiKind::Min => chunked(seed, xs, id, |a, b| a.min(b)),
    }
}

/// [`fold_words`] over the arithmetic progression
/// `vbase + k·vstride (wrapping), k in 0..count` without materializing it:
/// progression chunks are generated into a stack array eight lanes at a
/// time and reduced by the same chunked kernels. This is the generic
/// fallback of `resolve_bulk_multi` for value runs with no closed form.
pub fn fold_progression(
    kind: MultiKind,
    seed: Word,
    vbase: Word,
    vstride: Word,
    count: usize,
) -> Word {
    #[inline(always)]
    fn chunked(
        seed: Word,
        vbase: Word,
        vstride: Word,
        count: usize,
        id: Word,
        f: impl Fn(Word, Word) -> Word + Copy,
    ) -> Word {
        let mut offs = [0 as Word; FOLD_CHUNK];
        for k in 1..FOLD_CHUNK {
            offs[k] = offs[k - 1].wrapping_add(vstride);
        }
        let step = vstride.wrapping_mul(FOLD_CHUNK as Word);
        let mut acc = [id; FOLD_CHUNK];
        let mut b = vbase;
        let full = count / FOLD_CHUNK * FOLD_CHUNK;
        for _ in 0..count / FOLD_CHUNK {
            for k in 0..FOLD_CHUNK {
                acc[k] = f(acc[k], b.wrapping_add(offs[k]));
            }
            b = b.wrapping_add(step);
        }
        let mut r = seed;
        for a in acc {
            r = f(r, a);
        }
        for &o in offs.iter().take(count - full) {
            r = f(r, b.wrapping_add(o));
        }
        r
    }
    if count < FOLD_CHUNK {
        return (0..count).fold(seed, |a, k| {
            kind.combine(a, vbase.wrapping_add(vstride.wrapping_mul(k as Word)))
        });
    }
    let id = kind.identity();
    match kind {
        MultiKind::Add => chunked(seed, vbase, vstride, count, id, |a, b| a.wrapping_add(b)),
        MultiKind::And => chunked(seed, vbase, vstride, count, id, |a, b| a & b),
        MultiKind::Or => chunked(seed, vbase, vstride, count, id, |a, b| a | b),
        MultiKind::Xor => chunked(seed, vbase, vstride, count, id, |a, b| a ^ b),
        MultiKind::Max => chunked(seed, vbase, vstride, count, id, |a, b| a.max(b)),
        MultiKind::Min => chunked(seed, vbase, vstride, count, id, |a, b| a.min(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_combine_totals() {
        let out = combine(MultiKind::Add, 10, &[1, 2, 3], true);
        assert_eq!(out.new_value, 16);
        assert_eq!(out.prefixes, vec![10, 11, 13]);
    }

    #[test]
    fn max_combine() {
        let out = combine(MultiKind::Max, 5, &[3, 9, 7], true);
        assert_eq!(out.new_value, 9);
        assert_eq!(out.prefixes, vec![5, 5, 9]);
    }

    #[test]
    fn no_prefixes_requested() {
        let out = combine(MultiKind::Or, 0, &[1, 2, 4], false);
        assert_eq!(out.new_value, 7);
        assert!(out.prefixes.is_empty());
    }

    #[test]
    fn empty_contributions_keep_value() {
        let out = combine(MultiKind::Add, 42, &[], true);
        assert_eq!(out.new_value, 42);
        assert!(out.prefixes.is_empty());
    }
}
