//! One physical memory module with an active memory unit.
//!
//! A module owns a slice of the shared address space (the placement is
//! decided by [`crate::hash::ModuleMap`], so a module stores *hashed*
//! addresses sparsely is avoided by giving each module the full backing
//! array segment it is responsible for — see [`crate::shared`] for the
//! partitioning). The *active memory unit* is the piece of logic that
//! combines concurrent references to one word inside the module, which is
//! what makes constant-time multioperations possible in ESM machines.

use tcf_isa::instr::MultiKind;
use tcf_isa::word::Word;

/// Result of the active memory unit combining the references to one
/// address in one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombineOutcome {
    /// Value the word holds after the step.
    pub new_value: Word,
    /// Per-participant prefix replies (rank-sorted order, aligned with the
    /// input contribution order), present only for prefix requests.
    pub prefixes: Vec<Word>,
}

/// Combines multioperation contributions into a word.
///
/// `contributions` must already be sorted by thread rank; the prefix
/// returned to participant `i` is the combination of the word's old value
/// with contributions `0..i` (exclusive prefix seeded by memory).
pub fn combine(
    kind: MultiKind,
    old: Word,
    contributions: &[Word],
    want_prefixes: bool,
) -> CombineOutcome {
    let mut acc = old;
    let mut prefixes = if want_prefixes {
        Vec::with_capacity(contributions.len())
    } else {
        Vec::new()
    };
    for &c in contributions {
        if want_prefixes {
            prefixes.push(acc);
        }
        acc = kind.combine(acc, c);
    }
    CombineOutcome {
        new_value: acc,
        prefixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_combine_totals() {
        let out = combine(MultiKind::Add, 10, &[1, 2, 3], true);
        assert_eq!(out.new_value, 16);
        assert_eq!(out.prefixes, vec![10, 11, 13]);
    }

    #[test]
    fn max_combine() {
        let out = combine(MultiKind::Max, 5, &[3, 9, 7], true);
        assert_eq!(out.new_value, 9);
        assert_eq!(out.prefixes, vec![5, 5, 9]);
    }

    #[test]
    fn no_prefixes_requested() {
        let out = combine(MultiKind::Or, 0, &[1, 2, 4], false);
        assert_eq!(out.new_value, 7);
        assert!(out.prefixes.is_empty());
    }

    #[test]
    fn empty_contributions_keep_value() {
        let out = combine(MultiKind::Add, 42, &[], true);
        assert_eq!(out.new_value, 42);
        assert!(out.prefixes.is_empty());
    }
}
