//! Memory references: what one implicit thread asks of shared memory in one
//! step.

use serde::{Deserialize, Serialize};

use tcf_isa::instr::MultiKind;
use tcf_isa::word::{Addr, Word};

/// Where a reference comes from, used for deterministic ordering.
///
/// `rank` is the global thread rank of the issuing implicit thread: for a
/// TCF it is the thread index within the flow (offset by the flow's base
/// rank when a flow spans processors); for baseline models it is
/// `pid * T_p + tid`. Multiprefix results and the deterministic variants of
/// concurrent-write resolution are defined in `rank` order, which makes
/// every execution model in the workspace reproducible bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RefOrigin {
    /// Processor group issuing the reference.
    pub group: usize,
    /// Global thread rank (see type-level docs).
    pub rank: usize,
}

impl RefOrigin {
    /// Convenience constructor.
    pub fn new(group: usize, rank: usize) -> RefOrigin {
        RefOrigin { group, rank }
    }
}

/// The operation a reference performs.
///
/// The strided variants are *bulk* references: one `MemRef` standing for
/// `count` lane references whose addresses (and, for writes, values) form
/// an arithmetic progression. Lane `k` of a bulk reference has address
/// `base + k·stride` and global rank `origin.rank + k`; its semantics are
/// *defined* as the expansion into `count` scalar references in lane
/// order, and `SharedMemory::step_bulk_into` resolves it either through a
/// dedicated O(modules) path (when the step's address sets are disjoint)
/// or by literally expanding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemOp {
    /// Read a word; the reply carries the value before this step's writes.
    Read(Addr),
    /// Write a word; concurrent writes are resolved by the CRCW policy.
    Write(Addr, Word),
    /// Multioperation: contribute to a combined update of one word.
    Multi(MultiKind, Addr, Word),
    /// Multiprefix: contribute and receive the exclusive prefix (in rank
    /// order, seeded with the word's pre-step value).
    Prefix(MultiKind, Addr, Word),
    /// Bulk read: lane `k` (of `count`) reads `base + k·stride`.
    StridedRead {
        /// Address of lane 0.
        base: Addr,
        /// Address increment between consecutive lanes.
        stride: i64,
        /// Number of lanes.
        count: u32,
    },
    /// Bulk write: lane `k` (of `count`) writes value `vbase + k·vstride`
    /// (wrapping word arithmetic) to address `base + k·stride`.
    StridedWrite {
        /// Address of lane 0.
        base: Addr,
        /// Address increment between consecutive lanes.
        stride: i64,
        /// Number of lanes.
        count: u32,
        /// Value written by lane 0.
        vbase: Word,
        /// Value increment between consecutive lanes (wrapping).
        vstride: Word,
    },
    /// Bulk multioperation / multiprefix: lane `k` (of `count`)
    /// contributes value `vbase + k·vstride` (wrapping) to address
    /// `base + k·astride` with global rank `origin.rank + k`. With
    /// `astride == 0` every lane combines into the same word — the
    /// compressed form of a thick flow's `Mu*`/`Mp*` on one target.
    /// When `prefix` is set each lane receives its exclusive rank-order
    /// prefix through the bulk-reply channel.
    BulkMulti {
        /// Combine operator.
        kind: MultiKind,
        /// Whether lanes receive exclusive prefixes (multiprefix).
        prefix: bool,
        /// Address of lane 0.
        base: Addr,
        /// Address increment between consecutive lanes (0 = one word).
        astride: i64,
        /// Number of lanes.
        count: u32,
        /// Contribution of lane 0.
        vbase: Word,
        /// Contribution increment between consecutive lanes (wrapping).
        vstride: Word,
    },
}

impl MemOp {
    /// The address touched (lane 0's address for bulk references).
    #[inline]
    pub fn addr(&self) -> Addr {
        match *self {
            MemOp::Read(a)
            | MemOp::Write(a, _)
            | MemOp::Multi(_, a, _)
            | MemOp::Prefix(_, a, _)
            | MemOp::StridedRead { base: a, .. }
            | MemOp::StridedWrite { base: a, .. }
            | MemOp::BulkMulti { base: a, .. } => a,
        }
    }

    /// Whether the issuing thread expects a reply value. (A `StridedRead`
    /// or prefixing `BulkMulti` replies through the bulk-reply channel,
    /// not the per-reference slot.)
    #[inline]
    pub fn wants_reply(&self) -> bool {
        match *self {
            MemOp::Read(_) | MemOp::Prefix(..) | MemOp::StridedRead { .. } => true,
            MemOp::BulkMulti { prefix, .. } => prefix,
            _ => false,
        }
    }

    /// Whether this is a bulk (strided) reference.
    #[inline]
    pub fn is_bulk(&self) -> bool {
        matches!(
            self,
            MemOp::StridedRead { .. } | MemOp::StridedWrite { .. } | MemOp::BulkMulti { .. }
        )
    }

    /// Number of lanes a bulk reference expands to (1 for scalar ops).
    #[inline]
    pub fn bulk_count(&self) -> u32 {
        match *self {
            MemOp::StridedRead { count, .. }
            | MemOp::StridedWrite { count, .. }
            | MemOp::BulkMulti { count, .. } => count,
            _ => 1,
        }
    }

    /// Number of lane references this operation stands for.
    #[inline]
    pub fn lanes(&self) -> usize {
        match *self {
            MemOp::StridedRead { count, .. }
            | MemOp::StridedWrite { count, .. }
            | MemOp::BulkMulti { count, .. } => count as usize,
            _ => 1,
        }
    }
}

/// One memory reference: origin plus operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Issuing thread.
    pub origin: RefOrigin,
    /// Requested operation.
    pub op: MemOp,
}

impl MemRef {
    /// Convenience constructor.
    pub fn new(origin: RefOrigin, op: MemOp) -> MemRef {
        MemRef { origin, op }
    }

    /// The chain key of a zero-astride bulk multioperation: references
    /// with equal keys combine into the same word under the same operator
    /// and reply kind, so a *rank-ordered* sequence of them — the shape a
    /// masked thick multioperation splits into at mask-run boundaries —
    /// resolves in closed form one reference at a time, each reading its
    /// predecessor's result, exactly like the rank-ordered per-lane
    /// expansion. Returns the key plus the reference's half-open global
    /// rank window `[rank, rank + count)`.
    pub fn multi_chain_key(&self) -> Option<((Addr, MultiKind, bool), usize, usize)> {
        match self.op {
            MemOp::BulkMulti {
                kind,
                prefix,
                base,
                astride: 0,
                count,
                ..
            } => Some((
                (base, kind, prefix),
                self.origin.rank,
                self.origin.rank + count as usize,
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_and_reply_classification() {
        assert_eq!(MemOp::Read(7).addr(), 7);
        assert_eq!(MemOp::Write(8, 1).addr(), 8);
        assert_eq!(MemOp::Multi(MultiKind::Add, 9, 1).addr(), 9);
        assert_eq!(MemOp::Prefix(MultiKind::Max, 10, 1).addr(), 10);
        assert!(MemOp::Read(0).wants_reply());
        assert!(MemOp::Prefix(MultiKind::Add, 0, 0).wants_reply());
        assert!(!MemOp::Write(0, 0).wants_reply());
        assert!(!MemOp::Multi(MultiKind::Add, 0, 0).wants_reply());
    }
}
