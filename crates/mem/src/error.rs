//! Memory system fault conditions.

use core::fmt;

use tcf_isa::word::Addr;

/// Faults raised by the memory system.
///
/// The hardware the model abstracts has no recoverable memory traps, so
/// execution engines treat any `MemError` as a fatal guest-program fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access past the end of the shared address space.
    OutOfBounds {
        /// Offending address.
        addr: Addr,
        /// Size of the space accessed.
        size: usize,
    },
    /// Access past the end of a local memory block.
    LocalOutOfBounds {
        /// Offending address.
        addr: Addr,
        /// Size of the block.
        size: usize,
        /// Which group's block.
        group: usize,
    },
    /// Two concurrent plain writes disagreed under [`CrcwPolicy::Common`].
    ///
    /// [`CrcwPolicy::Common`]: crate::shared::CrcwPolicy::Common
    CommonWriteConflict {
        /// Address written.
        addr: Addr,
    },
    /// Concurrent access to one address under an exclusive-access policy.
    ExclusiveViolation {
        /// Address accessed.
        addr: Addr,
        /// Number of concurrent references observed.
        refs: usize,
    },
}

impl MemError {
    /// The faulting address, used to pick the *first* (lowest-address)
    /// fault when per-module shards of one step fault independently.
    pub fn addr(&self) -> Addr {
        match *self {
            MemError::OutOfBounds { addr, .. }
            | MemError::LocalOutOfBounds { addr, .. }
            | MemError::CommonWriteConflict { addr }
            | MemError::ExclusiveViolation { addr, .. } => addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "shared address {addr} out of bounds (size {size})")
            }
            MemError::LocalOutOfBounds { addr, size, group } => write!(
                f,
                "local address {addr} out of bounds (size {size}, group {group})"
            ),
            MemError::CommonWriteConflict { addr } => {
                write!(
                    f,
                    "conflicting concurrent writes to {addr} under Common CRCW"
                )
            }
            MemError::ExclusiveViolation { addr, refs } => write!(
                f,
                "{refs} concurrent references to {addr} under an exclusive policy"
            ),
        }
    }
}

impl std::error::Error for MemError {}
