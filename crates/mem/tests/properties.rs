//! Property tests of the shared-memory step semantics.

use proptest::prelude::*;

use tcf_isa::instr::MultiKind;
use tcf_isa::word::Word;
use tcf_mem::module::{fold_progression, fold_words};
use tcf_mem::{CrcwPolicy, MemOp, MemRef, ModuleMap, RefOrigin, SharedMemory};

const SIZE: usize = 128;

fn arb_kind() -> impl Strategy<Value = MultiKind> {
    prop::sample::select(&MultiKind::ALL[..])
}

const POLICIES: [CrcwPolicy; 5] = [
    CrcwPolicy::Arbitrary,
    CrcwPolicy::Priority,
    CrcwPolicy::Common,
    CrcwPolicy::Crew,
    CrcwPolicy::Erew,
];

/// One generated reference of the bulk-equivalence property: scalar ops
/// plus strided bulk reads/writes (possibly overlapping, possibly out of
/// bounds — fault behaviour is part of the contract).
#[derive(Debug, Clone)]
enum GenRef {
    Read(usize),
    Write(usize, i32),
    Multi(MultiKind, usize, i32),
    Prefix(MultiKind, usize, i32),
    StridedRead {
        base: usize,
        stride: i64,
        count: u32,
    },
    StridedWrite {
        base: usize,
        stride: i64,
        count: u32,
        vbase: i32,
        vstride: i32,
    },
    BulkMulti {
        kind: MultiKind,
        prefix: bool,
        base: usize,
        astride: i64,
        count: u32,
        vbase: i32,
        vstride: i32,
    },
}

fn arb_gen_ref() -> impl Strategy<Value = GenRef> {
    // Progressions stay on non-negative addresses (the emitting layer
    // guarantees this; negative lane addresses have sentinel semantics
    // covered by unit tests) but may leave the address space upward.
    let strided = (0usize..SIZE + 8, 0i64..6, 1u32..24)
        .prop_map(|(base, stride, count)| (base, stride, count));
    prop_oneof![
        (0usize..SIZE + 4).prop_map(GenRef::Read),
        (0usize..SIZE + 4, any::<i32>()).prop_map(|(a, v)| GenRef::Write(a, v)),
        (arb_kind(), 0usize..SIZE, any::<i32>()).prop_map(|(k, a, v)| GenRef::Multi(k, a, v)),
        (arb_kind(), 0usize..SIZE, any::<i32>()).prop_map(|(k, a, v)| GenRef::Prefix(k, a, v)),
        strided
            .clone()
            .prop_map(|(base, stride, count)| GenRef::StridedRead {
                base,
                stride,
                count
            }),
        (strided, any::<i32>(), -4i32..5).prop_map(|((base, stride, count), vbase, vstride)| {
            GenRef::StridedWrite {
                base,
                stride,
                count,
                vbase,
                vstride,
            }
        }),
        // Bulk multioperations: `astride == 0` (the combining-run shape
        // the closed forms target) is weighted heavily, but strided
        // targets and both reply modes are exercised too.
        (
            arb_kind(),
            any::<bool>(),
            0usize..SIZE + 8,
            prop_oneof![Just(0i64), Just(0i64), Just(0i64), 1i64..4],
            1u32..24,
            any::<i32>(),
            -4i32..5,
        )
            .prop_map(|(kind, prefix, base, astride, count, vbase, vstride)| {
                GenRef::BulkMulti {
                    kind,
                    prefix,
                    base,
                    astride,
                    count,
                    vbase,
                    vstride,
                }
            },),
    ]
}

/// Builds the `MemRef` list (each reference claims a rank block as wide
/// as its lane count, the way the execution layer assigns ranks) and its
/// scalar lane expansion.
fn build_refs(gens: &[GenRef]) -> (Vec<MemRef>, Vec<MemRef>) {
    let mut refs = Vec::new();
    let mut flat = Vec::new();
    let mut rank = 0usize;
    for g in gens {
        match *g {
            GenRef::Read(a) => {
                refs.push(MemRef::new(RefOrigin::new(0, rank), MemOp::Read(a)));
                flat.push(*refs.last().unwrap());
                rank += 1;
            }
            GenRef::Write(a, v) => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Write(a, v as Word),
                ));
                flat.push(*refs.last().unwrap());
                rank += 1;
            }
            GenRef::Multi(k, a, v) => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Multi(k, a, v as Word),
                ));
                flat.push(*refs.last().unwrap());
                rank += 1;
            }
            GenRef::Prefix(k, a, v) => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::Prefix(k, a, v as Word),
                ));
                flat.push(*refs.last().unwrap());
                rank += 1;
            }
            GenRef::StridedRead {
                base,
                stride,
                count,
            } => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::StridedRead {
                        base,
                        stride,
                        count,
                    },
                ));
                flat.extend((0..count as usize).map(|k| {
                    MemRef::new(
                        RefOrigin::new(0, rank + k),
                        MemOp::Read((base as i64 + k as i64 * stride) as usize),
                    )
                }));
                rank += count as usize;
            }
            GenRef::StridedWrite {
                base,
                stride,
                count,
                vbase,
                vstride,
            } => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::StridedWrite {
                        base,
                        stride,
                        count,
                        vbase: vbase as Word,
                        vstride: vstride as Word,
                    },
                ));
                flat.extend((0..count as usize).map(|k| {
                    MemRef::new(
                        RefOrigin::new(0, rank + k),
                        MemOp::Write(
                            (base as i64 + k as i64 * stride) as usize,
                            (vbase as Word).wrapping_add((k as Word).wrapping_mul(vstride as Word)),
                        ),
                    )
                }));
                rank += count as usize;
            }
            GenRef::BulkMulti {
                kind,
                prefix,
                base,
                astride,
                count,
                vbase,
                vstride,
            } => {
                refs.push(MemRef::new(
                    RefOrigin::new(0, rank),
                    MemOp::BulkMulti {
                        kind,
                        prefix,
                        base,
                        astride,
                        count,
                        vbase: vbase as Word,
                        vstride: vstride as Word,
                    },
                ));
                flat.extend((0..count as usize).map(|k| {
                    let a = (base as i64 + k as i64 * astride) as usize;
                    let v = (vbase as Word).wrapping_add((k as Word).wrapping_mul(vstride as Word));
                    MemRef::new(
                        RefOrigin::new(0, rank + k),
                        if prefix {
                            MemOp::Prefix(kind, a, v)
                        } else {
                            MemOp::Multi(kind, a, v)
                        },
                    )
                }));
                rank += count as usize;
            }
        }
    }
    (refs, flat)
}

proptest! {
    /// A multiprefix over n participants leaves kind-combination of all
    /// contributions (seeded by the old value) in memory, and participant
    /// prefixes reconstruct the same total.
    #[test]
    fn multiprefix_consistency(
        kind in arb_kind(),
        seed: i32,
        contributions in prop::collection::vec(any::<i32>(), 1..32),
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.poke(0, seed as Word).unwrap();
        let refs: Vec<MemRef> = contributions
            .iter()
            .enumerate()
            .map(|(rank, &c)| {
                MemRef::new(RefOrigin::new(0, rank), MemOp::Prefix(kind, 0, c as Word))
            })
            .collect();
        let (replies, _) = m.step(&refs).unwrap();

        // Sequential reference computation.
        let mut acc = seed as Word;
        let mut expected_prefixes = Vec::new();
        for &c in &contributions {
            expected_prefixes.push(acc);
            acc = kind.combine(acc, c as Word);
        }
        prop_assert_eq!(m.peek(0).unwrap(), acc);
        for (i, exp) in expected_prefixes.into_iter().enumerate() {
            prop_assert_eq!(replies[i], Some(exp));
        }
    }

    /// Multioperations are order-independent: shuffling the reference
    /// vector never changes the resulting memory value.
    #[test]
    fn multiop_order_independent(
        kind in arb_kind(),
        contributions in prop::collection::vec(any::<i32>(), 1..24),
        rotate in 0usize..24,
    ) {
        let build = |order: &[(usize, i32)]| {
            let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
            let refs: Vec<MemRef> = order
                .iter()
                .map(|&(rank, c)| MemRef::new(RefOrigin::new(0, rank), MemOp::Multi(kind, 3, c as Word)))
                .collect();
            m.step(&refs).unwrap();
            m.peek(3).unwrap()
        };
        let ranked: Vec<(usize, i32)> = contributions.iter().copied().enumerate().collect();
        let mut shuffled = ranked.clone();
        let n = shuffled.len().max(1);
        shuffled.rotate_left(rotate % n);
        prop_assert_eq!(build(&ranked), build(&shuffled));
    }

    /// Reads in a mixed step always see the pre-step value regardless of
    /// how many writes target the same address.
    #[test]
    fn reads_unaffected_by_same_step_writes(
        old: i32,
        writes in prop::collection::vec(any::<i32>(), 1..16),
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.poke(7, old as Word).unwrap();
        let mut refs = vec![MemRef::new(RefOrigin::new(0, 0), MemOp::Read(7))];
        for (i, &w) in writes.iter().enumerate() {
            refs.push(MemRef::new(RefOrigin::new(0, i + 1), MemOp::Write(7, w as Word)));
        }
        let (replies, _) = m.step(&refs).unwrap();
        prop_assert_eq!(replies[0], Some(old as Word));
        // Arbitrary policy: highest rank wins.
        prop_assert_eq!(m.peek(7).unwrap(), *writes.last().unwrap() as Word);
    }

    /// The linear hash never sends an address outside the module range and
    /// two different seeds are deterministic.
    #[test]
    fn hash_in_range(seed: u64, addrs in prop::collection::vec(0usize..1_000_000, 1..64), modules in 1usize..64) {
        let map = ModuleMap::linear(seed);
        for &a in &addrs {
            let m1 = map.module_of(a, modules);
            let m2 = map.module_of(a, modules);
            prop_assert!(m1 < modules);
            prop_assert_eq!(m1, m2);
        }
    }

    /// Per-module statistics always sum to the number of references.
    #[test]
    fn stats_sum_to_refs(addrs in prop::collection::vec(0usize..SIZE, 0..64)) {
        let mut m = SharedMemory::new(SIZE, 8, ModuleMap::linear(3), CrcwPolicy::Arbitrary);
        let refs: Vec<MemRef> = addrs
            .iter()
            .enumerate()
            .map(|(rank, &a)| MemRef::new(RefOrigin::new(0, rank), MemOp::Read(a)))
            .collect();
        let (_, stats) = m.step(&refs).unwrap();
        prop_assert_eq!(stats.per_module.iter().sum::<usize>(), refs.len());
        prop_assert_eq!(stats.refs, refs.len());
    }
}

proptest! {
    /// Priority CRCW always selects the lowest-rank writer; Arbitrary (as
    /// refined here) the highest; and both agree with a host-side fold.
    #[test]
    fn crcw_winners_by_policy(
        writes in prop::collection::vec((0usize..64, any::<i32>()), 1..24)
    ) {
        // Deduplicate ranks (one reference per thread per step).
        let mut seen = std::collections::BTreeMap::new();
        for (rank, v) in writes {
            seen.entry(rank).or_insert(v as Word);
        }
        let refs: Vec<MemRef> = seen
            .iter()
            .map(|(&rank, &v)| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(9, v)))
            .collect();

        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Priority);
        m.step(&refs).unwrap();
        prop_assert_eq!(m.peek(9).unwrap(), *seen.values().next().unwrap());

        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.step(&refs).unwrap();
        prop_assert_eq!(m.peek(9).unwrap(), *seen.values().last().unwrap());
    }

    /// Common CRCW accepts agreeing writers and rejects any disagreement.
    #[test]
    fn common_policy_agreement(
        n in 1usize..16,
        v: i32,
        disagree in proptest::bool::ANY,
    ) {
        let mut refs: Vec<MemRef> = (0..n)
            .map(|rank| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(3, v as Word)))
            .collect();
        if disagree {
            refs.push(MemRef::new(
                RefOrigin::new(0, n),
                MemOp::Write(3, v as Word ^ 1),
            ));
        }
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Common);
        let r = m.step(&refs);
        if disagree {
            prop_assert!(r.is_err());
        } else {
            prop_assert!(r.is_ok());
            prop_assert_eq!(m.peek(3).unwrap(), v as Word);
        }
    }

    /// A step is atomic on fault: no partial writes survive a failed step.
    #[test]
    fn failed_step_leaves_memory_untouched(
        good in prop::collection::vec((0usize..32, any::<i32>()), 1..8)
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        let mut refs: Vec<MemRef> = good
            .iter()
            .enumerate()
            .map(|(rank, &(a, v))| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(a, v as Word)))
            .collect();
        refs.push(MemRef::new(RefOrigin::new(0, 99), MemOp::Read(SIZE + 5)));
        prop_assert!(m.step(&refs).is_err());
        for a in 0..32 {
            prop_assert_eq!(m.peek(a).unwrap(), 0);
        }
    }
}

/// One combining contribution: small magnitudes plus the wrapping
/// extremes (where `Add`'s regrouped chunk sums wrap differently lane by
/// lane but must still agree in total).
fn arb_fold_word() -> impl Strategy<Value = Word> {
    prop_oneof![
        -1000i64..1000,
        prop::sample::select(&[i64::MIN, i64::MIN + 7, -1, 0, 1, i64::MAX - 7, i64::MAX][..]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The chunked [`fold_words`] kernel is bit-exact with the sequential
    /// left fold for every [`MultiKind`] — including the empty slice,
    /// single words, and every non-multiple-of-8 tail. Regrouping is
    /// sound because each kind is associative and commutative with a true
    /// identity; this pins that no kind with weaker structure slips in.
    #[test]
    fn fold_words_matches_sequential_fold(
        seed in arb_fold_word(),
        xs in prop::collection::vec(arb_fold_word(), 0..40),
    ) {
        for &kind in MultiKind::ALL.iter() {
            let expect = xs.iter().fold(seed, |a, &b| kind.combine(a, b));
            prop_assert_eq!(
                fold_words(kind, seed, &xs), expect,
                "{:?} diverged over {} words", kind, xs.len()
            );
            // The identity really is an identity under the kernel too.
            prop_assert_eq!(
                fold_words(kind, kind.identity(), &xs),
                xs.iter().fold(kind.identity(), |a, &b| kind.combine(a, b))
            );
        }
    }

    /// [`fold_progression`] equals [`fold_words`] of the materialized
    /// progression (and hence the sequential fold) for every kind, count
    /// and wrapping stride — zero counts and sub-chunk counts included.
    #[test]
    fn fold_progression_matches_materialized_fold(
        seed in arb_fold_word(),
        vbase in arb_fold_word(),
        vstride in prop_oneof![
            -6i64..6,
            prop::sample::select(&[i64::MIN, -(1i64 << 40), 1i64 << 40, i64::MAX][..]),
        ],
        count in 0usize..40,
    ) {
        let lanes: Vec<Word> = (0..count)
            .map(|k| vbase.wrapping_add(vstride.wrapping_mul(k as Word)))
            .collect();
        for &kind in MultiKind::ALL.iter() {
            let expect = lanes.iter().fold(seed, |a, &b| kind.combine(a, b));
            prop_assert_eq!(
                fold_progression(kind, seed, vbase, vstride, count), expect,
                "{:?} diverged: base {} stride {} count {}", kind, vbase, vstride, count
            );
        }
    }
}

proptest! {
    /// Strided bulk references are bit-equivalent to their per-lane
    /// expansion under every CRCW policy: same faults, same replies (bulk
    /// lanes included), same statistics, same final memory — whether the
    /// bulk step takes its disjoint fast path or the expansion fallback.
    #[test]
    fn bulk_step_matches_per_lane_expansion(
        gens in prop::collection::vec(arb_gen_ref(), 0..8),
        policy_idx in 0usize..POLICIES.len(),
        map_seed in any::<u64>(),
    ) {
        let policy = POLICIES[policy_idx];
        let map = if map_seed.is_multiple_of(2) {
            ModuleMap::Interleaved
        } else {
            ModuleMap::linear(map_seed)
        };
        let (refs, flat) = build_refs(&gens);
        let mut a = SharedMemory::new(SIZE, 4, map, policy);
        let mut b = SharedMemory::new(SIZE, 4, map, policy);
        for addr in 0..SIZE {
            a.poke(addr, (addr as Word).wrapping_mul(5) - 11).unwrap();
            b.poke(addr, (addr as Word).wrapping_mul(5) - 11).unwrap();
        }
        let bulk_result = a.step_bulk(&refs);
        let flat_result = b.step(&flat);
        match (bulk_result, flat_result) {
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (Ok((replies, bulk, s1)), Ok((flat_replies, s2))) => {
                prop_assert_eq!(s1, s2);
                let mut pos = 0usize;
                for (i, r) in refs.iter().enumerate() {
                    match r.op {
                        MemOp::StridedRead { count, .. } => {
                            for k in 0..count as usize {
                                prop_assert_eq!(bulk.lane(i, k), flat_replies[pos + k]);
                            }
                            pos += count as usize;
                        }
                        MemOp::StridedWrite { count, .. } => pos += count as usize,
                        MemOp::BulkMulti { prefix, count, .. } => {
                            if prefix {
                                for k in 0..count as usize {
                                    prop_assert_eq!(bulk.lane(i, k), flat_replies[pos + k]);
                                }
                            }
                            pos += count as usize;
                        }
                        _ => {
                            prop_assert_eq!(replies[i], flat_replies[pos]);
                            pos += 1;
                        }
                    }
                }
            }
            (x, y) => prop_assert!(false, "fault behaviour diverged: {:?} vs {:?}", x, y),
        }
        for addr in 0..SIZE {
            prop_assert_eq!(a.peek(addr).unwrap(), b.peek(addr).unwrap());
        }
    }

    /// Atomicity also under policy faults (not just bounds faults): a
    /// Common-policy conflict anywhere in the step leaves every address
    /// untouched.
    #[test]
    fn common_conflict_is_atomic(
        good in prop::collection::vec((0usize..32, any::<i32>()), 1..8),
        conflict_addr in 40usize..48,
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Common);
        let mut refs: Vec<MemRef> = good
            .iter()
            .enumerate()
            .map(|(rank, &(a, v))| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(a, v as Word)))
            .collect();
        // Deduplicate addresses so the good writes themselves agree.
        let mut seen = std::collections::BTreeSet::new();
        refs.retain(|r| seen.insert(r.op.addr()));
        let base = refs.len();
        refs.push(MemRef::new(RefOrigin::new(0, base), MemOp::Write(conflict_addr, 1)));
        refs.push(MemRef::new(RefOrigin::new(0, base + 1), MemOp::Write(conflict_addr, 2)));
        prop_assert!(m.step(&refs).is_err());
        for a in 0..SIZE {
            prop_assert_eq!(m.peek(a).unwrap(), 0, "address {} mutated by failed step", a);
        }
    }
}

/// Splits `total` lanes into the run lengths a lane mask would produce
/// from the given cut points (deduplicated, sorted, clamped).
fn runs_from_cuts(total: usize, cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (total + 1)).collect();
    points.push(0);
    points.push(total);
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| (w[0], w[1] - w[0]))
        .collect()
}

proptest! {
    /// A masked thick multioperation splits into a *rank-ordered chain* of
    /// same-word `BulkMulti` references at mask-run boundaries. The chain
    /// must stay bit-equivalent to the per-lane expansion — replies,
    /// per-step stats, final memory — for every kind, reply mode and CRCW
    /// policy, and must resolve on the closed-form fast path (the whole
    /// point of splitting at run boundaries instead of materializing).
    #[test]
    fn masked_multiop_chain_matches_expansion(
        kind in arb_kind(),
        prefix in any::<bool>(),
        base in 0usize..SIZE,
        total in 1usize..40,
        cuts in prop::collection::vec(0usize..40, 0..6),
        vbase in any::<i32>(),
        vstride in -4i32..5,
        policy_idx in 0usize..POLICIES.len(),
    ) {
        let policy = POLICIES[policy_idx];
        let runs = runs_from_cuts(total, &cuts);
        let lane_val =
            |k: usize| (vbase as Word).wrapping_add((k as Word).wrapping_mul(vstride as Word));
        let chain: Vec<MemRef> = runs
            .iter()
            .map(|&(start, len)| {
                MemRef::new(
                    RefOrigin::new(0, start),
                    MemOp::BulkMulti {
                        kind,
                        prefix,
                        base,
                        astride: 0,
                        count: len as u32,
                        vbase: lane_val(start),
                        vstride: vstride as Word,
                    },
                )
            })
            .collect();
        let flat: Vec<MemRef> = (0..total)
            .map(|k| {
                MemRef::new(
                    RefOrigin::new(0, k),
                    if prefix {
                        MemOp::Prefix(kind, base, lane_val(k))
                    } else {
                        MemOp::Multi(kind, base, lane_val(k))
                    },
                )
            })
            .collect();
        let mut a = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, policy);
        let mut b = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, policy);
        for addr in 0..SIZE {
            a.poke(addr, (addr as Word).wrapping_mul(3) + 2).unwrap();
            b.poke(addr, (addr as Word).wrapping_mul(3) + 2).unwrap();
        }
        let (_, bulk, s1) = a.step_bulk(&chain).unwrap();
        let (flat_replies, s2) = b.step(&flat).unwrap();
        prop_assert_eq!(s1, s2, "per-step stats diverged");
        prop_assert_eq!(
            a.bulk_stats().expanded, 0,
            "rank-ordered chain fell off the closed-form path"
        );
        prop_assert_eq!(a.bulk_stats().fast, chain.len() as u64);
        if prefix {
            for (i, &(start, len)) in runs.iter().enumerate() {
                for k in 0..len {
                    prop_assert_eq!(bulk.lane(i, k), flat_replies[start + k]);
                }
            }
        }
        for addr in 0..SIZE {
            prop_assert_eq!(a.peek(addr).unwrap(), b.peek(addr).unwrap());
        }
    }

    /// A masked strided reference (one address progression split at
    /// mask-run boundaries into sub-progressions) is bit-equivalent to the
    /// unsplit reference and to the per-lane expansion.
    #[test]
    fn masked_strided_split_matches_unsplit(
        base in 0usize..32,
        stride in 1i64..4,
        total in 1usize..32,
        cuts in prop::collection::vec(0usize..32, 0..5),
        vbase in any::<i32>(),
        vstride in -4i32..5,
    ) {
        // base < 32, stride < 4, total <= 31 keeps every lane address
        // under 32 + 31*3 < SIZE — in bounds by construction.
        let runs = runs_from_cuts(total, &cuts);
        let lane_addr = |k: usize| (base as i64 + k as i64 * stride) as usize;
        let lane_val =
            |k: usize| (vbase as Word).wrapping_add((k as Word).wrapping_mul(vstride as Word));
        let split: Vec<MemRef> = runs
            .iter()
            .map(|&(start, len)| {
                MemRef::new(
                    RefOrigin::new(0, start),
                    MemOp::StridedWrite {
                        base: lane_addr(start),
                        stride,
                        count: len as u32,
                        vbase: lane_val(start),
                        vstride: vstride as Word,
                    },
                )
            })
            .collect();
        let whole = vec![MemRef::new(
            RefOrigin::new(0, 0),
            MemOp::StridedWrite {
                base,
                stride,
                count: total as u32,
                vbase: vbase as Word,
                vstride: vstride as Word,
            },
        )];
        let mut a = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        let mut b = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        a.step_bulk(&split).unwrap();
        b.step_bulk(&whole).unwrap();
        prop_assert_eq!(a.bulk_stats().expanded, 0, "disjoint sub-progressions expanded");
        for addr in 0..SIZE {
            prop_assert_eq!(a.peek(addr).unwrap(), b.peek(addr).unwrap());
        }
    }
}

/// A chain whose references arrive rank-*misordered* must not take the
/// closed-form path (sequential resolution would combine in the wrong
/// order for non-commutative observers — prefix replies), and must still
/// match the per-lane expansion bit-for-bit through the fallback.
#[test]
fn misordered_multiop_chain_expands_and_matches() {
    let chain = vec![
        MemRef::new(
            RefOrigin::new(0, 4),
            MemOp::BulkMulti {
                kind: MultiKind::Add,
                prefix: true,
                base: 9,
                astride: 0,
                count: 3,
                vbase: 100,
                vstride: 1,
            },
        ),
        MemRef::new(
            RefOrigin::new(0, 0),
            MemOp::BulkMulti {
                kind: MultiKind::Add,
                prefix: true,
                base: 9,
                astride: 0,
                count: 4,
                vbase: 5,
                vstride: 2,
            },
        ),
    ];
    let flat = vec![
        MemRef::new(RefOrigin::new(0, 4), MemOp::Prefix(MultiKind::Add, 9, 100)),
        MemRef::new(RefOrigin::new(0, 5), MemOp::Prefix(MultiKind::Add, 9, 101)),
        MemRef::new(RefOrigin::new(0, 6), MemOp::Prefix(MultiKind::Add, 9, 102)),
        MemRef::new(RefOrigin::new(0, 0), MemOp::Prefix(MultiKind::Add, 9, 5)),
        MemRef::new(RefOrigin::new(0, 1), MemOp::Prefix(MultiKind::Add, 9, 7)),
        MemRef::new(RefOrigin::new(0, 2), MemOp::Prefix(MultiKind::Add, 9, 9)),
        MemRef::new(RefOrigin::new(0, 3), MemOp::Prefix(MultiKind::Add, 9, 11)),
    ];
    let mut a = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
    let mut b = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
    a.poke(9, 1000).unwrap();
    b.poke(9, 1000).unwrap();
    let (_, bulk, s1) = a.step_bulk(&chain).unwrap();
    let (flat_replies, s2) = b.step(&flat).unwrap();
    assert_eq!(s1, s2);
    assert_eq!(a.bulk_stats().expanded, 2, "misordered chain must expand");
    for (k, &reply) in flat_replies.iter().enumerate() {
        let (chain_idx, lane) = if k < 3 { (0, k) } else { (1, k - 3) };
        assert_eq!(bulk.lane(chain_idx, lane), reply);
    }
    assert_eq!(a.peek(9).unwrap(), b.peek(9).unwrap());
}
