//! Property tests of the shared-memory step semantics.

use proptest::prelude::*;

use tcf_isa::instr::MultiKind;
use tcf_isa::word::Word;
use tcf_mem::{CrcwPolicy, MemOp, MemRef, ModuleMap, RefOrigin, SharedMemory};

const SIZE: usize = 128;

fn arb_kind() -> impl Strategy<Value = MultiKind> {
    prop::sample::select(&MultiKind::ALL[..])
}

proptest! {
    /// A multiprefix over n participants leaves kind-combination of all
    /// contributions (seeded by the old value) in memory, and participant
    /// prefixes reconstruct the same total.
    #[test]
    fn multiprefix_consistency(
        kind in arb_kind(),
        seed: i32,
        contributions in prop::collection::vec(any::<i32>(), 1..32),
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.poke(0, seed as Word).unwrap();
        let refs: Vec<MemRef> = contributions
            .iter()
            .enumerate()
            .map(|(rank, &c)| {
                MemRef::new(RefOrigin::new(0, rank), MemOp::Prefix(kind, 0, c as Word))
            })
            .collect();
        let (replies, _) = m.step(&refs).unwrap();

        // Sequential reference computation.
        let mut acc = seed as Word;
        let mut expected_prefixes = Vec::new();
        for &c in &contributions {
            expected_prefixes.push(acc);
            acc = kind.combine(acc, c as Word);
        }
        prop_assert_eq!(m.peek(0).unwrap(), acc);
        for (i, exp) in expected_prefixes.into_iter().enumerate() {
            prop_assert_eq!(replies[i], Some(exp));
        }
    }

    /// Multioperations are order-independent: shuffling the reference
    /// vector never changes the resulting memory value.
    #[test]
    fn multiop_order_independent(
        kind in arb_kind(),
        contributions in prop::collection::vec(any::<i32>(), 1..24),
        rotate in 0usize..24,
    ) {
        let build = |order: &[(usize, i32)]| {
            let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
            let refs: Vec<MemRef> = order
                .iter()
                .map(|&(rank, c)| MemRef::new(RefOrigin::new(0, rank), MemOp::Multi(kind, 3, c as Word)))
                .collect();
            m.step(&refs).unwrap();
            m.peek(3).unwrap()
        };
        let ranked: Vec<(usize, i32)> = contributions.iter().copied().enumerate().collect();
        let mut shuffled = ranked.clone();
        let n = shuffled.len().max(1);
        shuffled.rotate_left(rotate % n);
        prop_assert_eq!(build(&ranked), build(&shuffled));
    }

    /// Reads in a mixed step always see the pre-step value regardless of
    /// how many writes target the same address.
    #[test]
    fn reads_unaffected_by_same_step_writes(
        old: i32,
        writes in prop::collection::vec(any::<i32>(), 1..16),
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.poke(7, old as Word).unwrap();
        let mut refs = vec![MemRef::new(RefOrigin::new(0, 0), MemOp::Read(7))];
        for (i, &w) in writes.iter().enumerate() {
            refs.push(MemRef::new(RefOrigin::new(0, i + 1), MemOp::Write(7, w as Word)));
        }
        let (replies, _) = m.step(&refs).unwrap();
        prop_assert_eq!(replies[0], Some(old as Word));
        // Arbitrary policy: highest rank wins.
        prop_assert_eq!(m.peek(7).unwrap(), *writes.last().unwrap() as Word);
    }

    /// The linear hash never sends an address outside the module range and
    /// two different seeds are deterministic.
    #[test]
    fn hash_in_range(seed: u64, addrs in prop::collection::vec(0usize..1_000_000, 1..64), modules in 1usize..64) {
        let map = ModuleMap::linear(seed);
        for &a in &addrs {
            let m1 = map.module_of(a, modules);
            let m2 = map.module_of(a, modules);
            prop_assert!(m1 < modules);
            prop_assert_eq!(m1, m2);
        }
    }

    /// Per-module statistics always sum to the number of references.
    #[test]
    fn stats_sum_to_refs(addrs in prop::collection::vec(0usize..SIZE, 0..64)) {
        let mut m = SharedMemory::new(SIZE, 8, ModuleMap::linear(3), CrcwPolicy::Arbitrary);
        let refs: Vec<MemRef> = addrs
            .iter()
            .enumerate()
            .map(|(rank, &a)| MemRef::new(RefOrigin::new(0, rank), MemOp::Read(a)))
            .collect();
        let (_, stats) = m.step(&refs).unwrap();
        prop_assert_eq!(stats.per_module.iter().sum::<usize>(), refs.len());
        prop_assert_eq!(stats.refs, refs.len());
    }
}

proptest! {
    /// Priority CRCW always selects the lowest-rank writer; Arbitrary (as
    /// refined here) the highest; and both agree with a host-side fold.
    #[test]
    fn crcw_winners_by_policy(
        writes in prop::collection::vec((0usize..64, any::<i32>()), 1..24)
    ) {
        // Deduplicate ranks (one reference per thread per step).
        let mut seen = std::collections::BTreeMap::new();
        for (rank, v) in writes {
            seen.entry(rank).or_insert(v as Word);
        }
        let refs: Vec<MemRef> = seen
            .iter()
            .map(|(&rank, &v)| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(9, v)))
            .collect();

        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Priority);
        m.step(&refs).unwrap();
        prop_assert_eq!(m.peek(9).unwrap(), *seen.values().next().unwrap());

        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        m.step(&refs).unwrap();
        prop_assert_eq!(m.peek(9).unwrap(), *seen.values().last().unwrap());
    }

    /// Common CRCW accepts agreeing writers and rejects any disagreement.
    #[test]
    fn common_policy_agreement(
        n in 1usize..16,
        v: i32,
        disagree in proptest::bool::ANY,
    ) {
        let mut refs: Vec<MemRef> = (0..n)
            .map(|rank| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(3, v as Word)))
            .collect();
        if disagree {
            refs.push(MemRef::new(
                RefOrigin::new(0, n),
                MemOp::Write(3, v as Word ^ 1),
            ));
        }
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Common);
        let r = m.step(&refs);
        if disagree {
            prop_assert!(r.is_err());
        } else {
            prop_assert!(r.is_ok());
            prop_assert_eq!(m.peek(3).unwrap(), v as Word);
        }
    }

    /// A step is atomic on fault: no partial writes survive a failed step.
    #[test]
    fn failed_step_leaves_memory_untouched(
        good in prop::collection::vec((0usize..32, any::<i32>()), 1..8)
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Arbitrary);
        let mut refs: Vec<MemRef> = good
            .iter()
            .enumerate()
            .map(|(rank, &(a, v))| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(a, v as Word)))
            .collect();
        refs.push(MemRef::new(RefOrigin::new(0, 99), MemOp::Read(SIZE + 5)));
        prop_assert!(m.step(&refs).is_err());
        for a in 0..32 {
            prop_assert_eq!(m.peek(a).unwrap(), 0);
        }
    }
}

proptest! {
    /// Atomicity also under policy faults (not just bounds faults): a
    /// Common-policy conflict anywhere in the step leaves every address
    /// untouched.
    #[test]
    fn common_conflict_is_atomic(
        good in prop::collection::vec((0usize..32, any::<i32>()), 1..8),
        conflict_addr in 40usize..48,
    ) {
        let mut m = SharedMemory::new(SIZE, 4, ModuleMap::Interleaved, CrcwPolicy::Common);
        let mut refs: Vec<MemRef> = good
            .iter()
            .enumerate()
            .map(|(rank, &(a, v))| MemRef::new(RefOrigin::new(0, rank), MemOp::Write(a, v as Word)))
            .collect();
        // Deduplicate addresses so the good writes themselves agree.
        let mut seen = std::collections::BTreeSet::new();
        refs.retain(|r| seen.insert(r.op.addr()));
        let base = refs.len();
        refs.push(MemRef::new(RefOrigin::new(0, base), MemOp::Write(conflict_addr, 1)));
        refs.push(MemRef::new(RefOrigin::new(0, base + 1), MemOp::Write(conflict_addr, 2)));
        prop_assert!(m.step(&refs).is_err());
        for a in 0..SIZE {
            prop_assert_eq!(m.peek(a).unwrap(), 0, "address {} mutated by failed step", a);
        }
    }
}
