//! Differential property tests inside the extended model: the Balanced
//! variant (any bound) and both fragment-allocation policies are
//! *scheduling* choices — the paper insists they do not affect
//! programmability (§3.2: "this does not effect the programmability of
//! the model, but just the scheduling of instructions"). So for any
//! well-formed TCF program, Single-instruction/Horizontal,
//! Single-instruction/Vertical and Balanced{b}/Horizontal must leave
//! bit-identical shared memory.
//!
//! One documented exception, found by an earlier version of this very
//! property: a *thick* plain store whose threads write different values
//! to the *same* address. Under Arbitrary CRCW any writer may win; the
//! Single-instruction variant resolves the whole instruction in one
//! memory step (deterministically: highest rank), while Balanced resolves
//! each slice in its own step, so a different — equally legal — winner
//! survives. The generator therefore keeps thick stores per-thread
//! distinct (multioperations, which combine associatively, remain fair
//! game at any address). This is deviation #2 of EXPERIMENTS.md.

use proptest::prelude::*;

use tcf_core::{Allocation, Engine, TcfMachine, Variant};
use tcf_isa::instr::{Instr, MemSpace, MultiKind, Operand};
use tcf_isa::op::AluOp;
use tcf_isa::program::Program;
use tcf_isa::reg::{r, Reg, SpecialReg};
use tcf_isa::word::Word;
use tcf_machine::MachineConfig;

const MEM_WINDOW: usize = 4096;

/// A generator of well-formed TCF program segments: thickness changes,
/// uniform compute, and thick memory traffic through a dedicated
/// tid-derived address register (always in bounds).
#[derive(Debug, Clone)]
enum Segment {
    SetThick(usize),
    UniformAlu(AluOp, u8, u8, Word),
    ThickInit(u8), // rX = tid * 3 + 1  (per-thread data)
    ThickStore {
        base: usize,
        src: u8,
    },
    ThickLoad {
        base: usize,
        dst: u8,
    },
    Multi {
        kind: MultiKind,
        addr: usize,
        src: u8,
    },
    Prefix {
        kind: MultiKind,
        addr: usize,
        dst: u8,
        src: u8,
    },
    UniformStore {
        addr: usize,
        src: u8,
    },
}

fn data_reg() -> impl Strategy<Value = u8> {
    1u8..7
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    let base = 0usize..(MEM_WINDOW - 256);
    prop_oneof![
        (1usize..80).prop_map(Segment::SetThick),
        (
            prop::sample::select(
                &[
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Mul,
                    AluOp::Xor,
                    AluOp::Min,
                    AluOp::Max
                ][..]
            ),
            data_reg(),
            data_reg(),
            -50i64..50
        )
            .prop_map(|(op, rd, ra, imm)| Segment::UniformAlu(op, rd, ra, imm)),
        data_reg().prop_map(Segment::ThickInit),
        (base.clone(), data_reg()).prop_map(|(base, src)| Segment::ThickStore { base, src }),
        (base.clone(), data_reg()).prop_map(|(base, dst)| Segment::ThickLoad { base, dst }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base.clone(),
            data_reg()
        )
            .prop_map(|(kind, addr, src)| Segment::Multi { kind, addr, src }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base.clone(),
            data_reg(),
            data_reg()
        )
            .prop_map(|(kind, addr, dst, src)| Segment::Prefix {
                kind,
                addr,
                dst,
                src
            }),
        (base, data_reg()).prop_map(|(addr, src)| Segment::UniformStore { addr, src }),
    ]
}

fn lower(segments: &[Segment]) -> Program {
    let addr = r(7); // dedicated thick address register
    let mut instrs: Vec<Instr> = Vec::new();
    // Static taint: which data registers currently hold per-thread values.
    // A uniform store of a tainted register would be a same-address
    // concurrent write with divergent values — the documented Balanced
    // exception — so such stores are lowered as per-thread stores instead.
    let mut tainted = [false; 8];
    for seg in segments {
        match *seg {
            Segment::SetThick(k) => instrs.push(Instr::SetThick {
                src: Operand::Imm(k as Word),
            }),
            Segment::UniformAlu(op, rd, ra, imm) => {
                tainted[rd as usize] = tainted[ra as usize];
                instrs.push(Instr::Alu {
                    op,
                    rd: r(rd),
                    ra: r(ra),
                    rb: Operand::Imm(imm),
                });
            }
            Segment::ThickInit(rd) => {
                tainted[rd as usize] = true;
                instrs.push(Instr::Mfs {
                    rd: r(rd),
                    sr: SpecialReg::Tid,
                });
                instrs.push(Instr::Alu {
                    op: AluOp::Mul,
                    rd: r(rd),
                    ra: r(rd),
                    rb: Operand::Imm(3),
                });
                instrs.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: r(rd),
                    ra: r(rd),
                    rb: Operand::Imm(1),
                });
            }
            Segment::ThickStore { base, src } => {
                // addr = (tid & 255) + base  — always in the window.
                instrs.push(Instr::Mfs {
                    rd: addr,
                    sr: SpecialReg::Tid,
                });
                instrs.push(Instr::Alu {
                    op: AluOp::And,
                    rd: addr,
                    ra: addr,
                    rb: Operand::Imm(255),
                });
                instrs.push(Instr::St {
                    rs: r(src),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::ThickLoad { base, dst } => {
                tainted[dst as usize] = true;
                instrs.push(Instr::Mfs {
                    rd: addr,
                    sr: SpecialReg::Tid,
                });
                instrs.push(Instr::Alu {
                    op: AluOp::And,
                    rd: addr,
                    ra: addr,
                    rb: Operand::Imm(255),
                });
                instrs.push(Instr::Ld {
                    rd: r(dst),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::Multi { kind, addr: a, src } => instrs.push(Instr::MultiOp {
                kind,
                base: Reg::ZERO,
                off: a as Word,
                rs: r(src),
            }),
            Segment::Prefix {
                kind,
                addr: a,
                dst,
                src,
            } => {
                tainted[dst as usize] = true;
                instrs.push(Instr::MultiPrefix {
                    kind,
                    rd: r(dst),
                    base: Reg::ZERO,
                    off: a as Word,
                    rs: r(src),
                });
            }
            Segment::UniformStore { addr: a, src } => {
                if tainted[src as usize] {
                    // Per-thread values: store them per-thread to keep the
                    // program CRCW-race-free (see module docs).
                    instrs.push(Instr::Mfs {
                        rd: addr,
                        sr: SpecialReg::Tid,
                    });
                    instrs.push(Instr::Alu {
                        op: AluOp::And,
                        rd: addr,
                        ra: addr,
                        rb: Operand::Imm(255),
                    });
                    instrs.push(Instr::St {
                        rs: r(src),
                        base: addr,
                        off: a as Word,
                        space: MemSpace::Shared,
                    });
                } else {
                    instrs.push(Instr::St {
                        rs: r(src),
                        base: Reg::ZERO,
                        off: a as Word,
                        space: MemSpace::Shared,
                    });
                }
            }
        }
    }
    instrs.push(Instr::Halt);
    Program::new(instrs, Default::default(), vec![]).unwrap()
}

fn run(variant: Variant, alloc: Allocation, program: Program) -> Vec<Word> {
    let mut m = TcfMachine::with_allocation(MachineConfig::small(), variant, program, alloc);
    m.run(200_000).expect("program halts");
    m.peek_range(0, MEM_WINDOW).unwrap()
}

/// Runs under an explicit execution engine and returns everything the
/// parallel engine promises to keep bit-identical: memory, machine
/// statistics, and memory-step statistics.
fn run_engine(engine: Engine, program: Program) -> (Vec<Word>, String) {
    let mut m = TcfMachine::with_allocation(
        MachineConfig::small(),
        Variant::SingleInstruction,
        program,
        Allocation::Horizontal,
    );
    m.set_engine(engine);
    m.run(200_000).expect("program halts");
    let mem = m.peek_range(0, MEM_WINDOW).unwrap();
    let stats = format!("{:?} {:?}", m.stats(), m.mem_stats());
    (mem, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scheduling choices (Balanced bound, allocation) never change the
    /// program's memory effects.
    #[test]
    fn scheduling_is_semantically_transparent(
        segments in prop::collection::vec(arb_segment(), 1..16)
    ) {
        let program = lower(&segments);
        let reference = run(
            Variant::SingleInstruction,
            Allocation::Horizontal,
            program.clone(),
        );
        let vertical = run(
            Variant::SingleInstruction,
            Allocation::Vertical,
            program.clone(),
        );
        prop_assert_eq!(&reference, &vertical, "vertical allocation diverged");
        for bound in [1usize, 3, 8] {
            let balanced = run(
                Variant::Balanced { bound },
                Allocation::Horizontal,
                program.clone(),
            );
            prop_assert_eq!(&reference, &balanced, "Balanced{{{}}} diverged", bound);
        }
    }

    /// The parallel engine is a pure scheduling choice too: for any
    /// well-formed program — multioperations and multiprefixes included,
    /// so both the bulk-combining fast path and its per-lane expansion
    /// are crossed — seq and par:4 leave bit-identical memory and
    /// statistics.
    #[test]
    fn parallel_engine_is_bit_identical(
        segments in prop::collection::vec(arb_segment(), 1..16)
    ) {
        let program = lower(&segments);
        let (seq_mem, seq_stats) = run_engine(Engine::Sequential, program.clone());
        let (par_mem, par_stats) = run_engine(Engine::Parallel { workers: 4 }, program);
        prop_assert_eq!(&seq_mem, &par_mem, "par:4 memory diverged");
        prop_assert_eq!(&seq_stats, &par_stats, "par:4 statistics diverged");
    }

    /// Thickness changes preserve flow-wise register state.
    #[test]
    fn thickness_changes_keep_uniform_registers(k1 in 1usize..64, k2 in 1usize..64, v in -1000i64..1000) {
        let program = lower(&[
            Segment::UniformAlu(AluOp::Add, 1, 0, v), // r1 = v
            Segment::SetThick(k1),
            Segment::SetThick(k2),
            Segment::UniformStore { addr: 10, src: 1 },
        ]);
        let mem = run(Variant::SingleInstruction, Allocation::Horizontal, program);
        prop_assert_eq!(mem[10], v);
    }
}

#[test]
fn thickness_preserving_setthick_keeps_lane_state() {
    // SetThick to the *same* thickness still decays compressed registers
    // (the old-thickness pin), which must be observably the identity:
    // per-lane data written before the no-op change reads back unchanged
    // after it.
    let k = 5usize;
    let program = lower(&[
        Segment::SetThick(k),
        Segment::ThickInit(1), // r1 = 3*tid + 1, an affine register
        Segment::SetThick(k),  // thickness-preserving
        Segment::ThickStore { base: 2000, src: 1 },
    ]);
    let mem = run(Variant::SingleInstruction, Allocation::Horizontal, program);
    for t in 0..k {
        assert_eq!(mem[2000 + t], 3 * t as Word + 1, "lane {t}");
    }
}

#[test]
fn fragmented_multiprefix_is_rank_ordered() {
    // A multiprefix over a flow spread across all four groups must still
    // deliver prefixes in tid order — fragmentation must not reorder the
    // combining.
    let program = lower(&[
        Segment::SetThick(61), // awkward size: uneven fragments
        Segment::ThickInit(1), // r1 = 3*tid + 1
        Segment::Prefix {
            kind: MultiKind::Add,
            addr: 500,
            dst: 2,
            src: 1,
        },
        Segment::ThickStore { base: 1000, src: 2 },
    ]);
    let mem = run(Variant::SingleInstruction, Allocation::Horizontal, program);
    let mut acc = 0;
    for t in 0..61 {
        assert_eq!(mem[1000 + t], acc, "prefix of tid {t}");
        acc += 3 * t as Word + 1;
    }
    assert_eq!(mem[500], acc);
}
