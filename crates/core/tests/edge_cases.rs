//! Edge-case tests of the extended-model runtime: NUMA-mode behaviours,
//! fault paths, variant restrictions, and scheduler corners.

use tcf_core::{TcfFault, TcfMachine, Variant};
use tcf_isa::asm::assemble;
use tcf_machine::MachineConfig;

fn machine(variant: Variant, src: &str) -> TcfMachine {
    TcfMachine::new(MachineConfig::small(), variant, assemble(src).unwrap())
}

#[test]
fn numa_shared_access_serializes_but_local_is_cheap() {
    // The same sequential section against shared vs local memory: the
    // NUMA stream blocks on every shared round trip but runs the local
    // block at ~1 access/cycle — why NUMA code should use the local
    // memory.
    let src = |space: &str| {
        format!(
            "main:
                numa 8
                ldi r1, 16
            loop:
                {space} r2, [r0+5]
                sub r1, r1, 1
                bnez r1, loop
                endnuma
                halt
            "
        )
    };
    let mut shared = machine(Variant::SingleInstruction, &src("ld"));
    let s_shared = shared.run(10_000).unwrap();
    let mut local = machine(Variant::SingleInstruction, &src("ldl"));
    let s_local = local.run(10_000).unwrap();
    assert!(
        s_shared.cycles > 2 * s_local.cycles,
        "shared {} vs local {}",
        s_shared.cycles,
        s_local.cycles
    );
}

#[test]
fn endnuma_restores_pram_mode() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            numa 4
            ldi r1, 7
            endnuma
            setthick 8           ; must be legal again after endnuma
            mfs r2, tid
            ldi r3, 100
            add r3, r3, r2
            st r1, [r3+0]
            halt
        ",
    );
    m.run(100).unwrap();
    for t in 0..8 {
        assert_eq!(m.peek(100 + t).unwrap(), 7);
    }
}

#[test]
fn setthick_inside_numa_faults() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            numa 4
            setthick 8
            halt
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::UnsupportedByVariant { .. }));
}

#[test]
fn endnuma_in_pram_mode_faults() {
    let mut m = machine(Variant::SingleInstruction, "main:\n endnuma\n halt\n");
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::NotInNuma));
}

#[test]
fn absurd_thickness_faults() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:\n ldi r1, 1000000000\n setthick r1\n halt\n",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::BadThickness { .. }));
}

#[test]
fn negative_thickness_faults() {
    let mut m = machine(Variant::SingleInstruction, "main:\n setthick -3\n halt\n");
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::BadThickness { requested: -3 }));
}

#[test]
fn non_uniform_thickness_operand_faults() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 4
            mfs r1, tid
            setthick r1          ; per-thread value: not a flow-wise thickness
            halt
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::NonUniformOperand { .. }));
}

#[test]
fn split_thickness_from_register() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            ldi r1, 6
            split (r1 -> child)
            halt
        child:
            mfs r2, tid
            ldi r3, 100
            add r3, r3, r2
            st r2, [r3+0]
            join
        ",
    );
    m.run(100).unwrap();
    for t in 0..6 {
        assert_eq!(m.peek(100 + t).unwrap(), t as i64);
    }
}

#[test]
fn split_zero_thickness_faults() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:\n split (0 -> child)\n halt\nchild:\n join\n",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::BadThickness { requested: 0 }));
}

#[test]
fn join_without_parent_faults() {
    let mut m = machine(Variant::SingleInstruction, "main:\n join\n");
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::StrayJoin));
}

#[test]
fn cso_bunch_formation_fails_on_diverged_siblings() {
    // Odd-ranked unit flows branch past the `numa`, so when an even flow
    // tries to absorb its neighbour the pcs disagree.
    let mut m = machine(
        Variant::ConfigurableSingleOperation,
        "main:
            mfs r1, tid
            mod r2, r1, 2
            bnez r2, out
            numa 2
            endnuma
            halt
        out:
            nop
            halt
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(
        matches!(e.fault, TcfFault::BunchFormation { .. }),
        "unexpected: {e}"
    );
}

#[test]
fn spawn_zero_threads_continues() {
    let mut m = machine(
        Variant::MultiInstruction,
        "main:
            spawn 0, body
            ldi r1, 42
            st r1, [r0+9]
            halt
        body:
            sjoin
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(9).unwrap(), 42);
}

#[test]
fn spawn_negative_count_faults() {
    let mut m = machine(
        Variant::MultiInstruction,
        "main:
            ldi r1, -2
            spawn r1, body
            halt
        body:
            sjoin
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::BadThickness { .. }));
}

#[test]
fn balanced_with_large_bound_equals_single_instruction_steps() {
    let src = "main:
            setthick 32
            mfs r1, tid
            add r2, r1, 1
            ldi r3, 500
            add r3, r3, r1
            st r2, [r3+0]
            halt
        ";
    let mut si = machine(Variant::SingleInstruction, src);
    let s1 = si.run(1000).unwrap();
    let mut bal = machine(Variant::Balanced { bound: 1000 }, src);
    let s2 = bal.run(1000).unwrap();
    assert_eq!(s1.steps, s2.steps);
    for t in 0..32 {
        assert_eq!(bal.peek(500 + t).unwrap(), t as i64 + 1);
    }
}

#[test]
fn spawn_task_works_on_balanced() {
    let program = assemble(
        "main:
            halt
        task:
            mfs r1, tid
            ldi r2, 700
            add r2, r2, r1
            st r1, [r2+0]
            halt
        ",
    )
    .unwrap();
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::Balanced { bound: 2 },
        program,
    );
    m.spawn_task(entry, 7).unwrap();
    m.run(1000).unwrap();
    for t in 0..7 {
        assert_eq!(m.peek(700 + t).unwrap(), t as i64);
    }
}

#[test]
fn step_budget_exhaustion_reported() {
    let mut m = machine(Variant::SingleInstruction, "main:\n jmp main\n");
    let e = m.run(25).unwrap_err();
    assert!(matches!(
        e.fault,
        TcfFault::StepBudgetExhausted { budget: 25 }
    ));
}

#[test]
fn peek_out_of_bounds_is_error() {
    let m = machine(Variant::SingleInstruction, "main:\n halt\n");
    assert!(m.peek(1 << 40).is_err());
}

#[test]
fn thick_sel_per_thread() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 8
            mfs r1, tid
            slt r2, r1, 4        ; threads 0..3 select rt
            ldi r3, 111
            sel r4, r2, r3, 222
            ldi r5, 300
            add r5, r5, r1
            st r4, [r5+0]
            halt
        ",
    );
    m.run(100).unwrap();
    for t in 0..4 {
        assert_eq!(m.peek(300 + t).unwrap(), 111);
    }
    for t in 4..8 {
        assert_eq!(m.peek(300 + t).unwrap(), 222);
    }
}

#[test]
fn trace_records_thick_execution() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 8
            mfs r1, tid
            add r2, r1, 1
            halt
        ",
    );
    m.set_tracing(true);
    m.run(100).unwrap();
    let csv = m.trace().to_csv();
    // Thick instructions appear once per implicit thread.
    assert!(csv.lines().filter(|l| l.contains("compute")).count() >= 16);
    let gantt = m.trace().gantt(0);
    assert!(gantt.contains("flow"));
}

#[test]
fn trace_and_stats_agree_on_issue_slot_accounting() {
    // The trace and MachineStats count the same issue slots: trace busy
    // cycles (compute + memory, not bubbles, not overhead) must equal the
    // stats' slot-occupying issued work, and the total recorded slots must
    // equal issued + bubbles + overhead. Fetches are counted per TCF by
    // the front end and never occupy an issue slot, hence the subtraction.
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 24
            mfs r1, tid
            add r2, r1, 1
            ldi r3, 400
            add r3, r3, r1
            st r2, [r3+0]
            ld r4, [r3+0]
            halt
        ",
    );
    m.set_tracing(true);
    let summary = m.run(1_000).unwrap();
    let s = summary.machine;

    let groups = m.config().groups;
    let trace_busy: u64 = (0..groups).map(|g| m.trace().busy_cycles(g)).sum();
    let trace_total = m.trace().events().len() as u64;
    let slot_issued = s.compute_ops + s.shared_refs + s.local_refs;

    assert_eq!(trace_busy, slot_issued);
    assert_eq!(trace_total, slot_issued + s.bubbles + s.overhead_cycles);
    // And the derived utilizations agree once fetches are excluded on the
    // stats side.
    let trace_util: f64 = trace_busy as f64 / trace_total as f64;
    let stats_util = slot_issued as f64 / (slot_issued + s.bubbles + s.overhead_cycles) as f64;
    assert!((trace_util - stats_util).abs() < 1e-12);
}

#[test]
fn flows_api_exposes_state() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:\n setthick 12\n nop\n halt\n",
    );
    m.step().unwrap();
    m.step().unwrap();
    let ids = m.flow_ids();
    assert_eq!(ids.len(), 1);
    let f = m.flow(ids[0]).unwrap();
    assert_eq!(f.thickness, 12);
    assert_eq!(m.running_thickness(), 12);
    m.run(100).unwrap();
    assert_eq!(m.live_flows(), 0);
}
