//! Integration tests of the extended PRAM-NUMA model across its six
//! variants.

use tcf_core::{TcfFault, TcfMachine, Variant};
use tcf_isa::asm::assemble;
use tcf_isa::word::Word;
use tcf_machine::MachineConfig;

fn small() -> MachineConfig {
    MachineConfig::small() // P = 4, T_p = 16, R = 32
}

fn machine(variant: Variant, src: &str) -> TcfMachine {
    TcfMachine::new(small(), variant, assemble(src).unwrap())
}

/// The paper's flagship example: `#size; c. = a. + b.;` — a thick vector
/// add with no loop and no thread arithmetic.
const VEC_ADD: &str = "main:
    ldi r1, 256          ; size
    setthick r1
    mfs r2, tid
    ldi r3, 1000
    add r4, r3, r2       ; &a[tid]
    ld r5, [r4+0]
    add r6, r4, 1000     ; &b[tid]
    ld r7, [r6+0]
    add r8, r5, r7
    add r9, r4, 2000     ; &c[tid]
    st r8, [r9+0]
    halt
";

fn init_vectors(m: &mut TcfMachine, n: usize) {
    for i in 0..n {
        m.poke(1000 + i, i as Word).unwrap();
        m.poke(2000 + i, 2 * i as Word).unwrap();
    }
}

#[test]
fn single_instruction_thick_vector_add() {
    let mut m = machine(Variant::SingleInstruction, VEC_ADD);
    init_vectors(&mut m, 256);
    let s = m.run(100).unwrap();
    for i in 0..256 {
        assert_eq!(m.peek(3000 + i).unwrap(), 3 * i as Word, "c[{i}]");
    }
    // One instruction per step, 12 instructions: the step count does not
    // depend on the data size (no looping).
    assert_eq!(s.steps, 12);
}

#[test]
fn step_count_is_size_independent_in_single_instruction() {
    let src_small = VEC_ADD.replace("ldi r1, 256", "ldi r1, 16");
    let mut m1 = machine(Variant::SingleInstruction, &src_small);
    init_vectors(&mut m1, 16);
    let s1 = m1.run(100).unwrap();
    let mut m2 = machine(Variant::SingleInstruction, VEC_ADD);
    init_vectors(&mut m2, 256);
    let s2 = m2.run(100).unwrap();
    assert_eq!(s1.steps, s2.steps);
    // Cycles DO grow with size (more operations), just not steps.
    assert!(s2.cycles > s1.cycles);
}

#[test]
fn balanced_variant_same_result_more_steps() {
    let mut si = machine(Variant::SingleInstruction, VEC_ADD);
    let mut bal = machine(Variant::Balanced { bound: 8 }, VEC_ADD);
    init_vectors(&mut si, 256);
    init_vectors(&mut bal, 256);
    let s_si = si.run(1000).unwrap();
    let s_bal = bal.run(1000).unwrap();
    for i in 0..256 {
        assert_eq!(bal.peek(3000 + i).unwrap(), 3 * i as Word);
    }
    // 256 thickness over 4 groups = 64 ops per fragment; bound 8 means 8
    // steps per thick instruction instead of 1.
    assert!(s_bal.steps > s_si.steps);
    assert_eq!(s_bal.steps, 4 + 8 * 8); // 4 flow-wise + 8 thick x 8 slices
}

#[test]
fn uniform_operands_execute_flow_wise() {
    // Thickness 1024, but every instruction has uniform operands: the
    // machine must scalarize them (1 operation each), so the total issued
    // compute work stays tiny.
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 1024
            ldi r1, 5
            add r2, r1, 1
            mul r3, r2, r2
            st r3, [r0+50]
            halt
        ",
    );
    let s = m.run(100).unwrap();
    assert_eq!(m.peek(50).unwrap(), 36);
    assert!(
        s.machine.compute_ops < 20,
        "uniform ops were replicated: {} compute ops",
        s.machine.compute_ops
    );
    assert_eq!(
        s.machine.shared_refs, 1,
        "uniform store must be one reference"
    );
}

#[test]
fn split_join_parallel_statement() {
    // parallel { #4: left; #4: right } — two child flows, implicit join.
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            split (4 -> left), (4 -> right)
            ldi r1, 1
            st r1, [r0+99]       ; parent resumes only after both joins
            halt
        left:
            mfs r2, tid
            ldi r3, 1000
            add r3, r3, r2
            st r2, [r3+0]
            join
        right:
            mfs r2, tid
            ldi r3, 2000
            add r3, r3, r2
            ldi r4, 10
            add r4, r4, r2
            st r4, [r3+0]
            join
        ",
    );
    m.run(100).unwrap();
    for i in 0..4 {
        assert_eq!(m.peek(1000 + i).unwrap(), i as Word);
        assert_eq!(m.peek(2000 + i).unwrap(), 10 + i as Word);
    }
    assert_eq!(m.peek(99).unwrap(), 1);
}

#[test]
fn nested_split_flows() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            split (2 -> outer)
            halt
        outer:
            split (3 -> inner)
            join
        inner:
            madd [r0+40], r2     ; r2 = 0: count participants via thickness
            ldi r5, 1
            madd [r0+41], r5     ; every inner thread adds 1
            join
        ",
    );
    m.run(100).unwrap();
    // One outer flow of thickness 2 spawns one inner flow of thickness 3
    // (flow-wise: the *flow* calls split once, not each thread — the
    // paper's nested-thick-block semantics: T_inner, not T_outer*T_inner).
    assert_eq!(m.peek(41).unwrap(), 3);
}

#[test]
fn numa_mode_in_single_instruction() {
    let with_numa = "main:
            numa 4
            ldi r1, 0
        loop:
            add r1, r1, 1
            slt r2, r1, 20
            bnez r2, loop
            endnuma
            st r1, [r0+100]
            halt
        ";
    let without = with_numa.replace("numa 4", "nop").replace("endnuma", "nop");
    let mut m1 = machine(Variant::SingleInstruction, with_numa);
    let s1 = m1.run(1000).unwrap();
    assert_eq!(m1.peek(100).unwrap(), 20);
    let mut m2 = machine(Variant::SingleInstruction, &without);
    let s2 = m2.run(1000).unwrap();
    assert_eq!(m2.peek(100).unwrap(), 20);
    // NUMA mode runs 4 consecutive instructions per step.
    assert!(
        s1.steps * 2 < s2.steps,
        "numa {} vs plain {} steps",
        s1.steps,
        s2.steps
    );
}

#[test]
fn multiprefix_thick_flow() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 64
            mfs r1, tid
            mpadd r2, [r0+10], r1
            ldi r3, 600
            add r3, r3, r1
            st r2, [r3+0]
            halt
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(10).unwrap(), (0..64).sum::<i64>());
    // Prefixes in tid order: prefix of thread t = sum 0..t.
    let mut expected = 0;
    for t in 0..64 {
        assert_eq!(m.peek(600 + t).unwrap(), expected, "prefix {t}");
        expected += t as Word;
    }
}

#[test]
fn divergent_branch_faults() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 4
            mfs r1, tid
            bnez r1, elsewhere
            halt
        elsewhere:
            halt
        ",
    );
    let e = m.run(10).unwrap_err();
    assert!(matches!(e.fault, TcfFault::DivergentBranch { .. }));
}

#[test]
fn setthick_zero_makes_flow_dormant() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            ldi r1, 1
            st r1, [r0+5]
            setthick 0
            st r1, [r0+6]        ; never executed
            halt
        ",
    );
    let s = m.run(100).unwrap();
    assert_eq!(m.peek(5).unwrap(), 1);
    assert_eq!(m.peek(6).unwrap(), 0);
    assert!(s.steps < 100);
}

#[test]
fn multi_instruction_spawn_join() {
    let mut m = machine(
        Variant::MultiInstruction,
        "main:
            spawn 16, body
            ld r2, [r0+99]
            st r2, [r0+98]       ; copy after all joined
            halt
        body:
            mfs r3, tid
            ldi r4, 100
            add r4, r4, r3
            st r3, [r4+0]
            madd [r0+99], r3
            sjoin
        ",
    );
    m.run(1000).unwrap();
    for i in 0..16 {
        assert_eq!(m.peek(100 + i).unwrap(), i as Word);
    }
    assert_eq!(m.peek(99).unwrap(), 120);
    assert_eq!(m.peek(98).unwrap(), 120, "parent resumed before joins");
}

#[test]
fn multi_instruction_rejects_tcf_control() {
    let mut m = machine(Variant::MultiInstruction, "main:\n setthick 4\n halt\n");
    let e = m.run(10).unwrap_err();
    assert!(matches!(e.fault, TcfFault::UnsupportedByVariant { .. }));
}

#[test]
fn single_operation_is_spmd_esm() {
    // tid is the global thread rank for unit flows, as in the baseline.
    let mut m = machine(
        Variant::SingleOperation,
        "main:
            mfs r1, tid
            ldi r2, 3000
            add r2, r2, r1
            st r1, [r2+0]
            halt
        ",
    );
    let s = m.run(100).unwrap();
    for rank in 0..small().total_threads() {
        assert_eq!(m.peek(3000 + rank).unwrap(), rank as Word);
    }
    assert_eq!(s.steps, 5);
}

#[test]
fn single_operation_rejects_numa_and_setthick() {
    let mut m = machine(Variant::SingleOperation, "main:\n numa 4\n halt\n");
    assert!(matches!(
        m.run(10).unwrap_err().fault,
        TcfFault::UnsupportedByVariant { .. }
    ));
    let mut m = machine(Variant::SingleOperation, "main:\n setthick 2\n halt\n");
    assert!(matches!(
        m.run(10).unwrap_err().fault,
        TcfFault::UnsupportedByVariant { .. }
    ));
}

#[test]
fn configurable_single_operation_bunches() {
    // All 64 unit flows execute `numa 4`: flows 4k lead bunches absorbing
    // 4k+1..4k+3; each bunch runs the sequential loop 4 instructions per
    // step, then dissolves with shared state.
    let mut m = machine(
        Variant::ConfigurableSingleOperation,
        "main:
            numa 4
            mfs r1, fid          ; leader's flow id, captured in the bunch
            endnuma
            mfs r2, tid          ; diverges again after endnuma
            ldi r3, 2000
            add r3, r3, r2
            st r1, [r3+0]
            halt
        ",
    );
    m.run(1000).unwrap();
    for rank in 0..small().total_threads() {
        let leader = (rank / 4) * 4;
        assert_eq!(m.peek(2000 + rank).unwrap(), leader as Word, "rank {rank}");
    }
}

#[test]
fn fixed_thickness_masked_conditional() {
    // The Fixed-thickness variant has no control parallelism: a two-way
    // conditional compiles to two sequential masked passes (paper §4).
    let mut m = machine(
        Variant::FixedThickness { width: 16 },
        "main:
            mfs r1, tid
            slt r2, r1, 8
            ldi r3, 500
            add r3, r3, r1
            ldi r4, 7
            stm r2, r4, [r3+0]
            xor r5, r2, 1
            ldi r6, 9
            stm r5, r6, [r3+0]
            halt
        ",
    );
    m.run(100).unwrap();
    for i in 0..8 {
        assert_eq!(m.peek(500 + i).unwrap(), 7);
        assert_eq!(m.peek(508 + i).unwrap(), 9);
    }
}

#[test]
fn fixed_thickness_rejects_thickness_control() {
    for bad in ["setthick 8", "numa 2", "split (2 -> main)"] {
        let src = format!("main:\n {bad}\n halt\n");
        let mut m = machine(Variant::FixedThickness { width: 8 }, &src);
        let e = m.run(10).unwrap_err();
        assert!(
            matches!(e.fault, TcfFault::UnsupportedByVariant { .. }),
            "{bad} should be rejected"
        );
    }
}

#[test]
fn multitasking_tasks_as_flows() {
    let src = "main:
            halt                 ; root does nothing
        task:
            mfs r1, fid
            ldi r2, 700
            add r2, r2, r1
            st r1, [r2+0]
            halt
        ";
    let program = assemble(src).unwrap();
    let entry = program.label("task").unwrap();
    let mut m = TcfMachine::new(small(), Variant::SingleInstruction, program);
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(m.spawn_task(entry, 1).unwrap());
    }
    m.run(100).unwrap();
    for id in ids {
        assert_eq!(m.peek(700 + id as usize).unwrap(), id as Word);
    }
    // 8 tasks + root fit the 16-slot buffer: after the cold loads, no
    // further misses (free task switching).
    let b = &m.buffers()[0];
    assert!(
        b.misses as usize <= 9,
        "unexpected thrashing: {} misses",
        b.misses
    );
}

#[test]
fn buffer_overflow_costs_overhead() {
    // More tasks than buffer slots: activations thrash and overhead
    // cycles appear.
    let src = "main:
            halt
        task:
            ldi r1, 40
        loop:
            sub r1, r1, 1
            bnez r1, loop
            halt
        ";
    let program = assemble(src).unwrap();
    let entry = program.label("task").unwrap();
    let mut config = small();
    config.tcf_buffer_slots = 2;
    let mut m = TcfMachine::new(config.clone(), Variant::SingleInstruction, program.clone());
    for _ in 0..12 {
        m.spawn_task(entry, 1).unwrap();
    }
    let s_small_buf = m.run(10_000).unwrap();

    let mut config2 = small();
    config2.tcf_buffer_slots = 64;
    let mut m2 = TcfMachine::with_allocation(
        config2,
        Variant::SingleInstruction,
        program,
        tcf_core::Allocation::Horizontal,
    );
    for _ in 0..12 {
        m2.spawn_task(entry, 1).unwrap();
    }
    let s_big_buf = m2.run(10_000).unwrap();

    assert!(
        s_small_buf.machine.overhead_cycles > 10 * s_big_buf.machine.overhead_cycles.max(1),
        "no thrashing knee: {} vs {}",
        s_small_buf.machine.overhead_cycles,
        s_big_buf.machine.overhead_cycles
    );
}

#[test]
fn horizontal_allocation_beats_vertical_on_thick_flows() {
    let src = VEC_ADD;
    let mut h = TcfMachine::with_allocation(
        small(),
        Variant::SingleInstruction,
        assemble(src).unwrap(),
        tcf_core::Allocation::Horizontal,
    );
    let mut v = TcfMachine::with_allocation(
        small(),
        Variant::SingleInstruction,
        assemble(src).unwrap(),
        tcf_core::Allocation::Vertical,
    );
    init_vectors(&mut h, 256);
    init_vectors(&mut v, 256);
    let sh = h.run(1000).unwrap();
    let sv = v.run(1000).unwrap();
    for i in 0..256 {
        assert_eq!(h.peek(3000 + i).unwrap(), 3 * i as Word);
        assert_eq!(v.peek(3000 + i).unwrap(), 3 * i as Word);
    }
    assert!(
        sh.cycles * 2 < sv.cycles,
        "horizontal {} vs vertical {} cycles",
        sh.cycles,
        sv.cycles
    );
}

#[test]
fn flow_wise_call_semantics() {
    // A flow of thickness 8 calls a method ONCE (not 8 times): the callee
    // runs with the caller's thickness, and one ret returns the whole
    // flow.
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 8
            call work
            ldi r1, 1
            st r1, [r0+90]
            halt
        work:
            mfs r2, tid
            ldi r3, 800
            add r3, r3, r2
            st r2, [r3+0]
            ldi r4, 1
            madd [r0+91], r4     ; counts CALLS x thickness contributions
            ret
        ",
    );
    let s = m.run(100).unwrap();
    for i in 0..8 {
        assert_eq!(m.peek(800 + i).unwrap(), i as Word);
    }
    // 8 contributions because the *flow* called once with 8 threads; a
    // thread-wise call model would have been 8 calls x 8 threads.
    assert_eq!(m.peek(91).unwrap(), 8);
    assert_eq!(m.peek(90).unwrap(), 1);
    // call + ret are flow-wise: 2 steps, not 2 x thickness.
    assert!(s.steps < 15);
}

#[test]
fn register_cache_overflow_charges_spill_traffic() {
    // A flow materializing several per-thread registers at thickness 256
    // overflows a small cached register file; the same program under an
    // unlimited file spills nothing, and results are identical either way.
    let src = "main:
            setthick 256
            mfs r1, tid
            add r2, r1, r1
            add r3, r2, r1
            mul r4, r3, r2
            ldi r5, 5000
            add r5, r5, r1
            st r4, [r5+0]
            halt
        ";
    let run = |cache: usize| {
        let mut config = small();
        config.reg_cache_words = cache;
        let mut m = TcfMachine::new(config, Variant::SingleInstruction, assemble(src).unwrap());
        let s = m.run(1000).unwrap();
        let out = m.peek_range(5000, 256).unwrap();
        (s, out)
    };
    let (unlimited, out_a) = run(0);
    let (tiny, out_b) = run(16);
    assert_eq!(out_a, out_b, "spill model must be timing-only");
    assert_eq!(unlimited.machine.spill_refs, 0);
    assert!(
        tiny.machine.spill_refs > 500,
        "expected spill traffic: {tiny:?}"
    );
    assert!(tiny.cycles > unlimited.cycles);
}

#[test]
fn deadlock_detected() {
    // A split child halts without joining: the parent waits forever.
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            split (2 -> child)
            halt
        child:
            halt                 ; no join!
        ",
    );
    let e = m.run(100).unwrap_err();
    assert!(matches!(e.fault, TcfFault::Deadlock));
}

#[test]
fn tid_and_thickness_specials() {
    let mut m = machine(
        Variant::SingleInstruction,
        "main:
            setthick 5
            mfs r1, thick
            st r1, [r0+20]       ; uniform: single write of 5
            mfs r2, tid
            ldi r3, 30
            add r3, r3, r2
            st r2, [r3+0]
            halt
        ",
    );
    m.run(100).unwrap();
    assert_eq!(m.peek(20).unwrap(), 5);
    for i in 0..5 {
        assert_eq!(m.peek(30 + i).unwrap(), i as Word);
    }
}
