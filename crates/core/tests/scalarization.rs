//! Property test of the uniform-operand scalarization fast path.
//!
//! A `Uniform` register is an optimization of representation, never of
//! per-step meaning: at every reachable machine state, force-materializing
//! every register into its per-thread form (so the next instruction takes
//! the general thick path, one operation per implicit thread, instead of
//! scalarizing) must not change that step's memory effects. The borrow
//! based operand-select rewrite leans on exactly this equivalence — a
//! `uniform_over` read deciding "scalarize" must never change what the
//! program computes.
//!
//! The property is deliberately *per step at the current thickness*, not
//! whole-run: `Uniform(v)` and `PerThread([v; T])` are only equivalent up
//! to thickness `T`. A later `setthick` to a larger thickness reads `v`
//! from the uniform register at the new lanes but 0 beyond the
//! materialized vector (documented `ThickValue` semantics), so a
//! materialized machine legitimately diverges *across* thickness growth.
//! Stepping a freshly materialized machine exactly once sidesteps that
//! while still driving every instruction down both paths.
//!
//! Plain stores of per-thread-divergent values to one address are kept
//! out of the generator for the same reason as in `differential.rs`: the
//! CRCW winner is schedule-dependent there (the documented deviation #2),
//! and forced materialization turns flow-wise stores into same-value
//! concurrent thick stores, which are winner-independent only when the
//! values agree.

use proptest::prelude::*;

use tcf_core::lanes;
use tcf_core::{affine_alu, Allocation, Engine, Seg, TcfMachine, ThickRegs, ThickValue, Variant};
use tcf_isa::instr::{Instr, MemSpace, MultiKind, Operand};
use tcf_isa::op::AluOp;
use tcf_isa::program::Program;
use tcf_isa::reg::{r, Reg, SpecialReg};
use tcf_isa::word::Word;
use tcf_machine::MachineConfig;

const MEM_WINDOW: usize = 4096;
const MAX_STEPS: u64 = 200_000;

/// Program segments mirroring `differential.rs`'s generator, trimmed to
/// the shapes that exercise the scalarization decision: thickness
/// changes, uniform compute, per-thread data, and both memory styles.
#[derive(Debug, Clone)]
enum Segment {
    SetThick(usize),
    UniformAlu(AluOp, u8, u8, Word),
    ThickInit(u8),
    ThickStore {
        base: usize,
        src: u8,
    },
    ThickLoad {
        base: usize,
        dst: u8,
    },
    Multi {
        kind: MultiKind,
        addr: usize,
        src: u8,
    },
    Prefix {
        kind: MultiKind,
        addr: usize,
        dst: u8,
        src: u8,
    },
    UniformStore {
        addr: usize,
        src: u8,
    },
}

fn data_reg() -> impl Strategy<Value = u8> {
    1u8..7
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    let base = 0usize..(MEM_WINDOW - 256);
    prop_oneof![
        (1usize..48).prop_map(Segment::SetThick),
        (
            prop::sample::select(&[AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor][..]),
            data_reg(),
            data_reg(),
            -50i64..50
        )
            .prop_map(|(op, rd, ra, imm)| Segment::UniformAlu(op, rd, ra, imm)),
        data_reg().prop_map(Segment::ThickInit),
        (base.clone(), data_reg()).prop_map(|(base, src)| Segment::ThickStore { base, src }),
        (base.clone(), data_reg()).prop_map(|(base, dst)| Segment::ThickLoad { base, dst }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base.clone(),
            data_reg()
        )
            .prop_map(|(kind, addr, src)| Segment::Multi { kind, addr, src }),
        (
            prop::sample::select(&MultiKind::ALL[..]),
            base.clone(),
            data_reg(),
            data_reg()
        )
            .prop_map(|(kind, addr, dst, src)| Segment::Prefix {
                kind,
                addr,
                dst,
                src
            }),
        (base, data_reg()).prop_map(|(addr, src)| Segment::UniformStore { addr, src }),
    ]
}

/// Emits `addr_reg = (tid & 255)` — the per-thread address recipe.
fn tid_addr(instrs: &mut Vec<Instr>, addr: Reg) {
    instrs.push(Instr::Mfs {
        rd: addr,
        sr: SpecialReg::Tid,
    });
    instrs.push(Instr::Alu {
        op: AluOp::And,
        rd: addr,
        ra: addr,
        rb: Operand::Imm(255),
    });
}

fn lower(segments: &[Segment]) -> Program {
    let addr = r(7);
    let mut instrs: Vec<Instr> = Vec::new();
    // Taint: registers holding per-thread-divergent values must not be
    // stored flow-wise (see module docs).
    let mut tainted = [false; 8];
    for seg in segments {
        match *seg {
            Segment::SetThick(k) => instrs.push(Instr::SetThick {
                src: Operand::Imm(k as Word),
            }),
            Segment::UniformAlu(op, rd, ra, imm) => {
                tainted[rd as usize] = tainted[ra as usize];
                instrs.push(Instr::Alu {
                    op,
                    rd: r(rd),
                    ra: r(ra),
                    rb: Operand::Imm(imm),
                });
            }
            Segment::ThickInit(rd) => {
                tainted[rd as usize] = true;
                instrs.push(Instr::Mfs {
                    rd: r(rd),
                    sr: SpecialReg::Tid,
                });
                instrs.push(Instr::Alu {
                    op: AluOp::Mul,
                    rd: r(rd),
                    ra: r(rd),
                    rb: Operand::Imm(3),
                });
            }
            Segment::ThickStore { base, src } => {
                tid_addr(&mut instrs, addr);
                instrs.push(Instr::St {
                    rs: r(src),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::ThickLoad { base, dst } => {
                tainted[dst as usize] = true;
                tid_addr(&mut instrs, addr);
                instrs.push(Instr::Ld {
                    rd: r(dst),
                    base: addr,
                    off: base as Word,
                    space: MemSpace::Shared,
                });
            }
            Segment::Multi { kind, addr: a, src } => instrs.push(Instr::MultiOp {
                kind,
                base: Reg::ZERO,
                off: a as Word,
                rs: r(src),
            }),
            Segment::Prefix {
                kind,
                addr: a,
                dst,
                src,
            } => {
                tainted[dst as usize] = true;
                instrs.push(Instr::MultiPrefix {
                    kind,
                    rd: r(dst),
                    base: Reg::ZERO,
                    off: a as Word,
                    rs: r(src),
                });
            }
            Segment::UniformStore { addr: a, src } => {
                if tainted[src as usize] {
                    tid_addr(&mut instrs, addr);
                    instrs.push(Instr::St {
                        rs: r(src),
                        base: addr,
                        off: a as Word,
                        space: MemSpace::Shared,
                    });
                } else {
                    instrs.push(Instr::St {
                        rs: r(src),
                        base: Reg::ZERO,
                        off: a as Word,
                        space: MemSpace::Shared,
                    });
                }
            }
        }
    }
    instrs.push(Instr::Halt);
    Program::new(instrs, Default::default(), vec![]).unwrap()
}

fn machine(program: Program) -> TcfMachine {
    TcfMachine::with_allocation(
        MachineConfig::small(),
        Variant::SingleInstruction,
        program,
        Allocation::Horizontal,
    )
}

/// Steps `m` `k` times (the program must not halt before that).
fn step_n(m: &mut TcfMachine, k: u64) {
    for _ in 0..k {
        assert!(m.step().expect("prefix faulted"), "halted inside prefix");
    }
}

/// Memory-effect comparison of step `k`: the scalarized step against the
/// same step with all registers force-materialized first. Deterministic
/// execution makes the two machines' states identical after the shared
/// `k`-step prefix, so any divergence is the scalarization decision's.
fn check_step(program: &Program, k: u64) -> Result<(), String> {
    let mut fast = machine(program.clone());
    step_n(&mut fast, k);
    let mut general = machine(program.clone());
    step_n(&mut general, k);
    general.materialize_all_registers();
    let a = fast.step().expect("scalarized step faulted");
    let b = general.step().expect("materialized step faulted");
    if a != b {
        return Err(format!("halt status diverged at step {k}: {a} vs {b}"));
    }
    let ma = fast.peek_range(0, MEM_WINDOW).unwrap();
    let mb = general.peek_range(0, MEM_WINDOW).unwrap();
    for (addr, (x, y)) in ma.iter().zip(&mb).enumerate() {
        if x != y {
            return Err(format!(
                "step {k} diverged at mem[{addr}]: scalarized={x} materialized={y}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform-register scalarization never changes a step's memory
    /// effects.
    #[test]
    fn scalarization_is_semantically_transparent(
        segments in prop::collection::vec(arb_segment(), 1..12)
    ) {
        let program = lower(&segments);
        // Count the program's steps with one plain run.
        let mut probe = machine(program.clone());
        let mut steps = 0u64;
        while probe.step().expect("program halts") {
            steps += 1;
            prop_assert!(steps < MAX_STEPS, "program did not halt");
        }
        for k in 0..=steps {
            if let Err(e) = check_step(&program, k) {
                return Err(TestCaseError::fail(format!("{e}\nprogram:\n{program}")));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Affine / segment arithmetic against the materialized-lane reference
// ---------------------------------------------------------------------------

/// A compressed thick value: uniform, affine, or a short segment run.
/// Strides and bases mix small magnitudes (where comparison folding is in
/// exact range and must engage) with near-extreme ones (where the
/// `progression_exact` guard must either refuse or still match per-lane
/// wrapping exactly).
fn arb_compressed() -> impl Strategy<Value = ThickValue> {
    let word = prop_oneof![
        -1000i64..1000,
        prop::sample::select(&[i64::MIN, i64::MIN + 7, -1, 0, 1, i64::MAX - 7, i64::MAX][..]),
    ];
    let stride = prop_oneof![
        -6i64..6,
        prop::sample::select(&[i64::MIN, -(1i64 << 40), 1i64 << 40, i64::MAX][..]),
    ];
    prop_oneof![
        word.clone().prop_map(ThickValue::Uniform),
        (word.clone(), stride.clone())
            .prop_map(|(base, stride)| ThickValue::Affine { base, stride }),
        prop::collection::vec((1u32..9, word, stride), 1..4).prop_map(|segs| {
            ThickValue::Segments(
                segs.into_iter()
                    .map(|(len, base, stride)| Seg { len, base, stride })
                    .collect(),
            )
        }),
    ]
}

/// One lane's worth of data: small magnitudes plus the wrapping extremes
/// the SIMD kernels must reproduce bit-for-bit.
fn arb_lane_word() -> impl Strategy<Value = Word> {
    prop_oneof![
        -1000i64..1000,
        prop::sample::select(&[i64::MIN, i64::MIN + 7, -1, 0, 1, i64::MAX - 7, i64::MAX][..]),
    ]
}

/// Every `ThickValue` representation: the compressed forms plus an
/// explicit `PerThread` vector (whose implicit-zero tail beyond the
/// materialized length is part of the `get` contract).
fn arb_thick() -> impl Strategy<Value = ThickValue> {
    prop_oneof![
        arb_compressed(),
        prop::collection::vec(arb_lane_word(), 0..24).prop_map(ThickValue::PerThread),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `affine_over` never lies: whenever a compressed value reports the
    /// lane range `[lo, lo+len)` as a progression, every lane of the
    /// progression equals the per-lane `get` the representation defines.
    #[test]
    fn affine_over_matches_lane_reads(
        v in arb_compressed(),
        lo in 0usize..20,
        len in 0usize..40,
    ) {
        if let Some((base, stride)) = v.affine_over(lo, len) {
            for k in 0..len {
                let expect = v.get(lo + k);
                let got = base.wrapping_add(stride.wrapping_mul(k as Word));
                prop_assert_eq!(
                    got, expect,
                    "affine_over({}, {}) diverged at lane {} of {:?}",
                    lo, len, lo + k, v
                );
            }
        }
    }

    /// The chunked SIMD ALU kernel is bit-exact with the scalar per-lane
    /// reference for EVERY op, at every length — including 0, 1, and the
    /// non-multiple-of-[`lanes::LANE_CHUNK`] tails the remainder loop
    /// covers.
    #[test]
    fn alu_lanes_matches_scalar_reference(
        a in prop::collection::vec(arb_lane_word(), 0..40),
        seed in any::<i64>(),
    ) {
        // Same length as `a`, derived values (mix of agreeing lanes,
        // zeros for the shift/division edge cases, and sign flips).
        let b: Vec<Word> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| match i % 4 {
                0 => x,
                1 => 0,
                2 => x.wrapping_mul(-1),
                _ => x.wrapping_add(seed),
            })
            .collect();
        let mut simd = vec![0; a.len()];
        let mut scalar = vec![0; a.len()];
        for &op in AluOp::ALL.iter() {
            lanes::alu_lanes(op, &a, &b, &mut simd);
            lanes::alu_lanes_scalar_ref(op, &a, &b, &mut scalar);
            prop_assert_eq!(
                &simd, &scalar,
                "{:?} diverged over {} lanes", op, a.len()
            );
        }
    }

    /// The branchless lane-mask `Sel` blend is bit-exact with the scalar
    /// reference, for every mix of zero / non-zero conditions and every
    /// tail length.
    #[test]
    fn select_lanes_matches_scalar_reference(
        lanes_in in prop::collection::vec(
            (arb_lane_word(), arb_lane_word(), arb_lane_word()),
            0..40
        ),
    ) {
        let cond: Vec<Word> = lanes_in.iter().map(|l| l.0 % 3).collect();
        let t: Vec<Word> = lanes_in.iter().map(|l| l.1).collect();
        let f: Vec<Word> = lanes_in.iter().map(|l| l.2).collect();
        let mut simd = vec![0; cond.len()];
        let mut scalar = vec![0; cond.len()];
        lanes::select_lanes(&cond, &t, &f, &mut simd);
        lanes::select_lanes_scalar_ref(&cond, &t, &f, &mut scalar);
        prop_assert_eq!(simd, scalar);
    }

    /// `ThickValue::fill_lanes` gathers exactly what per-lane `get` reads
    /// for every representation — Uniform, Affine, Segments, and
    /// PerThread including its implicit-zero tail.
    #[test]
    fn fill_lanes_matches_lane_reads(
        v in arb_thick(),
        lo in 0usize..20,
        len in 0usize..40,
    ) {
        let mut out = vec![i64::MIN + 3; len]; // poison: every lane must be overwritten
        v.fill_lanes(lo, &mut out);
        for (k, &got) in out.iter().enumerate() {
            prop_assert_eq!(
                got, v.get(lo + k),
                "fill_lanes({}, len {}) diverged at lane {} of {:?}",
                lo, len, lo + k, v
            );
        }
    }

    /// `ThickValue::first_mismatch` agrees with the naive scan for every
    /// representation, both on agreement (None) and at the exact first
    /// disagreeing lane.
    #[test]
    fn first_mismatch_matches_naive_scan(
        v in arb_thick(),
        lo in 0usize..20,
        len in 0usize..40,
        flip in (any::<bool>(), 0usize..40, any::<i64>()),
    ) {
        let mut values = vec![0; len];
        v.fill_lanes(lo, &mut values);
        let (do_flip, at, delta) = flip;
        if do_flip && at < len {
            values[at] = values[at].wrapping_add(delta);
        }
        let expect = (0..len).find(|&k| values[k] != v.get(lo + k));
        prop_assert_eq!(
            v.first_mismatch(lo, &values), expect,
            "first_mismatch({}, {:?}) diverged for {:?}", lo, values, v
        );
    }

    /// `ThickRegs::write_lanes` is exactly one per-lane `write` per lane
    /// in ascending order — representation decisions included — for every
    /// starting representation and at the thickness 0/1 edges.
    #[test]
    fn write_lanes_replays_per_lane_writes(
        start in arb_thick(),
        base in 0usize..12,
        values in prop::collection::vec(arb_lane_word(), 0..24),
        thickness in 0usize..24,
    ) {
        let reg = r(1);
        let mut bulk = ThickRegs::new(8);
        bulk.write_value(reg, start.clone());
        let mut lane_by_lane = ThickRegs::new(8);
        lane_by_lane.write_value(reg, start.clone());

        bulk.write_lanes(reg, base, &values, thickness);
        for (k, &v) in values.iter().enumerate() {
            lane_by_lane.write(reg, base + k, v, thickness);
        }
        prop_assert_eq!(
            bulk.value(reg), lane_by_lane.value(reg),
            "write_lanes(base {}, {:?}, thickness {}) diverged from replay starting at {:?}",
            base, values, thickness, start
        );
    }

    /// Closed-form ALU folding is bit-exact with the per-lane reference
    /// for EVERY ALU op: wherever `affine_alu` answers, each lane of the
    /// produced runs equals `op.eval` of the materialized operand lanes.
    /// (Where it declines — e.g. comparisons whose operands escape exact
    /// range — the engine falls back to per-lane evaluation, so declining
    /// is always safe.)
    #[test]
    fn affine_alu_matches_materialized_lanes(
        a in arb_compressed(),
        b in arb_compressed(),
        lo in 0usize..12,
        len in 1usize..48,
    ) {
        let (ap, bp) = match (a.affine_over(lo, len), b.affine_over(lo, len)) {
            (Some(ap), Some(bp)) => (ap, bp),
            _ => return Ok(()),
        };
        for &op in AluOp::ALL.iter() {
            if let Some(runs) = affine_alu(op, ap, bp, len) {
                let total: usize = runs.runs().iter().map(|s| s.len as usize).sum();
                prop_assert_eq!(total, len, "{:?} runs cover {} of {} lanes", op, total, len);
                for k in 0..len {
                    let expect = op.eval(a.get(lo + k), b.get(lo + k));
                    prop_assert_eq!(
                        runs.get(k), expect,
                        "{:?} diverged at lane {}: operands {:?} / {:?} over [{}, {}+{})",
                        op, lo + k, a, b, lo, lo, len
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Masked execution against the materialized-lane reference
// ---------------------------------------------------------------------------

/// A divergence kernel that drives every stage of the lane-mask pipeline
/// at thickness `t`: an affine lane id (`Mfs Tid`) splits at `cut` into a
/// run-length mask (`Slt` — a piecewise comparison over compressed
/// operands), a masked `Sel` rejoins the branches into a `Segments`
/// value, a further ALU op folds piecewise over the rejoin, a masked
/// store (`StMasked`) writes only the true-branch lanes by splitting the
/// address progression at mask-run boundaries, and a plain store of the
/// segmented value exercises the piecewise strided writeback.
fn masked_program(op: AluOp, t: usize, cut: Word, sel_imm: Word) -> Program {
    let instrs = vec![
        Instr::SetThick {
            src: Operand::Imm(t as Word),
        },
        Instr::Mfs {
            rd: r(1),
            sr: SpecialReg::Tid,
        },
        Instr::Alu {
            op: AluOp::Slt,
            rd: r(2),
            ra: r(1),
            rb: Operand::Imm(cut),
        },
        Instr::Sel {
            rd: r(3),
            cond: r(2),
            rt: r(1),
            rf: Operand::Imm(sel_imm),
        },
        Instr::Alu {
            op,
            rd: r(4),
            ra: r(3),
            rb: Operand::Imm(3),
        },
        Instr::StMasked {
            cond: r(2),
            rs: r(4),
            base: r(1),
            off: 64,
            space: MemSpace::Shared,
        },
        Instr::St {
            rs: r(4),
            base: r(1),
            off: 512,
            space: MemSpace::Shared,
        },
        Instr::Halt,
    ];
    Program::new(instrs, Default::default(), vec![]).unwrap()
}

/// [`check_step`] with an explicit engine on both machines, so the masked
/// compressed path is compared against the per-lane reference under both
/// the sequential and the deterministic parallel engine regardless of the
/// ambient `TCF_ENGINE`.
fn check_step_with(program: &Program, k: u64, engine: Engine) -> Result<(), String> {
    let mut fast = machine(program.clone());
    fast.set_engine(engine);
    step_n(&mut fast, k);
    let mut general = machine(program.clone());
    general.set_engine(engine);
    step_n(&mut general, k);
    general.materialize_all_registers();
    let a = fast.step().expect("masked step faulted");
    let b = general.step().expect("materialized step faulted");
    if a != b {
        return Err(format!("halt status diverged at step {k}: {a} vs {b}"));
    }
    let ma = fast.peek_range(0, MEM_WINDOW).unwrap();
    let mb = general.peek_range(0, MEM_WINDOW).unwrap();
    for (addr, (x, y)) in ma.iter().zip(&mb).enumerate() {
        if x != y {
            return Err(format!(
                "step {k} diverged at mem[{addr}]: masked={x} materialized={y}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Masked/piecewise compressed execution never changes a step's
    /// memory effects: for EVERY ALU op the divergence kernel's steps —
    /// mask classification, masked `Sel`, piecewise ALU over the rejoined
    /// `Segments`, masked and piecewise strided stores — match the same
    /// steps with every register force-materialized into lanes, under
    /// both engines. `cut` sweeps past both ends of the lane range so the
    /// all-set and all-clear mask edges are covered alongside genuine
    /// divergence, including cuts that do not align with slice
    /// boundaries.
    #[test]
    fn masked_execution_matches_materialized_lanes(
        t in 2usize..48,
        cut in -2i64..50,
        sel_imm in arb_lane_word(),
    ) {
        for &op in AluOp::ALL.iter() {
            let program = masked_program(op, t, cut, sel_imm);
            let mut probe = machine(program.clone());
            let mut steps = 0u64;
            while probe.step().expect("program halts") {
                steps += 1;
                prop_assert!(steps < MAX_STEPS, "program did not halt");
            }
            for k in 0..=steps {
                for engine in [Engine::Sequential, Engine::Parallel { workers: 4 }] {
                    if let Err(e) = check_step_with(&program, k, engine) {
                        return Err(TestCaseError::fail(format!(
                            "{op:?} under {engine:?}: {e}\nprogram:\n{program}"
                        )));
                    }
                }
            }
        }
    }
}

/// Masked writebacks that tile a register with complementary mask runs
/// must re-coalesce: once the runs rejoin into one arithmetic
/// progression, the stored representation is a single run again, not a
/// run list that grows with every divergent step. This is the value-level
/// guarantee behind the O(#runs) claim — without re-coalescing, run count
/// (and with it per-step cost) would grow linearly in steps executed.
#[test]
fn rejoin_writebacks_recoalesce_runs() {
    let t = 64usize;
    let reg = r(1);

    // Block-granular rejoin: even 4-lane runs first, then the odd ones,
    // all writing windows of the same progression `2·lane`.
    let mut regs = ThickRegs::new(8);
    regs.write_value(reg, ThickValue::Uniform(0));
    for round in 0..10 {
        for start in (0..t).step_by(8) {
            regs.write_affine(reg, start, 4, (2 * start) as Word + round, 2, t);
        }
        for start in (4..t).step_by(8) {
            regs.write_affine(reg, start, 4, (2 * start) as Word + round, 2, t);
        }
        assert_eq!(
            regs.value(reg).run_count(),
            1,
            "block rejoin failed to re-coalesce in round {round}: {:?}",
            regs.value(reg)
        );
    }

    // Single-lane rejoin: every even lane, then every odd lane, each a
    // one-lane write of `3·lane + round` — the adjacent single-run merge
    // must recover the stride-3 progression.
    let mut regs = ThickRegs::new(8);
    regs.write_value(reg, ThickValue::Uniform(0));
    for round in 0..4 {
        for k in (0..t).step_by(2) {
            regs.write_affine(reg, k, 1, (3 * k) as Word + round, 0, t);
        }
        for k in (1..t).step_by(2) {
            regs.write_affine(reg, k, 1, (3 * k) as Word + round, 0, t);
        }
        assert_eq!(
            regs.value(reg).run_count(),
            1,
            "single-lane rejoin grew the run list in round {round}: {:?}",
            regs.value(reg)
        );
    }
}
