//! The Multi-instruction (XMT-like) asynchronous engine (§3.2, Figure 9).
//!
//! Threads are spawned asynchronously and run from creation to
//! termination; a step is only a scheduling quantum — each group executes
//! up to `T_p` instructions distributed round-robin over its runnable
//! virtual threads, with **no** machine-instruction-level lockstep and no
//! PRAM read-before-write step semantics: memory applies per instruction
//! in execution order. Synchronization happens exclusively at
//! `spawn`/`sjoin` boundaries, which is the variant's coarser granularity
//! the paper points out. A multiprefix degenerates to the XMT `ps`
//! (atomic fetch-and-op) primitive.
//!
//! ## Spawn blocks: compressed thick slices
//!
//! `spawn n` does **not** materialize `n` unit flows. It creates at most
//! one *block flow* per group — lanes `g, g + G, g + 2G, …` of the spawn,
//! sharing one pc, one compressed register file (`tid` is the affine
//! progression `tid_offset + e·tid_stride`), and one flow-table slot — so
//! a `spawn 10^8` costs O(G), not O(n). The quantum scheduler accounts a
//! block's single-instruction execution as `thickness` budget units in
//! closed form; when the remaining budget is smaller than the block, the
//! block splits at the budget boundary in O(#register runs)
//! ([`ThickRegs::slice_lanes`]): the front window executes, the tail
//! keeps the old pc and waits its turn — exactly the starvation order the
//! per-thread round-robin produced. Executing windows are therefore never
//! wider than the quantum, so the per-lane memory loops inside a window
//! stay O(T_p) per quantum regardless of the logical spawn width.
//!
//! Divergence (a non-uniform branch) splits a block into contiguous
//! same-target runs; a block forced onto the per-lane fallback that
//! materializes a compressed register counts the `decay_async_slice`
//! taxonomy reason, as does a block shattering into unit flows on a
//! nested `spawn`.

use tcf_isa::instr::{MemSpace, Operand};
use tcf_isa::reg::SpecialReg;
use tcf_isa::word::{to_addr, Word};
use tcf_machine::{IssueUnit, UnitSeq};
use tcf_obs::FlowEvent;

use crate::decoded::DecodedInst;
use crate::error::{TcfError, TcfFault};
use crate::flow::{Flow, FlowStatus, Fragment};
use crate::machine::TcfMachine;
use crate::thick::{affine_alu, ThickValue};

/// Pooled per-quantum buffers of [`TcfMachine::step_async`], kept on the
/// machine so steady-state quanta allocate nothing — the same discipline
/// as the synchronous engine's `StepBufs` (docs/PERFORMANCE.md).
#[derive(Default)]
pub(crate) struct AsyncBufs {
    units: Vec<Vec<UnitSeq>>,
    numa_units: Vec<Vec<UnitSeq>>,
    /// Threads runnable at the start of the quantum, per group.
    per_group: Vec<Vec<u32>>,
    /// Round-robin worklist of the current pass, and the survivors that
    /// roll into the next pass (swapped instead of reallocated).
    runnable: Vec<u32>,
    still: Vec<u32>,
    scratch: AsyncScratch,
}

/// Per-instruction scratch of the block executor (pooled; a window is at
/// most one quantum wide, so these stay small).
#[derive(Default)]
pub(crate) struct AsyncScratch {
    /// Per-lane results of a fallback slice, replayed via `write_lanes`.
    vals: Vec<Word>,
    /// Contiguous same-outcome runs of a divergent branch.
    runs: Vec<(usize, bool)>,
    /// Flows split off during the instruction, scheduled into the pass
    /// rotation right after their block.
    pending: Vec<u32>,
}

impl TcfMachine {
    /// One asynchronous scheduling quantum. The quantum buffers are taken
    /// out of the machine for the duration (and put back even on a
    /// faulting quantum) so the scheduling loop can borrow them
    /// independently of `self`.
    pub(crate) fn step_async(&mut self) -> Result<(), TcfError> {
        let mut bufs = std::mem::take(&mut self.async_bufs);
        let r = self.step_async_inner(&mut bufs);
        self.async_bufs = bufs;
        r
    }

    fn step_async_inner(&mut self, bufs: &mut AsyncBufs) -> Result<(), TcfError> {
        let ngroups = self.config.groups;
        let quantum = self.config.threads_per_group;
        bufs.units.resize_with(ngroups, Vec::new);
        bufs.numa_units.resize_with(ngroups, Vec::new);
        bufs.per_group.resize_with(ngroups, Vec::new);
        for v in bufs.units.iter_mut().chain(&mut bufs.numa_units) {
            v.clear();
        }
        // Threads runnable at the start of the quantum; spawns become
        // runnable next quantum.
        for v in &mut bufs.per_group {
            v.clear();
        }
        for (id, f) in self.flows.iter() {
            if f.is_running() {
                bufs.per_group[f.home_group()].push(id);
            }
        }

        for g in 0..ngroups {
            let mut budget = quantum;
            bufs.runnable.clear();
            bufs.runnable.extend_from_slice(&bufs.per_group[g]);
            while budget > 0 && !bufs.runnable.is_empty() {
                bufs.still.clear();
                for i in 0..bufs.runnable.len() {
                    let id = bufs.runnable[i];
                    if budget == 0 {
                        bufs.still.push(id);
                        continue;
                    }
                    let width = match self.flows.get(&id) {
                        Some(f) if f.is_running() => f.thickness,
                        _ => continue,
                    };
                    if width > budget {
                        // Budget boundary inside the block: the front
                        // window executes this pass, the tail keeps the
                        // old pc under a fresh (higher) id and is
                        // snapshotted next quantum — the same lanes the
                        // per-thread round-robin would have starved.
                        self.split_async_block(id, budget, g)?;
                    }
                    let lanes = self.exec_async_instr(
                        id,
                        g,
                        &mut bufs.units,
                        &mut bufs.still,
                        &mut bufs.scratch,
                    )?;
                    budget -= lanes.min(budget);
                }
                std::mem::swap(&mut bufs.runnable, &mut bufs.still);
            }
        }

        self.apply_timing(&bufs.units, &bufs.numa_units);
        Ok(())
    }

    /// Splits the running block `id` so its first `keep` lanes stay under
    /// `id` and the rest continue as a fresh flow at the same pc. Costs
    /// O(#register runs), not O(thickness).
    fn split_async_block(&mut self, id: u32, keep: usize, g: usize) -> Result<(), TcfError> {
        let tid = self.alloc_id();
        let mut flow = self.flows.remove(&id).expect("flow exists");
        let tail_len = flow.thickness - keep;
        let mut tail = Flow::new(tid, tail_len, flow.pc, flow.regs.len());
        tail.regs = flow.regs.slice_lanes(keep, tail_len);
        tail.call_stack = flow.call_stack.clone();
        tail.parent = flow.parent;
        tail.tid_offset = flow.tid_offset + keep * flow.tid_stride;
        tail.tid_stride = flow.tid_stride;
        tail.fragments = vec![Fragment::new(g, 0, tail_len)];
        flow.thickness = keep;
        flow.fragments = vec![Fragment::new(g, 0, keep)];
        self.flows.insert(id, flow);
        self.flows.insert(tid, tail);
        self.obs.emit(
            self.steps,
            self.clock,
            FlowEvent::FlowSpawned {
                flow: tid,
                parent: Some(id),
                thickness: tail_len,
            },
        );
        Ok(())
    }

    /// Executes exactly one instruction of flow `id` (all of its lanes) on
    /// group `g`, with direct (asynchronous) memory access. Returns how
    /// many lanes executed — the flow's budget charge. Flows split off by
    /// a divergent branch are appended to `follow` right after `id`, so
    /// the pass rotation matches the per-thread order.
    fn exec_async_instr(
        &mut self,
        id: u32,
        g: usize,
        units: &mut [Vec<UnitSeq>],
        follow: &mut Vec<u32>,
        scratch: &mut AsyncScratch,
    ) -> Result<usize, TcfError> {
        let mut flow = self.flows.remove(&id).expect("flow exists");
        scratch.pending.clear();
        let result = self.async_instr_inner(&mut flow, g, units, scratch);
        let running = flow.is_running();
        self.flows.insert(id, flow);
        let lanes = result?;
        if running {
            follow.push(id);
        }
        follow.append(&mut scratch.pending);
        Ok(lanes)
    }

    fn async_instr_inner(
        &mut self,
        flow: &mut Flow,
        g: usize,
        units: &mut [Vec<UnitSeq>],
        scratch: &mut AsyncScratch,
    ) -> Result<usize, TcfError> {
        if flow.thickness > 1 {
            // A block cannot execute `spawn` collectively (every lane
            // waits on its own children): shatter it into unit flows
            // first. Lane 0 spawns now; the rest re-join the rotation.
            if let Some(DecodedInst::Spawn { .. }) = self.decoded.fetch(flow.pc) {
                self.shatter_async_block(flow, g, scratch);
                self.thick_decay.async_slice += 1;
            }
        }
        if flow.thickness == 1 {
            self.async_unit_instr(flow, g, units).map(|()| 1)
        } else {
            self.async_block_instr(flow, g, units, scratch)
        }
    }

    /// Breaks a block into unit flows at the current pc. The first lane
    /// stays on `flow`; the rest are appended to the pass rotation.
    fn shatter_async_block(&mut self, flow: &mut Flow, g: usize, scratch: &mut AsyncScratch) {
        for e in 1..flow.thickness {
            let sid = self.alloc_id();
            let mut sib = Flow::new(sid, 1, flow.pc, flow.regs.len());
            sib.regs = flow.regs.slice_lanes(e, 1);
            sib.call_stack = flow.call_stack.clone();
            sib.parent = flow.parent;
            sib.tid_offset = flow.tid_offset + e * flow.tid_stride;
            sib.fragments = vec![Fragment::new(g, 0, 1)];
            self.flows.insert(sid, sib);
            self.obs.emit(
                self.steps,
                self.clock,
                FlowEvent::FlowSpawned {
                    flow: sid,
                    parent: flow.parent,
                    thickness: 1,
                },
            );
            scratch.pending.push(sid);
        }
        flow.thickness = 1;
        flow.fragments = vec![Fragment::new(g, 0, 1)];
    }

    /// One instruction of a multi-lane spawn block: compressed
    /// (affine/uniform) execution where the operands allow it, bounded
    /// per-lane fallback otherwise — the window is never wider than the
    /// scheduling quantum, so the fallback is O(T_p), not O(spawn width).
    fn async_block_instr(
        &mut self,
        flow: &mut Flow,
        g: usize,
        units: &mut [Vec<UnitSeq>],
        scratch: &mut AsyncScratch,
    ) -> Result<usize, TcfError> {
        let pc = flow.pc;
        let n = flow.thickness;
        let instr = match self.decoded.fetch(pc) {
            Some(i) => i,
            None => return Err(self.flow_err(flow.id, TcfFault::PcOutOfRange { pc })),
        };
        // One fetch serves the whole block — the shared-pc compression.
        self.stats.fetches += 1;
        self.obs
            .emit(self.steps, self.clock, FlowEvent::Fetch { flow: flow.id });
        self.engine_counters.slices += 1;
        let mut next_pc = pc + 1;
        let mut pushed = false;

        match instr {
            DecodedInst::Alu { op, rd, ra, rb } => {
                let a = flow.regs.value(ra).affine_over(0, n);
                let b = match rb {
                    Operand::Reg(r) => flow.regs.value(r).affine_over(0, n),
                    Operand::Imm(w) => Some((w, 0)),
                };
                let folded = match (a, b) {
                    (Some(a), Some(b)) => affine_alu(op, a, b, n),
                    _ => None,
                };
                if let Some(runs) = folded {
                    let mut off = 0usize;
                    for s in runs.runs() {
                        flow.regs
                            .write_affine(rd, off, s.len as usize, s.base, s.stride, n);
                        off += s.len as usize;
                    }
                    self.engine_counters.compressed_slices += 1;
                } else {
                    scratch.vals.clear();
                    for e in 0..n {
                        let av = flow.regs.read(ra, e);
                        let bv = match rb {
                            Operand::Reg(r) => flow.regs.read(r, e),
                            Operand::Imm(w) => w,
                        };
                        scratch.vals.push(op.eval(av, bv));
                    }
                    self.block_write_lanes(flow, rd, scratch);
                }
            }
            DecodedInst::Ldi { rd, imm } => {
                flow.regs.write_uniform(rd, imm);
                self.engine_counters.compressed_slices += 1;
            }
            DecodedInst::Mfs { rd, sr } => {
                let v = match sr {
                    SpecialReg::Tid => {
                        ThickValue::affine(flow.tid_offset as Word, flow.tid_stride as Word)
                    }
                    SpecialReg::Gid => ThickValue::affine(flow.rank_base as Word, 1),
                    // Every spawned XMT thread is unit-thick, however wide
                    // the block carrying it.
                    SpecialReg::Thickness => ThickValue::Uniform(1),
                    other => ThickValue::Uniform(crate::machine::special_value(
                        flow,
                        0,
                        other,
                        &self.config,
                    )),
                };
                flow.regs.write_value(rd, v);
                self.engine_counters.compressed_slices += 1;
            }
            DecodedInst::Sel { rd, cond, rt, rf } => match flow.regs.value(cond).uniform_over(n) {
                Some(c) => {
                    let v = if c != 0 {
                        flow.regs.value(rt).clone()
                    } else {
                        match rf {
                            Operand::Reg(r) => flow.regs.value(r).clone(),
                            Operand::Imm(w) => ThickValue::Uniform(w),
                        }
                    };
                    flow.regs.write_value(rd, v);
                    self.engine_counters.compressed_slices += 1;
                }
                None => {
                    scratch.vals.clear();
                    for e in 0..n {
                        let v = if flow.regs.read(cond, e) != 0 {
                            flow.regs.read(rt, e)
                        } else {
                            match rf {
                                Operand::Reg(r) => flow.regs.read(r, e),
                                Operand::Imm(w) => w,
                            }
                        };
                        scratch.vals.push(v);
                    }
                    self.block_write_lanes(flow, rd, scratch);
                }
            },
            DecodedInst::Ld {
                rd,
                base,
                off,
                space,
            } => {
                scratch.vals.clear();
                for e in 0..n {
                    let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                    let v = match space {
                        MemSpace::Shared => {
                            units[g].push(
                                IssueUnit::shared_mem(flow.id, e, self.shared.module_of(addr))
                                    .into(),
                            );
                            self.shared
                                .peek(addr)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?
                        }
                        MemSpace::Local => {
                            units[g].push(IssueUnit::local_mem(flow.id, e).into());
                            self.locals[g]
                                .read(addr)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?
                        }
                    };
                    scratch.vals.push(v);
                }
                self.block_write_lanes(flow, rd, scratch);
                pushed = true;
            }
            DecodedInst::St {
                rs,
                base,
                off,
                space,
            }
            | DecodedInst::StMasked {
                rs,
                base,
                off,
                space,
                ..
            } => {
                for e in 0..n {
                    if let DecodedInst::StMasked { cond, .. } = instr {
                        if flow.regs.read(cond, e) == 0 {
                            units[g].push(IssueUnit::compute(flow.id, e).into());
                            continue;
                        }
                    }
                    let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                    let v = flow.regs.read(rs, e);
                    match space {
                        MemSpace::Shared => {
                            units[g].push(
                                IssueUnit::shared_mem(flow.id, e, self.shared.module_of(addr))
                                    .into(),
                            );
                            self.shared
                                .poke(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                        MemSpace::Local => {
                            units[g].push(IssueUnit::local_mem(flow.id, e).into());
                            self.locals[g]
                                .write(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                    }
                }
                self.engine_counters.per_lane_slices += 1;
                pushed = true;
            }
            DecodedInst::MultiOp {
                kind,
                base,
                off,
                rs,
            }
            | DecodedInst::MultiPrefix {
                kind,
                base,
                off,
                rs,
                ..
            } => {
                // XMT `ps`: atomic fetch-and-op, lane by lane in rank
                // order.
                scratch.vals.clear();
                for e in 0..n {
                    let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                    let v = flow.regs.read(rs, e);
                    units[g].push(
                        IssueUnit::shared_mem(flow.id, e, self.shared.module_of(addr)).into(),
                    );
                    let old = self
                        .shared
                        .peek(addr)
                        .map_err(|e| self.flow_err(flow.id, e.into()))?;
                    self.shared
                        .poke(addr, kind.combine(old, v))
                        .map_err(|e| self.flow_err(flow.id, e.into()))?;
                    scratch.vals.push(old);
                }
                if let DecodedInst::MultiPrefix { rd, .. } = instr {
                    self.block_write_lanes(flow, rd, scratch);
                } else {
                    self.engine_counters.per_lane_slices += 1;
                }
                pushed = true;
            }
            DecodedInst::Jmp { target } => next_pc = self.abs(flow.id, target)?,
            DecodedInst::Br { cond, rs, target } => {
                let taken_pc = self.abs(flow.id, target)?;
                match flow.regs.value(rs).uniform_over(n) {
                    Some(v) => {
                        if cond.holds(v) {
                            next_pc = taken_pc;
                        }
                        self.engine_counters.compressed_slices += 1;
                    }
                    None => {
                        // Divergent branch: split the block into
                        // contiguous same-outcome runs. Compressed
                        // condition values yield their runs without
                        // materializing; explicit lanes force the scan.
                        if flow.regs.value(rs).run_count() > 0 {
                            self.engine_counters.mask_hits += 1;
                        } else {
                            self.engine_counters.mask_misses += 1;
                        }
                        scratch.runs.clear();
                        let mut e = 0usize;
                        while e < n {
                            let t0 = cond.holds(flow.regs.read(rs, e));
                            let mut j = e + 1;
                            while j < n && cond.holds(flow.regs.read(rs, j)) == t0 {
                                j += 1;
                            }
                            scratch.runs.push((j - e, t0));
                            e = j;
                        }
                        let (front_len, front_taken) = scratch.runs[0];
                        let mut off = front_len;
                        for k in 1..scratch.runs.len() {
                            let (len, taken) = scratch.runs[k];
                            let sid = self.alloc_id();
                            let mut sib = Flow::new(
                                sid,
                                len,
                                if taken { taken_pc } else { pc + 1 },
                                flow.regs.len(),
                            );
                            sib.regs = flow.regs.slice_lanes(off, len);
                            sib.call_stack = flow.call_stack.clone();
                            sib.parent = flow.parent;
                            sib.tid_offset = flow.tid_offset + off * flow.tid_stride;
                            sib.tid_stride = flow.tid_stride;
                            sib.fragments = vec![Fragment::new(g, 0, len)];
                            self.flows.insert(sid, sib);
                            self.obs.emit(
                                self.steps,
                                self.clock,
                                FlowEvent::FlowSpawned {
                                    flow: sid,
                                    parent: flow.parent,
                                    thickness: len,
                                },
                            );
                            scratch.pending.push(sid);
                            off += len;
                        }
                        flow.thickness = front_len;
                        flow.fragments = vec![Fragment::new(g, 0, front_len)];
                        if front_taken {
                            next_pc = taken_pc;
                        }
                    }
                }
            }
            DecodedInst::Call { target } => {
                let dst = self.abs(flow.id, target)?;
                flow.call_stack.push(pc + 1);
                next_pc = dst;
            }
            DecodedInst::Ret => match flow.call_stack.pop() {
                Some(ra) => next_pc = ra,
                None => return Err(self.flow_err(flow.id, TcfFault::EmptyCallStack)),
            },
            DecodedInst::SJoin => {
                // The whole block joins at once: one bulk notification
                // covers all `n` threads.
                let parent = flow
                    .parent
                    .ok_or_else(|| self.flow_err(flow.id, TcfFault::StrayJoin))?;
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::Join {
                        flow: flow.id,
                        parent: Some(parent),
                    },
                );
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
                self.notify_join_many(parent, n)?;
            }
            DecodedInst::Sync | DecodedInst::Nop => {}
            DecodedInst::Halt => {
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
            }
            DecodedInst::Spawn { .. } => {
                unreachable!("blocks shatter before executing spawn")
            }
            DecodedInst::SetThick { .. }
            | DecodedInst::Numa { .. }
            | DecodedInst::EndNuma
            | DecodedInst::Split { .. }
            | DecodedInst::Join => {
                // Cold fault path: render the source instruction.
                return Err(self.flow_err(
                    flow.id,
                    TcfFault::UnsupportedByVariant {
                        instr: self
                            .program
                            .fetch(pc)
                            .map(|i| i.to_string())
                            .unwrap_or_default(),
                        variant: self.variant.name(),
                    },
                ));
            }
        }

        flow.pc = next_pc;
        if !pushed {
            units[g].push(UnitSeq::ComputeRun {
                flow: flow.id,
                thread0: 0,
                count: n,
            });
        }
        Ok(n)
    }

    /// Replays a fallback slice's per-lane results into `rd`, counting a
    /// materialized compressed register under the `async_slice` decay
    /// reason.
    fn block_write_lanes(
        &mut self,
        flow: &mut Flow,
        rd: tcf_isa::reg::Reg,
        scratch: &mut AsyncScratch,
    ) {
        let n = flow.thickness;
        if flow.regs.write_lanes(rd, 0, &scratch.vals[..n], n) {
            self.thick_decay.async_slice += 1;
        }
        self.engine_counters.per_lane_slices += 1;
    }

    /// Executes exactly one instruction of unit-thick flow `flow` on
    /// group `g` — the scalar path every pre-spawn (and post-shatter)
    /// async flow takes.
    fn async_unit_instr(
        &mut self,
        flow: &mut Flow,
        g: usize,
        units: &mut [Vec<UnitSeq>],
    ) -> Result<(), TcfError> {
        let pc = flow.pc;
        // `Copy` fetch from the pre-decoded program: no per-instruction
        // clone.
        let instr = match self.decoded.fetch(pc) {
            Some(i) => i,
            None => return Err(self.flow_err(flow.id, TcfFault::PcOutOfRange { pc })),
        };
        self.stats.fetches += 1;
        self.obs
            .emit(self.steps, self.clock, FlowEvent::Fetch { flow: flow.id });
        let mut next_pc = pc + 1;
        let mut unit = IssueUnit::compute(flow.id, 0);

        match instr {
            DecodedInst::Alu { op, rd, ra, rb } => {
                let a = flow.regs.read(ra, 0);
                let b = match rb {
                    Operand::Reg(r) => flow.regs.read(r, 0),
                    Operand::Imm(w) => w,
                };
                flow.regs.write_uniform(rd, op.eval(a, b));
            }
            DecodedInst::Ldi { rd, imm } => flow.regs.write_uniform(rd, imm),
            DecodedInst::Mfs { rd, sr } => {
                let v = self.special(flow, 0, sr);
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Sel { rd, cond, rt, rf } => {
                let v = if flow.regs.read(cond, 0) != 0 {
                    flow.regs.read(rt, 0)
                } else {
                    match rf {
                        Operand::Reg(r) => flow.regs.read(r, 0),
                        Operand::Imm(w) => w,
                    }
                };
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Ld {
                rd,
                base,
                off,
                space,
            } => {
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = match space {
                    MemSpace::Shared => {
                        unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                        self.shared
                            .peek(addr)
                            .map_err(|e| self.flow_err(flow.id, e.into()))?
                    }
                    MemSpace::Local => {
                        unit = IssueUnit::local_mem(flow.id, 0);
                        self.locals[g]
                            .read(addr)
                            .map_err(|e| self.flow_err(flow.id, e.into()))?
                    }
                };
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::St {
                rs,
                base,
                off,
                space,
            }
            | DecodedInst::StMasked {
                rs,
                base,
                off,
                space,
                ..
            } => {
                let masked_out = matches!(instr, DecodedInst::StMasked { cond, .. }
                    if flow.regs.read(cond, 0) == 0);
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                if !masked_out {
                    match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                            self.shared
                                .poke(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow.id, 0);
                            self.locals[g]
                                .write(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                    }
                }
            }
            DecodedInst::MultiOp {
                kind,
                base,
                off,
                rs,
            }
            | DecodedInst::MultiPrefix {
                kind,
                base,
                off,
                rs,
                ..
            } => {
                // XMT `ps`: atomic fetch-and-op.
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                let old = self
                    .shared
                    .peek(addr)
                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                self.shared
                    .poke(addr, kind.combine(old, v))
                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                if let DecodedInst::MultiPrefix { rd, .. } = instr {
                    flow.regs.write_uniform(rd, old);
                }
            }
            DecodedInst::Jmp { target } => next_pc = self.abs(flow.id, target)?,
            DecodedInst::Br { cond, rs, target } => {
                if cond.holds(flow.regs.read(rs, 0)) {
                    next_pc = self.abs(flow.id, target)?;
                }
            }
            DecodedInst::Call { target } => {
                let dst = self.abs(flow.id, target)?;
                flow.call_stack.push(pc + 1);
                next_pc = dst;
            }
            DecodedInst::Ret => match flow.call_stack.pop() {
                Some(ra) => next_pc = ra,
                None => return Err(self.flow_err(flow.id, TcfFault::EmptyCallStack)),
            },
            DecodedInst::Spawn { count, target } => {
                let n = match count {
                    Operand::Reg(r) => flow.regs.read(r, 0),
                    Operand::Imm(w) => w,
                };
                if n < 0 {
                    return Err(self.flow_err(flow.id, TcfFault::BadThickness { requested: n }));
                }
                let entry = self.abs(flow.id, target)?;
                let n = n as usize;
                if n == 0 {
                    // Nothing to wait for; fall through.
                } else {
                    // One block flow per group carries the spawn's lanes
                    // `g, g + G, g + 2G, …` — O(G) flows for any `n`,
                    // with `tid` as a compressed affine progression. The
                    // round-robin group mapping matches the per-thread
                    // XMT dynamic scheduling exactly.
                    let groups = self.config.groups;
                    for g2 in 0..groups.min(n) {
                        let len = (n - g2).div_ceil(groups);
                        let cid = self.alloc_id();
                        let mut child = Flow::new(cid, len, entry, flow.regs.len());
                        // Flow-wise inheritance without first cloning the
                        // parent's per-thread lane storage.
                        child.regs = flow.regs.clone_flowwise();
                        child.parent = Some(flow.id);
                        child.tid_offset = g2;
                        child.tid_stride = groups;
                        child.fragments = vec![Fragment::new(g2, 0, len)];
                        self.flows.insert(cid, child);
                        self.obs.emit(
                            self.steps,
                            self.clock,
                            FlowEvent::FlowSpawned {
                                flow: cid,
                                parent: Some(flow.id),
                                thickness: len,
                            },
                        );
                    }
                    flow.status = FlowStatus::WaitingSpawn { pending: n };
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::Split {
                            flow: flow.id,
                            arms: n,
                        },
                    );
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::WaitBegin {
                            flow: flow.id,
                            pending: n,
                        },
                    );
                }
                unit = IssueUnit::overhead(flow.id);
            }
            DecodedInst::SJoin => {
                let parent = flow
                    .parent
                    .ok_or_else(|| self.flow_err(flow.id, TcfFault::StrayJoin))?;
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::Join {
                        flow: flow.id,
                        parent: Some(parent),
                    },
                );
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
                self.notify_join(parent)?;
            }
            DecodedInst::Sync | DecodedInst::Nop => {}
            DecodedInst::Halt => {
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
            }
            DecodedInst::SetThick { .. }
            | DecodedInst::Numa { .. }
            | DecodedInst::EndNuma
            | DecodedInst::Split { .. }
            | DecodedInst::Join => {
                // Cold fault path: render the source instruction.
                return Err(self.flow_err(
                    flow.id,
                    TcfFault::UnsupportedByVariant {
                        instr: self
                            .program
                            .fetch(pc)
                            .map(|i| i.to_string())
                            .unwrap_or_default(),
                        variant: self.variant.name(),
                    },
                ));
            }
        }

        flow.pc = next_pc;
        units[g].push(unit.into());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use tcf_isa::op::AluOp;
    use tcf_isa::reg::{r, SpecialReg};
    use tcf_isa::ProgramBuilder;
    use tcf_machine::MachineConfig;

    use crate::machine::TcfMachine;
    use crate::variant::Variant;

    fn machine(program: tcf_isa::program::Program) -> TcfMachine {
        TcfMachine::new(MachineConfig::small(), Variant::MultiInstruction, program)
    }

    /// A huge spawn never materializes one unit flow per thread: the
    /// scheduler holds one block flow per group plus the windows split
    /// off within the current quantum, and retires exactly `P * T_p`
    /// lanes per step.
    #[test]
    fn huge_spawn_stays_block_compressed() {
        let n = 100_000usize;
        let mut b = ProgramBuilder::new();
        b.spawn(n as tcf_isa::Word, "task");
        b.halt();
        b.label("task");
        b.sjoin();
        let mut m = machine(b.build().unwrap());

        for _ in 0..50 {
            m.step().expect("spawn steps");
        }
        let live = m.live_flows();
        assert!(live <= 16, "spawn materialized {live} flows");

        let s = m.run(10_000_000).expect("spawn drains");
        assert!(s.halted);
        assert_eq!(m.live_flows(), 0);
        // 64 lanes (4 groups x T_p = 16) retire per step, so a full drain
        // of 10^5 spawned threads needs ~1,563 steps — per-step work is
        // bounded by the machine size, not the spawn count.
        assert!(
            (1_500..1_800).contains(&s.steps),
            "unexpected drain length: {} steps",
            s.steps
        );
    }

    /// A windowed per-lane write that lands on a compressed (affine)
    /// register is billed to the `async_slice` decay reason; uniform
    /// promotions stay free, exactly like the synchronous engines.
    #[test]
    fn affine_overwrite_in_a_block_counts_async_slice() {
        let mut b = ProgramBuilder::new();
        b.spawn(64, "task");
        b.halt();
        b.label("task");
        b.mfs(r(1), SpecialReg::Tid); // affine across the block
        b.ldi(r(3), 5);
        b.alu(AluOp::Slt, r(2), r(1), 32); // non-uniform mask (2 runs)
        b.sel(r(1), r(2), r(1), r(3)); // per-lane write onto affine r1
        b.sjoin();
        let mut m = machine(b.build().unwrap());
        let s = m.run(10_000_000).expect("spawn drains");
        assert!(s.halted);
        assert!(
            m.thick_decay().async_slice > 0,
            "affine overwrite was not billed: {:?}",
            m.thick_decay()
        );
        // The decay taxonomy stays exhaustive: nothing else decayed.
        assert_eq!(m.thick_decay().total(), m.thick_decay().async_slice);
    }
}
