//! The Multi-instruction (XMT-like) asynchronous engine (§3.2, Figure 9).
//!
//! Threads are spawned asynchronously and run from creation to
//! termination; a step is only a scheduling quantum — each group executes
//! up to `T_p` instructions distributed round-robin over its runnable
//! virtual threads, with **no** machine-instruction-level lockstep and no
//! PRAM read-before-write step semantics: memory applies per instruction
//! in execution order. Synchronization happens exclusively at
//! `spawn`/`sjoin` boundaries, which is the variant's coarser granularity
//! the paper points out. A multiprefix degenerates to the XMT `ps`
//! (atomic fetch-and-op) primitive.

use tcf_isa::instr::{MemSpace, Operand};
use tcf_isa::word::to_addr;
use tcf_machine::{IssueUnit, UnitSeq};
use tcf_obs::FlowEvent;

use crate::decoded::DecodedInst;
use crate::error::{TcfError, TcfFault};
use crate::flow::{Flow, FlowStatus};
use crate::machine::TcfMachine;

/// Pooled per-quantum buffers of [`TcfMachine::step_async`], kept on the
/// machine so steady-state quanta allocate nothing — the same discipline
/// as the synchronous engine's `StepBufs` (docs/PERFORMANCE.md).
#[derive(Default)]
pub(crate) struct AsyncBufs {
    units: Vec<Vec<UnitSeq>>,
    numa_units: Vec<Vec<UnitSeq>>,
    /// Threads runnable at the start of the quantum, per group.
    per_group: Vec<Vec<u32>>,
    /// Round-robin worklist of the current pass, and the survivors that
    /// roll into the next pass (swapped instead of reallocated).
    runnable: Vec<u32>,
    still: Vec<u32>,
}

impl TcfMachine {
    /// One asynchronous scheduling quantum. The quantum buffers are taken
    /// out of the machine for the duration (and put back even on a
    /// faulting quantum) so the scheduling loop can borrow them
    /// independently of `self`.
    pub(crate) fn step_async(&mut self) -> Result<(), TcfError> {
        let mut bufs = std::mem::take(&mut self.async_bufs);
        let r = self.step_async_inner(&mut bufs);
        self.async_bufs = bufs;
        r
    }

    fn step_async_inner(&mut self, bufs: &mut AsyncBufs) -> Result<(), TcfError> {
        let ngroups = self.config.groups;
        let quantum = self.config.threads_per_group;
        bufs.units.resize_with(ngroups, Vec::new);
        bufs.numa_units.resize_with(ngroups, Vec::new);
        bufs.per_group.resize_with(ngroups, Vec::new);
        for v in bufs.units.iter_mut().chain(&mut bufs.numa_units) {
            v.clear();
        }
        // Threads runnable at the start of the quantum; spawns become
        // runnable next quantum.
        for v in &mut bufs.per_group {
            v.clear();
        }
        for (id, f) in self.flows.iter() {
            if f.is_running() {
                bufs.per_group[f.home_group()].push(id);
            }
        }

        for g in 0..ngroups {
            let mut budget = quantum;
            bufs.runnable.clear();
            bufs.runnable.extend_from_slice(&bufs.per_group[g]);
            while budget > 0 && !bufs.runnable.is_empty() {
                bufs.still.clear();
                for i in 0..bufs.runnable.len() {
                    let id = bufs.runnable[i];
                    if budget == 0 {
                        bufs.still.push(id);
                        continue;
                    }
                    if !self.flows[&id].is_running() {
                        continue;
                    }
                    self.exec_async_instr(id, g, &mut bufs.units)?;
                    budget -= 1;
                    if self.flows[&id].is_running() {
                        bufs.still.push(id);
                    }
                }
                std::mem::swap(&mut bufs.runnable, &mut bufs.still);
            }
        }

        self.apply_timing(&bufs.units, &bufs.numa_units);
        Ok(())
    }

    /// Executes exactly one instruction of virtual thread `id` on group
    /// `g`, with direct (asynchronous) memory access.
    fn exec_async_instr(
        &mut self,
        id: u32,
        g: usize,
        units: &mut [Vec<UnitSeq>],
    ) -> Result<(), TcfError> {
        let mut flow = self.flows.remove(&id).expect("flow exists");
        let result = self.async_instr_inner(&mut flow, g, units);
        self.flows.insert(id, flow);
        result
    }

    fn async_instr_inner(
        &mut self,
        flow: &mut Flow,
        g: usize,
        units: &mut [Vec<UnitSeq>],
    ) -> Result<(), TcfError> {
        let pc = flow.pc;
        // `Copy` fetch from the pre-decoded program: no per-instruction
        // clone.
        let instr = match self.decoded.fetch(pc) {
            Some(i) => i,
            None => return Err(self.flow_err(flow.id, TcfFault::PcOutOfRange { pc })),
        };
        self.stats.fetches += 1;
        self.obs
            .emit(self.steps, self.clock, FlowEvent::Fetch { flow: flow.id });
        let mut next_pc = pc + 1;
        let mut unit = IssueUnit::compute(flow.id, 0);

        match instr {
            DecodedInst::Alu { op, rd, ra, rb } => {
                let a = flow.regs.read(ra, 0);
                let b = match rb {
                    Operand::Reg(r) => flow.regs.read(r, 0),
                    Operand::Imm(w) => w,
                };
                flow.regs.write_uniform(rd, op.eval(a, b));
            }
            DecodedInst::Ldi { rd, imm } => flow.regs.write_uniform(rd, imm),
            DecodedInst::Mfs { rd, sr } => {
                let v = self.special(flow, 0, sr);
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Sel { rd, cond, rt, rf } => {
                let v = if flow.regs.read(cond, 0) != 0 {
                    flow.regs.read(rt, 0)
                } else {
                    match rf {
                        Operand::Reg(r) => flow.regs.read(r, 0),
                        Operand::Imm(w) => w,
                    }
                };
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Ld {
                rd,
                base,
                off,
                space,
            } => {
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = match space {
                    MemSpace::Shared => {
                        unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                        self.shared
                            .peek(addr)
                            .map_err(|e| self.flow_err(flow.id, e.into()))?
                    }
                    MemSpace::Local => {
                        unit = IssueUnit::local_mem(flow.id, 0);
                        self.locals[g]
                            .read(addr)
                            .map_err(|e| self.flow_err(flow.id, e.into()))?
                    }
                };
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::St {
                rs,
                base,
                off,
                space,
            }
            | DecodedInst::StMasked {
                rs,
                base,
                off,
                space,
                ..
            } => {
                let masked_out = matches!(instr, DecodedInst::StMasked { cond, .. }
                    if flow.regs.read(cond, 0) == 0);
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                if !masked_out {
                    match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                            self.shared
                                .poke(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow.id, 0);
                            self.locals[g]
                                .write(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                    }
                }
            }
            DecodedInst::MultiOp {
                kind,
                base,
                off,
                rs,
            }
            | DecodedInst::MultiPrefix {
                kind,
                base,
                off,
                rs,
                ..
            } => {
                // XMT `ps`: atomic fetch-and-op.
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                let old = self
                    .shared
                    .peek(addr)
                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                self.shared
                    .poke(addr, kind.combine(old, v))
                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                if let DecodedInst::MultiPrefix { rd, .. } = instr {
                    flow.regs.write_uniform(rd, old);
                }
            }
            DecodedInst::Jmp { target } => next_pc = self.abs(flow.id, target)?,
            DecodedInst::Br { cond, rs, target } => {
                if cond.holds(flow.regs.read(rs, 0)) {
                    next_pc = self.abs(flow.id, target)?;
                }
            }
            DecodedInst::Call { target } => {
                let dst = self.abs(flow.id, target)?;
                flow.call_stack.push(pc + 1);
                next_pc = dst;
            }
            DecodedInst::Ret => match flow.call_stack.pop() {
                Some(ra) => next_pc = ra,
                None => return Err(self.flow_err(flow.id, TcfFault::EmptyCallStack)),
            },
            DecodedInst::Spawn { count, target } => {
                let n = match count {
                    Operand::Reg(r) => flow.regs.read(r, 0),
                    Operand::Imm(w) => w,
                };
                if n < 0 {
                    return Err(self.flow_err(flow.id, TcfFault::BadThickness { requested: n }));
                }
                let entry = self.abs(flow.id, target)?;
                let n = n as usize;
                if n == 0 {
                    // Nothing to wait for; fall through.
                } else {
                    for i in 0..n {
                        let cid = self.alloc_id();
                        let mut child = Flow::new(cid, 1, entry, flow.regs.len());
                        // Flow-wise inheritance without first cloning the
                        // parent's per-thread lane storage.
                        child.regs = flow.regs.clone_flowwise();
                        child.parent = Some(flow.id);
                        child.tid_offset = i;
                        // Spawned threads are distributed round-robin over
                        // the groups (XMT dynamic scheduling).
                        child.fragments =
                            vec![crate::flow::Fragment::new(i % self.config.groups, 0, 1)];
                        self.flows.insert(cid, child);
                        self.obs.emit(
                            self.steps,
                            self.clock,
                            FlowEvent::FlowSpawned {
                                flow: cid,
                                parent: Some(flow.id),
                                thickness: 1,
                            },
                        );
                    }
                    flow.status = FlowStatus::WaitingSpawn { pending: n };
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::Split {
                            flow: flow.id,
                            arms: n,
                        },
                    );
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::WaitBegin {
                            flow: flow.id,
                            pending: n,
                        },
                    );
                }
                unit = IssueUnit::overhead(flow.id);
            }
            DecodedInst::SJoin => {
                let parent = flow
                    .parent
                    .ok_or_else(|| self.flow_err(flow.id, TcfFault::StrayJoin))?;
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::Join {
                        flow: flow.id,
                        parent: Some(parent),
                    },
                );
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
                self.notify_join(parent)?;
            }
            DecodedInst::Sync | DecodedInst::Nop => {}
            DecodedInst::Halt => {
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
            }
            DecodedInst::SetThick { .. }
            | DecodedInst::Numa { .. }
            | DecodedInst::EndNuma
            | DecodedInst::Split { .. }
            | DecodedInst::Join => {
                // Cold fault path: render the source instruction.
                return Err(self.flow_err(
                    flow.id,
                    TcfFault::UnsupportedByVariant {
                        instr: self
                            .program
                            .fetch(pc)
                            .map(|i| i.to_string())
                            .unwrap_or_default(),
                        variant: self.variant.name(),
                    },
                ));
            }
        }

        flow.pc = next_pc;
        units[g].push(unit.into());
        Ok(())
    }
}
