//! Thick control flows and their fragments.

use serde::{Deserialize, Serialize};

use crate::thick::ThickRegs;

/// Execution mode of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Data-parallel: one instruction = `thickness` identical operations.
    Pram,
    /// Thickness `1/slots`: one step executes `slots` consecutive
    /// instructions of a single sequential stream against local memory.
    Numa {
        /// The bunch length `T` of `#1/T`.
        slots: usize,
    },
}

/// Scheduling status of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowStatus {
    /// Has work.
    Running,
    /// A `split` parent waiting for its children's `join`s.
    WaitingJoin {
        /// Children still outstanding.
        pending: usize,
    },
    /// A `spawn`ing flow waiting at `sjoin` (Multi-instruction variant).
    WaitingSpawn {
        /// Spawned threads still outstanding.
        pending: usize,
    },
    /// Absorbed into a NUMA bunch led by another unit flow (Configurable
    /// single operation variant); resumes with the leader's state at
    /// `endnuma`.
    Absorbed {
        /// The bunch leader's flow id.
        leader: u32,
    },
    /// Finished.
    Halted,
}

/// One slice of a flow's thickness allocated to one processor group
/// (horizontal allocation, §3.3/§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragment {
    /// Executing processor group.
    pub group: usize,
    /// First implicit-thread index covered.
    pub offset: usize,
    /// Number of implicit threads covered.
    pub len: usize,
}

impl Fragment {
    /// A fragment covering `[offset, offset + len)` on `group`.
    pub fn new(group: usize, offset: usize, len: usize) -> Fragment {
        Fragment { group, offset, len }
    }
}

/// One thick control flow.
///
/// A flow owns exactly one program counter and one call stack regardless
/// of thickness — calls are flow-wise (§2.2). Its registers are
/// [`ThickRegs`]: per-implicit-thread values with uniform compression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Flow identifier (unique within a machine run).
    pub id: u32,
    /// Current thickness (implicit threads) in PRAM mode.
    pub thickness: usize,
    /// Execution mode.
    pub mode: ExecMode,
    /// The flow's single program counter.
    pub pc: usize,
    /// The flow's registers.
    pub regs: ThickRegs,
    /// The flow's single call stack.
    pub call_stack: Vec<usize>,
    /// Scheduling status.
    pub status: FlowStatus,
    /// Parent flow to notify at `join` (split children only).
    pub parent: Option<u32>,
    /// Thickness slices per processor group (capacity and work
    /// attribution; execution order is rank-contiguous via `next_op`).
    pub fragments: Vec<Fragment>,
    /// First not-yet-executed operation of the *current* instruction —
    /// the Balanced variant's resume pointer held in the TCF buffer
    /// (§3.3: "a pointer to the next yet not executed operation").
    /// Operations always execute in rank-contiguous order, which keeps
    /// multiprefix rank ordering intact across slices.
    pub next_op: usize,
    /// Base rank for deterministic cross-flow ordering of memory
    /// references: implicit thread `i` has global rank `rank_base + i`.
    pub rank_base: usize,
    /// Offset added to the `tid` special register. 0 for ordinary flows;
    /// the global thread rank for the SPMD unit flows of the
    /// thread-based variants; the spawn index for Multi-instruction
    /// spawned threads.
    pub tid_offset: usize,
    /// Per-lane step of the `tid` special register: lane `e` reads
    /// `tid_offset + e·tid_stride`. 1 for ordinary flows; the group count
    /// for Multi-instruction spawn *blocks*, whose lanes are the spawned
    /// threads `g, g + G, g + 2G, …` scheduled onto one group.
    pub tid_stride: usize,
}

impl Flow {
    /// A fresh PRAM-mode flow.
    pub fn new(id: u32, thickness: usize, pc: usize, nregs: usize) -> Flow {
        Flow {
            id,
            thickness,
            mode: ExecMode::Pram,
            pc,
            regs: ThickRegs::new(nregs),
            call_stack: Vec::new(),
            status: FlowStatus::Running,
            parent: None,
            fragments: Vec::new(),
            next_op: 0,
            rank_base: (id as usize) << 32,
            tid_offset: 0,
            tid_stride: 1,
        }
    }

    /// Whether the flow can execute this step.
    #[inline]
    pub fn is_running(&self) -> bool {
        self.status == FlowStatus::Running
    }

    /// The group owning the flow's first fragment (where flow-wise
    /// instructions execute).
    pub fn home_group(&self) -> usize {
        self.fragments.first().map(|f| f.group).unwrap_or(0)
    }

    /// Whether the current instruction has executed for every implicit
    /// thread.
    pub fn instruction_complete(&self) -> bool {
        self.next_op >= self.thickness
    }

    /// Resets instruction progress (for the next instruction or after a
    /// thickness change).
    pub fn reset_progress(&mut self) {
        self.next_op = 0;
    }

    /// Total implicit threads covered by fragments (must equal
    /// `thickness` in PRAM mode; checked by the scheduler's debug
    /// assertions).
    pub fn fragmented_threads(&self) -> usize {
        self.fragments.iter().map(|f| f.len).sum()
    }
}

/// Dense flow storage indexed by flow id.
///
/// Flow ids are allocated sequentially from 0 and never reused, so a
/// `Vec<Option<Flow>>` slot per id replaces the former
/// `BTreeMap<u32, Flow>`: lookups become an index, and the per-step
/// remove/insert borrow dance of the executors (take a flow out, step it
/// against `&mut` machine, put it back) becomes two O(1) slot swaps
/// instead of tree rebalancing — the dominant per-step overhead of
/// many-flow, small-thickness multitasking workloads. Halted flows keep
/// their slots (exactly as they kept their map entries).
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    slots: Vec<Option<Flow>>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of flows present.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the table holds no flows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `flow` under `id` (its slot index).
    pub fn insert(&mut self, id: u32, flow: Flow) {
        let i = id as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(flow);
    }

    /// Removes and returns the flow under `id`.
    pub fn remove(&mut self, id: &u32) -> Option<Flow> {
        self.slots.get_mut(*id as usize).and_then(Option::take)
    }

    /// The flow under `id`.
    #[inline]
    pub fn get(&self, id: &u32) -> Option<&Flow> {
        self.slots.get(*id as usize).and_then(Option::as_ref)
    }

    /// The flow under `id`, mutably.
    #[inline]
    pub fn get_mut(&mut self, id: &u32) -> Option<&mut Flow> {
        self.slots.get_mut(*id as usize).and_then(Option::as_mut)
    }

    /// Ids of present flows, ascending.
    pub fn keys(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Present flows in id order.
    pub fn values(&self) -> impl Iterator<Item = &Flow> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Present flows in id order, mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Flow> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// `(id, flow)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Flow)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (i as u32, f)))
    }
}

impl std::ops::Index<&u32> for FlowTable {
    type Output = Flow;
    #[inline]
    fn index(&self, id: &u32) -> &Flow {
        self.get(id).expect("flow exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_table_mirrors_map_semantics() {
        let mut t = FlowTable::new();
        assert!(t.is_empty());
        t.insert(2, Flow::new(2, 1, 0, 4));
        t.insert(0, Flow::new(0, 1, 0, 4));
        assert_eq!(t.len(), 2);
        assert_eq!(t.keys().collect::<Vec<_>>(), vec![0, 2]);
        assert!(t.get(&1).is_none());
        assert_eq!(t[&2].id, 2);
        let f = t.remove(&0).unwrap();
        assert_eq!(f.id, 0);
        assert_eq!(t.len(), 1);
        t.insert(0, f);
        assert_eq!(t.iter().map(|(id, _)| id).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn fresh_flow_is_running() {
        let f = Flow::new(3, 8, 2, 32);
        assert!(f.is_running());
        assert_eq!(f.rank_base, 3usize << 32);
        assert_eq!(f.home_group(), 0);
    }

    #[test]
    fn fragment_progress() {
        let mut f = Flow::new(0, 10, 0, 4);
        f.fragments = vec![Fragment::new(0, 0, 6), Fragment::new(1, 6, 4)];
        assert_eq!(f.fragmented_threads(), 10);
        assert!(!f.instruction_complete());
        f.next_op = 10;
        assert!(f.instruction_complete());
        f.reset_progress();
        assert_eq!(f.next_op, 0);
    }

    #[test]
    fn home_group_is_first_fragment() {
        let mut f = Flow::new(0, 4, 0, 4);
        f.fragments = vec![Fragment::new(2, 0, 2), Fragment::new(3, 2, 2)];
        assert_eq!(f.home_group(), 2);
    }
}
