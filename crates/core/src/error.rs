//! Faults of the extended-model runtime.

use core::fmt;

use tcf_mem::MemError;

/// What went wrong inside a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcfFault {
    /// A memory access faulted.
    Mem(MemError),
    /// The program counter left the program without halting.
    PcOutOfRange {
        /// The bad pc.
        pc: usize,
    },
    /// `ret` with an empty call stack.
    EmptyCallStack,
    /// A branch condition differed between implicit threads. The model
    /// requires the whole flow to select exactly one path through a
    /// control statement (§2.2); diverging programs must use `split`.
    DivergentBranch {
        /// Program counter of the branch.
        pc: usize,
    },
    /// An operand that must be flow-wise uniform (thickness, NUMA bunch
    /// length, split arm thickness) was not.
    NonUniformOperand {
        /// What the operand configures.
        what: &'static str,
    },
    /// The instruction is not available under the active variant (e.g.
    /// `setthick` on the Fixed-thickness variant).
    UnsupportedByVariant {
        /// Rendered instruction.
        instr: String,
        /// Active variant name.
        variant: &'static str,
    },
    /// A thickness or bunch length was invalid (zero where disallowed,
    /// negative, or absurdly large).
    BadThickness {
        /// The requested value.
        requested: i64,
    },
    /// NUMA bunch formation failed (Configurable single operation
    /// variant): sibling flows missing, diverged, or in another group.
    BunchFormation {
        /// Description.
        why: String,
    },
    /// `endnuma` executed by a flow that is not in NUMA mode.
    NotInNuma,
    /// `join`/`sjoin` executed by a flow with no parent to notify.
    StrayJoin,
    /// Every remaining flow is blocked on a join that can never complete.
    Deadlock,
    /// The run exceeded the step budget without halting.
    StepBudgetExhausted {
        /// The exhausted budget.
        budget: u64,
    },
    /// Internal invariant violation (a bug in the runtime, not the guest).
    Internal {
        /// Description.
        what: String,
    },
}

impl From<MemError> for TcfFault {
    fn from(e: MemError) -> TcfFault {
        TcfFault::Mem(e)
    }
}

impl fmt::Display for TcfFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcfFault::Mem(e) => write!(f, "memory fault: {e}"),
            TcfFault::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            TcfFault::EmptyCallStack => f.write_str("ret with empty call stack"),
            TcfFault::DivergentBranch { pc } => write!(
                f,
                "branch at pc {pc} diverged between implicit threads (use split)"
            ),
            TcfFault::NonUniformOperand { what } => {
                write!(f, "{what} operand must be uniform across the flow")
            }
            TcfFault::UnsupportedByVariant { instr, variant } => {
                write!(f, "`{instr}` is not supported by the {variant} variant")
            }
            TcfFault::BadThickness { requested } => write!(f, "bad thickness {requested}"),
            TcfFault::BunchFormation { why } => write!(f, "bunch formation failed: {why}"),
            TcfFault::NotInNuma => f.write_str("endnuma outside NUMA mode"),
            TcfFault::StrayJoin => f.write_str("join without a parent flow"),
            TcfFault::Deadlock => f.write_str("all runnable flows blocked on unjoinable children"),
            TcfFault::StepBudgetExhausted { budget } => {
                write!(f, "program did not halt within {budget} steps")
            }
            TcfFault::Internal { what } => write!(f, "internal runtime error: {what}"),
        }
    }
}

impl std::error::Error for TcfFault {}

/// A fault with machine context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcfError {
    /// The fault.
    pub fault: TcfFault,
    /// Machine step at which it occurred.
    pub step: u64,
    /// Flow involved, when known.
    pub flow: Option<u32>,
}

impl fmt::Display for TcfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}", self.step)?;
        if let Some(id) = self.flow {
            write!(f, ", flow {id}")?;
        }
        write!(f, ": {}", self.fault)
    }
}

impl std::error::Error for TcfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let e = TcfError {
            fault: TcfFault::DivergentBranch { pc: 9 },
            step: 4,
            flow: Some(2),
        };
        let s = e.to_string();
        assert!(s.contains("step 4"));
        assert!(s.contains("flow 2"));
        assert!(s.contains("pc 9"));
    }

    #[test]
    fn variants_render() {
        assert!(TcfFault::Deadlock.to_string().contains("blocked"));
        assert!(TcfFault::BadThickness { requested: -1 }
            .to_string()
            .contains("-1"));
    }
}
