//! Pre-decoded programs: the zero-allocation instruction fetch path.
//!
//! [`Program`] stores [`Instr`], whose control-transfer targets are
//! heap-carrying [`Target`] values (and whose `Split` arms live in a
//! `Vec`), so the execution engines used to `clone()` every fetched
//! instruction to release the borrow on the program. That clone sat on
//! the hottest path of the simulator — once per flow per step, plus once
//! per NUMA slot.
//!
//! [`DecodedProgram`] flattens the program once at machine construction:
//! every instruction becomes a `Copy` [`DecodedInst`] with targets as
//! plain instruction indices, and `split` arms move into one shared side
//! table referenced by range. Fetching is an indexed copy of a few words
//! — no allocation, no borrow on the machine.
//!
//! Targets are pre-resolved by [`Program::new`]; a `Target::Label` that
//! somehow survives (e.g. a hand-deserialized program) decodes to the
//! [`DecodedProgram::UNRESOLVED`] sentinel, which the engines turn into
//! the same "unresolved target" fault they raised before.
//!
//! [`Target`]: tcf_isa::instr::Target

use tcf_isa::instr::{BrCond, Instr, MemSpace, MultiKind, Operand, Target};
use tcf_isa::op::AluOp;
use tcf_isa::program::Program;
use tcf_isa::reg::{Reg, SpecialReg};
use tcf_isa::word::Word;

/// One decoded `split` arm: uniform thickness operand plus entry index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DecodedArm {
    pub thickness: Operand,
    pub target: usize,
}

/// A range of arms in the [`DecodedProgram`] side table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ArmsRef {
    start: u32,
    len: u32,
}

impl ArmsRef {
    /// Indices of this instruction's arms in the side table.
    #[inline]
    pub fn indices(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start as usize + self.len as usize)
    }
}

/// A flat, `Copy` mirror of [`Instr`]: targets are instruction indices
/// ([`DecodedProgram::UNRESOLVED`] when a label survived resolution) and
/// `split` arms are a side-table range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DecodedInst {
    Alu {
        op: AluOp,
        rd: Reg,
        ra: Reg,
        rb: Operand,
    },
    Ldi {
        rd: Reg,
        imm: Word,
    },
    Mfs {
        rd: Reg,
        sr: SpecialReg,
    },
    Sel {
        rd: Reg,
        cond: Reg,
        rt: Reg,
        rf: Operand,
    },
    Ld {
        rd: Reg,
        base: Reg,
        off: Word,
        space: MemSpace,
    },
    St {
        rs: Reg,
        base: Reg,
        off: Word,
        space: MemSpace,
    },
    StMasked {
        cond: Reg,
        rs: Reg,
        base: Reg,
        off: Word,
        space: MemSpace,
    },
    MultiOp {
        kind: MultiKind,
        base: Reg,
        off: Word,
        rs: Reg,
    },
    MultiPrefix {
        kind: MultiKind,
        rd: Reg,
        base: Reg,
        off: Word,
        rs: Reg,
    },
    Jmp {
        target: usize,
    },
    Br {
        cond: BrCond,
        rs: Reg,
        target: usize,
    },
    Call {
        target: usize,
    },
    Ret,
    SetThick {
        src: Operand,
    },
    Numa {
        slots: Operand,
    },
    EndNuma,
    Split {
        arms: ArmsRef,
    },
    Join,
    Spawn {
        count: Operand,
        target: usize,
    },
    SJoin,
    Sync,
    Halt,
    Nop,
}

impl DecodedInst {
    /// Mnemonic family name, for diagnostics on paths that no longer hold
    /// the original [`Instr`] (the source instruction is still available
    /// cold via `Program::fetch` where the pc is known).
    pub fn name(self) -> &'static str {
        match self {
            DecodedInst::Alu { .. } => "alu",
            DecodedInst::Ldi { .. } => "ldi",
            DecodedInst::Mfs { .. } => "mfs",
            DecodedInst::Sel { .. } => "sel",
            DecodedInst::Ld { .. } => "ld",
            DecodedInst::St { .. } => "st",
            DecodedInst::StMasked { .. } => "stm",
            DecodedInst::MultiOp { .. } => "multiop",
            DecodedInst::MultiPrefix { .. } => "multiprefix",
            DecodedInst::Jmp { .. } => "jmp",
            DecodedInst::Br { .. } => "br",
            DecodedInst::Call { .. } => "call",
            DecodedInst::Ret => "ret",
            DecodedInst::SetThick { .. } => "setthick",
            DecodedInst::Numa { .. } => "numa",
            DecodedInst::EndNuma => "endnuma",
            DecodedInst::Split { .. } => "split",
            DecodedInst::Join => "join",
            DecodedInst::Spawn { .. } => "spawn",
            DecodedInst::SJoin => "sjoin",
            DecodedInst::Sync => "sync",
            DecodedInst::Halt => "halt",
            DecodedInst::Nop => "nop",
        }
    }
}

/// The decoded form of one [`Program`]: a flat instruction vector plus
/// the shared `split`-arm side table. Built once per machine; immutable
/// afterwards (shared behind an `Arc` alongside the source program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecodedProgram {
    insts: Vec<DecodedInst>,
    arms: Vec<DecodedArm>,
}

impl DecodedProgram {
    /// Sentinel target index for an unresolved label. Far above any valid
    /// program length, so it also faults naturally as a pc if ever jumped
    /// to without the explicit check.
    pub const UNRESOLVED: usize = usize::MAX;

    /// Decodes every instruction of `p`.
    pub fn decode(p: &Program) -> DecodedProgram {
        let mut arms = Vec::new();
        let insts = p.instrs.iter().map(|i| decode_one(i, &mut arms)).collect();
        DecodedProgram { insts, arms }
    }

    /// Fetches the decoded instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<DecodedInst> {
        self.insts.get(pc).copied()
    }

    /// One arm of the side table (see [`DecodedInst::Split`]).
    #[inline]
    pub fn arm(&self, idx: usize) -> DecodedArm {
        self.arms[idx]
    }
}

fn decode_target(t: &Target) -> usize {
    t.abs().unwrap_or(DecodedProgram::UNRESOLVED)
}

fn decode_one(i: &Instr, arms: &mut Vec<DecodedArm>) -> DecodedInst {
    match *i {
        Instr::Alu { op, rd, ra, rb } => DecodedInst::Alu { op, rd, ra, rb },
        Instr::Ldi { rd, imm } => DecodedInst::Ldi { rd, imm },
        Instr::Mfs { rd, sr } => DecodedInst::Mfs { rd, sr },
        Instr::Sel { rd, cond, rt, rf } => DecodedInst::Sel { rd, cond, rt, rf },
        Instr::Ld {
            rd,
            base,
            off,
            space,
        } => DecodedInst::Ld {
            rd,
            base,
            off,
            space,
        },
        Instr::St {
            rs,
            base,
            off,
            space,
        } => DecodedInst::St {
            rs,
            base,
            off,
            space,
        },
        Instr::StMasked {
            cond,
            rs,
            base,
            off,
            space,
        } => DecodedInst::StMasked {
            cond,
            rs,
            base,
            off,
            space,
        },
        Instr::MultiOp {
            kind,
            base,
            off,
            rs,
        } => DecodedInst::MultiOp {
            kind,
            base,
            off,
            rs,
        },
        Instr::MultiPrefix {
            kind,
            rd,
            base,
            off,
            rs,
        } => DecodedInst::MultiPrefix {
            kind,
            rd,
            base,
            off,
            rs,
        },
        Instr::Jmp { ref target } => DecodedInst::Jmp {
            target: decode_target(target),
        },
        Instr::Br {
            cond,
            rs,
            ref target,
        } => DecodedInst::Br {
            cond,
            rs,
            target: decode_target(target),
        },
        Instr::Call { ref target } => DecodedInst::Call {
            target: decode_target(target),
        },
        Instr::Ret => DecodedInst::Ret,
        Instr::SetThick { src } => DecodedInst::SetThick { src },
        Instr::Numa { slots } => DecodedInst::Numa { slots },
        Instr::EndNuma => DecodedInst::EndNuma,
        Instr::Split { arms: ref src_arms } => {
            let start = arms.len() as u32;
            arms.extend(src_arms.iter().map(|a| DecodedArm {
                thickness: a.thickness,
                target: decode_target(&a.target),
            }));
            DecodedInst::Split {
                arms: ArmsRef {
                    start,
                    len: src_arms.len() as u32,
                },
            }
        }
        Instr::Join => DecodedInst::Join,
        Instr::Spawn { count, ref target } => DecodedInst::Spawn {
            count,
            target: decode_target(target),
        },
        Instr::SJoin => DecodedInst::SJoin,
        Instr::Sync => DecodedInst::Sync,
        Instr::Halt => DecodedInst::Halt,
        Instr::Nop => DecodedInst::Nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tcf_isa::instr::SplitArm;
    use tcf_isa::reg::r;

    #[test]
    fn decode_resolves_targets_to_indices() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 0);
        let p = Program::new(
            vec![
                Instr::Nop,
                Instr::Jmp {
                    target: Target::Label("loop".into()),
                },
                Instr::Halt,
            ],
            labels,
            vec![],
        )
        .unwrap();
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.fetch(0), Some(DecodedInst::Nop));
        assert_eq!(d.fetch(1), Some(DecodedInst::Jmp { target: 0 }));
        assert_eq!(d.fetch(2), Some(DecodedInst::Halt));
        assert_eq!(d.fetch(3), None);
    }

    #[test]
    fn decode_moves_split_arms_to_side_table() {
        let mut labels = BTreeMap::new();
        labels.insert("a".to_string(), 1);
        labels.insert("b".to_string(), 2);
        let p = Program::new(
            vec![
                Instr::Split {
                    arms: vec![
                        SplitArm {
                            thickness: Operand::Imm(4),
                            target: Target::Label("a".into()),
                        },
                        SplitArm {
                            thickness: Operand::Reg(r(2)),
                            target: Target::Label("b".into()),
                        },
                    ],
                },
                Instr::Join,
                Instr::Join,
            ],
            labels,
            vec![],
        )
        .unwrap();
        let d = DecodedProgram::decode(&p);
        let arms = match d.fetch(0) {
            Some(DecodedInst::Split { arms }) => arms,
            other => panic!("expected split, got {other:?}"),
        };
        let decoded: Vec<DecodedArm> = arms.indices().map(|i| d.arm(i)).collect();
        assert_eq!(
            decoded,
            vec![
                DecodedArm {
                    thickness: Operand::Imm(4),
                    target: 1
                },
                DecodedArm {
                    thickness: Operand::Reg(r(2)),
                    target: 2
                },
            ]
        );
    }

    #[test]
    fn unresolved_label_decodes_to_sentinel() {
        // Deserialization can hand the engines a program that skipped
        // `Program::new` resolution; the decoder must not panic on it.
        let p = Program {
            instrs: vec![Instr::Jmp {
                target: Target::Label("nowhere".into()),
            }],
            labels: BTreeMap::new(),
            data: vec![],
            entry: 0,
        };
        let d = DecodedProgram::decode(&p);
        assert_eq!(
            d.fetch(0),
            Some(DecodedInst::Jmp {
                target: DecodedProgram::UNRESOLVED
            })
        );
    }

    #[test]
    fn every_variant_round_trips_shape() {
        // One instruction of every kind decodes without loss of the
        // operand fields the engines read.
        let p = Program::new(
            vec![
                Instr::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    ra: r(2),
                    rb: Operand::Imm(5),
                },
                Instr::StMasked {
                    cond: r(3),
                    rs: r(4),
                    base: r(5),
                    off: 7,
                    space: MemSpace::Local,
                },
                Instr::MultiPrefix {
                    kind: MultiKind::Max,
                    rd: r(1),
                    base: r(2),
                    off: 0,
                    rs: r(3),
                },
                Instr::Halt,
            ],
            BTreeMap::new(),
            vec![],
        )
        .unwrap();
        let d = DecodedProgram::decode(&p);
        assert_eq!(
            d.fetch(0),
            Some(DecodedInst::Alu {
                op: AluOp::Add,
                rd: r(1),
                ra: r(2),
                rb: Operand::Imm(5),
            })
        );
        assert_eq!(
            d.fetch(1),
            Some(DecodedInst::StMasked {
                cond: r(3),
                rs: r(4),
                base: r(5),
                off: 7,
                space: MemSpace::Local,
            })
        );
        assert_eq!(
            d.fetch(2),
            Some(DecodedInst::MultiPrefix {
                kind: MultiKind::Max,
                rd: r(1),
                base: r(2),
                off: 0,
                rs: r(3),
            })
        );
        assert_eq!(d.fetch(2).unwrap().name(), "multiprefix");
    }
}
