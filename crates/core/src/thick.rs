//! Thick values: per-implicit-thread data with uniform-value compression.
//!
//! A register of a flow of thickness `T` conceptually holds `T` words. Most
//! registers hold the *same* word for every implicit thread (base
//! addresses, loop bounds, flow-wise temporaries); the extended model's
//! architecture proposal explicitly calls out that such registers need not
//! be replicated (§3.3). [`ThickValue`] keeps that distinction: a
//! `Uniform` value is stored once and instructions whose operands are all
//! uniform execute *once* on the flow's common operands instead of `T`
//! times — the scalarization the TCF processor's operand-select stage
//! performs.

use serde::{Deserialize, Serialize};

use tcf_isa::word::Word;

/// A value with one word per implicit thread, compressed when uniform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThickValue {
    /// Every implicit thread sees this word.
    Uniform(Word),
    /// Thread `i` sees `values[i]`; the vector's length is the thickness
    /// at materialization time. Reads beyond the vector (after a thickness
    /// increase) see 0.
    PerThread(Vec<Word>),
}

impl ThickValue {
    /// The zero value.
    pub fn zero() -> ThickValue {
        ThickValue::Uniform(0)
    }

    /// Whether the value is stored uniformly.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, ThickValue::Uniform(_))
    }

    /// The value thread `i` sees.
    #[inline]
    pub fn get(&self, i: usize) -> Word {
        match self {
            ThickValue::Uniform(v) => *v,
            ThickValue::PerThread(vs) => vs.get(i).copied().unwrap_or(0),
        }
    }

    /// The uniform value, if uniform.
    #[inline]
    pub fn as_uniform(&self) -> Option<Word> {
        match self {
            ThickValue::Uniform(v) => Some(*v),
            ThickValue::PerThread(_) => None,
        }
    }

    /// Materializes the value as a per-thread vector of length `thickness`.
    pub fn materialize(&self, thickness: usize) -> Vec<Word> {
        let mut out = Vec::new();
        self.materialize_into(thickness, &mut out);
        out
    }

    /// Like [`materialize`](ThickValue::materialize), but reusing `out`'s
    /// allocation: the vector is cleared and refilled to `thickness`
    /// entries. The zero-allocation choice for loops that materialize
    /// register after register into one scratch buffer.
    pub fn materialize_into(&self, thickness: usize, out: &mut Vec<Word>) {
        out.clear();
        match self {
            ThickValue::Uniform(v) => out.resize(thickness, *v),
            ThickValue::PerThread(vs) => {
                out.extend((0..thickness).map(|i| vs.get(i).copied().unwrap_or(0)))
            }
        }
    }

    /// The word every one of the first `thickness` implicit threads sees,
    /// when they all agree — [`normalize`](ThickValue::normalize)'s
    /// uniformity test as a non-mutating read. This is the operand-select
    /// fast path: flow-wise execution asks "is this operand uniform right
    /// now?" without cloning the per-thread vector (the stored
    /// representation is left as is).
    pub fn uniform_over(&self, thickness: usize) -> Option<Word> {
        match self {
            ThickValue::Uniform(v) => Some(*v),
            ThickValue::PerThread(vs) => {
                let first = vs.first().copied().unwrap_or(0);
                if (0..thickness).all(|i| vs.get(i).copied().unwrap_or(0) == first) {
                    Some(first)
                } else {
                    None
                }
            }
        }
    }

    /// Sets thread `i`'s value, promoting to per-thread storage if it
    /// breaks uniformity. `thickness` is the flow's current thickness
    /// (needed for promotion).
    pub fn set(&mut self, i: usize, v: Word, thickness: usize) {
        match self {
            ThickValue::Uniform(u) if *u == v => {}
            ThickValue::Uniform(u) => {
                let mut vs = vec![*u; thickness.max(i + 1)];
                vs[i] = v;
                *self = ThickValue::PerThread(vs);
            }
            ThickValue::PerThread(vs) => {
                if vs.len() <= i {
                    vs.resize(i + 1, 0);
                }
                vs[i] = v;
            }
        }
    }

    /// Re-compresses to uniform storage when all of the first `thickness`
    /// entries agree. Returns whether the value is now uniform.
    pub fn normalize(&mut self, thickness: usize) -> bool {
        if let ThickValue::PerThread(vs) = self {
            let first = vs.first().copied().unwrap_or(0);
            let all_same = (0..thickness).all(|i| vs.get(i).copied().unwrap_or(0) == first);
            if all_same {
                *self = ThickValue::Uniform(first);
            }
        }
        self.is_uniform()
    }
}

impl Default for ThickValue {
    fn default() -> ThickValue {
        ThickValue::zero()
    }
}

/// The register file of one flow: `R` thick values. Index 0 is the
/// hardwired zero register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThickRegs {
    regs: Vec<ThickValue>,
}

impl ThickRegs {
    /// `nregs` zeroed registers.
    pub fn new(nregs: usize) -> ThickRegs {
        ThickRegs {
            regs: vec![ThickValue::zero(); nregs],
        }
    }

    /// Number of registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file is empty (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The thick value of register `r`.
    #[inline]
    pub fn value(&self, r: tcf_isa::reg::Reg) -> &ThickValue {
        &self.regs[r.index()]
    }

    /// Thread `i`'s view of register `r`.
    #[inline]
    pub fn read(&self, r: tcf_isa::reg::Reg, i: usize) -> Word {
        self.regs[r.index()].get(i)
    }

    /// Writes thread `i`'s view of register `r` (r0 writes discarded).
    #[inline]
    pub fn write(&mut self, r: tcf_isa::reg::Reg, i: usize, v: Word, thickness: usize) {
        if !r.is_zero() {
            self.regs[r.index()].set(i, v, thickness);
        }
    }

    /// Writes a uniform value to register `r`.
    #[inline]
    pub fn write_uniform(&mut self, r: tcf_isa::reg::Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = ThickValue::Uniform(v);
        }
    }

    /// Replaces register `r` wholesale.
    #[inline]
    pub fn write_value(&mut self, r: tcf_isa::reg::Reg, v: ThickValue) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Writes `values` to the contiguous lane range starting at `base` of
    /// register `r` — exactly equivalent to calling
    /// [`write`](ThickRegs::write) once per lane in ascending order, but
    /// with one representation decision for the whole run: the register
    /// stays uniform when every lane agrees with it, and promotes with a
    /// single bulk copy otherwise. The thick-execution merge replays
    /// register runs through here.
    pub fn write_lanes(
        &mut self,
        r: tcf_isa::reg::Reg,
        base: usize,
        values: &[Word],
        thickness: usize,
    ) {
        if r.is_zero() || values.is_empty() {
            return;
        }
        let end = base + values.len();
        match &mut self.regs[r.index()] {
            ThickValue::Uniform(u) => {
                let u = *u;
                // Per-lane `set` leaves a uniform register untouched until
                // the first disagreeing lane, then promotes to length
                // `max(thickness, lane + 1)` and extends lane by lane.
                let Some(p) = values.iter().position(|&x| x != u) else {
                    return;
                };
                let first = base + p;
                let mut vs = vec![u; thickness.max(first + 1).max(end)];
                vs[first..end].copy_from_slice(&values[p..]);
                self.regs[r.index()] = ThickValue::PerThread(vs);
            }
            ThickValue::PerThread(vs) => {
                if vs.len() < end {
                    vs.resize(end, 0);
                }
                vs[base..end].copy_from_slice(values);
            }
        }
    }

    /// Collapses every register to the flow-wise (thread 0) view — the
    /// state a child flow inherits across a `split`, and the state a flow
    /// keeps when its thickness changes (per-thread data is meaningless
    /// under a new thickness).
    pub fn collapse_to_flowwise(&mut self) {
        for r in &mut self.regs {
            if let ThickValue::PerThread(vs) = r {
                *r = ThickValue::Uniform(vs.first().copied().unwrap_or(0));
            }
        }
    }

    /// Number of registers currently needing per-thread storage (used by
    /// the Table 1 registers-per-thread measurement).
    pub fn per_thread_count(&self) -> usize {
        self.regs.iter().filter(|r| !r.is_uniform()).count()
    }

    /// Test support: rewrites every register into its fully materialized
    /// per-thread form. Semantically the identity — every implicit thread
    /// reads the same words as before — but it defeats the uniform
    /// representation, forcing execution down the general thick path. The
    /// scalarization property test uses this to pin the uniform fast path
    /// against per-thread execution.
    pub fn materialize_all(&mut self, thickness: usize) {
        for v in &mut self.regs {
            *v = ThickValue::PerThread(v.materialize(thickness.max(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::reg::r;

    #[test]
    fn uniform_reads_everywhere() {
        let v = ThickValue::Uniform(7);
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(1_000_000), 7);
        assert_eq!(v.as_uniform(), Some(7));
    }

    #[test]
    fn set_same_value_stays_uniform() {
        let mut v = ThickValue::Uniform(7);
        v.set(3, 7, 8);
        assert!(v.is_uniform());
    }

    #[test]
    fn set_different_value_promotes() {
        let mut v = ThickValue::Uniform(7);
        v.set(2, 9, 4);
        assert!(!v.is_uniform());
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(2), 9);
        assert_eq!(v.get(3), 7);
    }

    #[test]
    fn per_thread_reads_beyond_length_are_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.get(5), 0);
    }

    #[test]
    fn normalize_recompresses() {
        let mut v = ThickValue::PerThread(vec![4, 4, 4]);
        assert!(v.normalize(3));
        assert_eq!(v, ThickValue::Uniform(4));
        let mut v = ThickValue::PerThread(vec![4, 5, 4]);
        assert!(!v.normalize(3));
    }

    #[test]
    fn materialize_pads_with_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.materialize(4), vec![1, 2, 0, 0]);
        let u = ThickValue::Uniform(9);
        assert_eq!(u.materialize(3), vec![9, 9, 9]);
    }

    #[test]
    fn materialize_into_reuses_and_matches_materialize() {
        let mut buf = vec![99; 16];
        let v = ThickValue::PerThread(vec![1, 2]);
        v.materialize_into(4, &mut buf);
        assert_eq!(buf, v.materialize(4));
        let u = ThickValue::Uniform(7);
        u.materialize_into(2, &mut buf);
        assert_eq!(buf, u.materialize(2));
        u.materialize_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn uniform_over_matches_normalize_without_mutating() {
        let cases = vec![
            (ThickValue::Uniform(3), 4),
            (ThickValue::PerThread(vec![4, 4, 4]), 3),
            (ThickValue::PerThread(vec![4, 5, 4]), 3),
            // Beyond-length entries read 0: uniform over 4 iff first is 0.
            (ThickValue::PerThread(vec![0, 0]), 4),
            (ThickValue::PerThread(vec![2, 2]), 4),
            (ThickValue::PerThread(vec![]), 2),
            (ThickValue::PerThread(vec![1, 1, 9]), 2),
        ];
        for (v, t) in cases {
            let before = v.clone();
            let expect = {
                let mut c = v.clone();
                c.normalize(t);
                c.as_uniform()
            };
            assert_eq!(v.uniform_over(t), expect, "{v:?} over {t}");
            assert_eq!(v, before, "uniform_over must not mutate");
        }
    }

    #[test]
    fn regs_r0_hardwired() {
        let mut f = ThickRegs::new(8);
        f.write(r(0), 0, 42, 4);
        assert_eq!(f.read(r(0), 0), 0);
        f.write_uniform(r(0), 42);
        assert_eq!(f.read(r(0), 0), 0);
    }

    #[test]
    fn regs_collapse_to_flowwise() {
        let mut f = ThickRegs::new(4);
        f.write(r(1), 0, 10, 3);
        f.write(r(1), 1, 20, 3);
        f.write_uniform(r(2), 5);
        assert_eq!(f.per_thread_count(), 1);
        f.collapse_to_flowwise();
        assert_eq!(f.per_thread_count(), 0);
        assert_eq!(f.read(r(1), 2), 10); // thread 0's view everywhere
        assert_eq!(f.read(r(2), 0), 5);
    }

    #[test]
    fn write_lanes_matches_per_lane_writes() {
        // Bulk lane writes must leave the register bit-identical to the
        // ascending per-lane replay they replace — including the stored
        // representation, not just the values threads read.
        let starts = [
            ThickValue::Uniform(7),
            ThickValue::Uniform(0),
            ThickValue::PerThread(vec![1, 2, 3]),
            ThickValue::PerThread(vec![]),
        ];
        let runs: [(usize, &[Word]); 6] = [
            (0, &[7, 7, 7]),    // all agree with Uniform(7)
            (0, &[7, 9, 7]),    // disagree mid-run
            (2, &[5, 6]),       // offset run
            (5, &[1]),          // run beyond current length
            (0, &[]),           // empty run
            (1, &[2, 2, 2, 2]), // run crossing the stored length
        ];
        for start in &starts {
            for &(base, values) in &runs {
                for thickness in [1usize, 3, 6] {
                    let mut bulk = ThickRegs::new(2);
                    bulk.write_value(r(1), start.clone());
                    let mut lanes = ThickRegs::new(2);
                    lanes.write_value(r(1), start.clone());
                    bulk.write_lanes(r(1), base, values, thickness);
                    for (j, &v) in values.iter().enumerate() {
                        lanes.write(r(1), base + j, v, thickness);
                    }
                    assert_eq!(
                        bulk.value(r(1)),
                        lanes.value(r(1)),
                        "start={start:?} base={base} values={values:?} t={thickness}"
                    );
                }
            }
        }
    }

    #[test]
    fn write_tracks_thickness_for_promotion() {
        let mut f = ThickRegs::new(4);
        f.write_uniform(r(3), 1);
        f.write(r(3), 2, 9, 6);
        // Threads 0..6 except 2 should still see 1.
        assert_eq!(f.read(r(3), 0), 1);
        assert_eq!(f.read(r(3), 2), 9);
        assert_eq!(f.read(r(3), 5), 1);
    }
}
