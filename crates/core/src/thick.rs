//! Thick values: per-implicit-thread data with uniform-value compression.
//!
//! A register of a flow of thickness `T` conceptually holds `T` words. Most
//! registers hold the *same* word for every implicit thread (base
//! addresses, loop bounds, flow-wise temporaries); the extended model's
//! architecture proposal explicitly calls out that such registers need not
//! be replicated (§3.3). [`ThickValue`] keeps that distinction: a
//! `Uniform` value is stored once and instructions whose operands are all
//! uniform execute *once* on the flow's common operands instead of `T`
//! times — the scalarization the TCF processor's operand-select stage
//! performs.

use serde::{Deserialize, Serialize};

use tcf_isa::word::Word;

/// A value with one word per implicit thread, compressed when uniform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThickValue {
    /// Every implicit thread sees this word.
    Uniform(Word),
    /// Thread `i` sees `values[i]`; the vector's length is the thickness
    /// at materialization time. Reads beyond the vector (after a thickness
    /// increase) see 0.
    PerThread(Vec<Word>),
}

impl ThickValue {
    /// The zero value.
    pub fn zero() -> ThickValue {
        ThickValue::Uniform(0)
    }

    /// Whether the value is stored uniformly.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, ThickValue::Uniform(_))
    }

    /// The value thread `i` sees.
    #[inline]
    pub fn get(&self, i: usize) -> Word {
        match self {
            ThickValue::Uniform(v) => *v,
            ThickValue::PerThread(vs) => vs.get(i).copied().unwrap_or(0),
        }
    }

    /// The uniform value, if uniform.
    #[inline]
    pub fn as_uniform(&self) -> Option<Word> {
        match self {
            ThickValue::Uniform(v) => Some(*v),
            ThickValue::PerThread(_) => None,
        }
    }

    /// Materializes the value as a per-thread vector of length `thickness`.
    pub fn materialize(&self, thickness: usize) -> Vec<Word> {
        match self {
            ThickValue::Uniform(v) => vec![*v; thickness],
            ThickValue::PerThread(vs) => (0..thickness)
                .map(|i| vs.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Sets thread `i`'s value, promoting to per-thread storage if it
    /// breaks uniformity. `thickness` is the flow's current thickness
    /// (needed for promotion).
    pub fn set(&mut self, i: usize, v: Word, thickness: usize) {
        match self {
            ThickValue::Uniform(u) if *u == v => {}
            ThickValue::Uniform(u) => {
                let mut vs = vec![*u; thickness.max(i + 1)];
                vs[i] = v;
                *self = ThickValue::PerThread(vs);
            }
            ThickValue::PerThread(vs) => {
                if vs.len() <= i {
                    vs.resize(i + 1, 0);
                }
                vs[i] = v;
            }
        }
    }

    /// Re-compresses to uniform storage when all of the first `thickness`
    /// entries agree. Returns whether the value is now uniform.
    pub fn normalize(&mut self, thickness: usize) -> bool {
        if let ThickValue::PerThread(vs) = self {
            let first = vs.first().copied().unwrap_or(0);
            let all_same = (0..thickness).all(|i| vs.get(i).copied().unwrap_or(0) == first);
            if all_same {
                *self = ThickValue::Uniform(first);
            }
        }
        self.is_uniform()
    }
}

impl Default for ThickValue {
    fn default() -> ThickValue {
        ThickValue::zero()
    }
}

/// The register file of one flow: `R` thick values. Index 0 is the
/// hardwired zero register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThickRegs {
    regs: Vec<ThickValue>,
}

impl ThickRegs {
    /// `nregs` zeroed registers.
    pub fn new(nregs: usize) -> ThickRegs {
        ThickRegs {
            regs: vec![ThickValue::zero(); nregs],
        }
    }

    /// Number of registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file is empty (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The thick value of register `r`.
    #[inline]
    pub fn value(&self, r: tcf_isa::reg::Reg) -> &ThickValue {
        &self.regs[r.index()]
    }

    /// Thread `i`'s view of register `r`.
    #[inline]
    pub fn read(&self, r: tcf_isa::reg::Reg, i: usize) -> Word {
        self.regs[r.index()].get(i)
    }

    /// Writes thread `i`'s view of register `r` (r0 writes discarded).
    #[inline]
    pub fn write(&mut self, r: tcf_isa::reg::Reg, i: usize, v: Word, thickness: usize) {
        if !r.is_zero() {
            self.regs[r.index()].set(i, v, thickness);
        }
    }

    /// Writes a uniform value to register `r`.
    #[inline]
    pub fn write_uniform(&mut self, r: tcf_isa::reg::Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = ThickValue::Uniform(v);
        }
    }

    /// Replaces register `r` wholesale.
    #[inline]
    pub fn write_value(&mut self, r: tcf_isa::reg::Reg, v: ThickValue) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Collapses every register to the flow-wise (thread 0) view — the
    /// state a child flow inherits across a `split`, and the state a flow
    /// keeps when its thickness changes (per-thread data is meaningless
    /// under a new thickness).
    pub fn collapse_to_flowwise(&mut self) {
        for r in &mut self.regs {
            if let ThickValue::PerThread(vs) = r {
                *r = ThickValue::Uniform(vs.first().copied().unwrap_or(0));
            }
        }
    }

    /// Number of registers currently needing per-thread storage (used by
    /// the Table 1 registers-per-thread measurement).
    pub fn per_thread_count(&self) -> usize {
        self.regs.iter().filter(|r| !r.is_uniform()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::reg::r;

    #[test]
    fn uniform_reads_everywhere() {
        let v = ThickValue::Uniform(7);
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(1_000_000), 7);
        assert_eq!(v.as_uniform(), Some(7));
    }

    #[test]
    fn set_same_value_stays_uniform() {
        let mut v = ThickValue::Uniform(7);
        v.set(3, 7, 8);
        assert!(v.is_uniform());
    }

    #[test]
    fn set_different_value_promotes() {
        let mut v = ThickValue::Uniform(7);
        v.set(2, 9, 4);
        assert!(!v.is_uniform());
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(2), 9);
        assert_eq!(v.get(3), 7);
    }

    #[test]
    fn per_thread_reads_beyond_length_are_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.get(5), 0);
    }

    #[test]
    fn normalize_recompresses() {
        let mut v = ThickValue::PerThread(vec![4, 4, 4]);
        assert!(v.normalize(3));
        assert_eq!(v, ThickValue::Uniform(4));
        let mut v = ThickValue::PerThread(vec![4, 5, 4]);
        assert!(!v.normalize(3));
    }

    #[test]
    fn materialize_pads_with_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.materialize(4), vec![1, 2, 0, 0]);
        let u = ThickValue::Uniform(9);
        assert_eq!(u.materialize(3), vec![9, 9, 9]);
    }

    #[test]
    fn regs_r0_hardwired() {
        let mut f = ThickRegs::new(8);
        f.write(r(0), 0, 42, 4);
        assert_eq!(f.read(r(0), 0), 0);
        f.write_uniform(r(0), 42);
        assert_eq!(f.read(r(0), 0), 0);
    }

    #[test]
    fn regs_collapse_to_flowwise() {
        let mut f = ThickRegs::new(4);
        f.write(r(1), 0, 10, 3);
        f.write(r(1), 1, 20, 3);
        f.write_uniform(r(2), 5);
        assert_eq!(f.per_thread_count(), 1);
        f.collapse_to_flowwise();
        assert_eq!(f.per_thread_count(), 0);
        assert_eq!(f.read(r(1), 2), 10); // thread 0's view everywhere
        assert_eq!(f.read(r(2), 0), 5);
    }

    #[test]
    fn write_tracks_thickness_for_promotion() {
        let mut f = ThickRegs::new(4);
        f.write_uniform(r(3), 1);
        f.write(r(3), 2, 9, 6);
        // Threads 0..6 except 2 should still see 1.
        assert_eq!(f.read(r(3), 0), 1);
        assert_eq!(f.read(r(3), 2), 9);
        assert_eq!(f.read(r(3), 5), 1);
    }
}
