//! Thick values: per-implicit-thread data with uniform-value compression.
//!
//! A register of a flow of thickness `T` conceptually holds `T` words. Most
//! registers hold the *same* word for every implicit thread (base
//! addresses, loop bounds, flow-wise temporaries); the extended model's
//! architecture proposal explicitly calls out that such registers need not
//! be replicated (§3.3). [`ThickValue`] keeps that distinction: a
//! `Uniform` value is stored once and instructions whose operands are all
//! uniform execute *once* on the flow's common operands instead of `T`
//! times — the scalarization the TCF processor's operand-select stage
//! performs.
//!
//! The second compression dimension is *affine* values: in the TCF model
//! one instruction stands for `T` identical operations, and the values
//! that differ between lanes are overwhelmingly arithmetic progressions
//! of the lane id (the thread-id seed, induction vectors, addresses of
//! array sweeps). An [`Affine`](ThickValue::Affine) value stores them as
//! `base + stride·i`, a [`Segments`](ThickValue::Segments) value as a
//! short piecewise-affine run list (what comparisons of an affine value
//! against a bound produce). The closure algebra over these forms lives
//! in [`affine_alu`]; values decay to `PerThread` lanes only when the
//! algebra genuinely escapes the form.

use serde::{Deserialize, Serialize};

use tcf_isa::op::AluOp;
use tcf_isa::word::{shamt, Word};

use crate::lanes;

/// Maximum number of affine runs a masked / piecewise closed-form slice
/// may work with before execution decays to the SoA lane planes. Divergent
/// control flow expressed through `Sel` and comparisons produces a handful
/// of runs (a comparison of exact progressions yields at most three); a
/// run count past this budget means the value has effectively lost its
/// structure and O(#runs) closed-form execution would no longer beat the
/// vectorized per-lane kernels. Decays for this reason are counted as
/// `decay_mask_runs` in the taxonomy.
pub const MASK_RUN_BUDGET: usize = 32;

/// One piece of a [`ThickValue::Segments`] value: `len` lanes reading
/// `base + stride·k` (wrapping), `k` relative to the segment start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Seg {
    /// Number of lanes in the segment (≥ 1).
    pub len: u32,
    /// Value of the segment's first lane.
    pub base: Word,
    /// Per-lane increment (0 for single-lane segments, by canonical
    /// form).
    pub stride: Word,
}

impl Seg {
    /// Value of lane `k` (relative to the segment start).
    #[inline]
    pub fn get(&self, k: usize) -> Word {
        self.base.wrapping_add(self.stride.wrapping_mul(k as Word))
    }
}

/// A value with one word per implicit thread, compressed when uniform or
/// (piecewise) affine in the lane index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThickValue {
    /// Every implicit thread sees this word.
    Uniform(Word),
    /// Thread `i` sees `values[i]`; the vector's length is the thickness
    /// at materialization time. Reads beyond the vector (after a thickness
    /// increase) see 0.
    PerThread(Vec<Word>),
    /// Thread `i` sees `base + stride·i` (wrapping). Invariant:
    /// `stride != 0` (a zero stride is stored as `Uniform`).
    Affine {
        /// Lane 0's value.
        base: Word,
        /// Per-lane increment.
        stride: Word,
    },
    /// Piecewise affine from lane 0; lanes beyond the segments' total
    /// length see 0. Invariants: non-empty, every segment has `len ≥ 1`,
    /// single-lane segments store stride 0, and no two adjacent segments
    /// are mergeable into one progression.
    Segments(Vec<Seg>),
}

impl ThickValue {
    /// The zero value.
    pub fn zero() -> ThickValue {
        ThickValue::Uniform(0)
    }

    /// Whether the value is stored uniformly.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, ThickValue::Uniform(_))
    }

    /// An affine value, canonicalized: stride 0 collapses to `Uniform`.
    #[inline]
    pub fn affine(base: Word, stride: Word) -> ThickValue {
        if stride == 0 {
            ThickValue::Uniform(base)
        } else {
            ThickValue::Affine { base, stride }
        }
    }

    /// A piecewise value from canonical-form segments: empty lists
    /// collapse to zero (lanes beyond the segments read 0), a single
    /// segment covering at least `thickness` lanes collapses to its
    /// affine form (the tail beyond the covered lanes is unobservable —
    /// thickness growth decays compressed registers first).
    fn from_segs(mut segs: Vec<Seg>, thickness: usize) -> ThickValue {
        merge_segs(&mut segs);
        match segs.len() {
            0 => ThickValue::Uniform(0),
            1 if segs[0].len as usize >= thickness => {
                ThickValue::affine(segs[0].base, segs[0].stride)
            }
            _ => ThickValue::Segments(segs),
        }
    }

    /// Appends lanes `[from, to)` of this (compressed) value to `segs` as
    /// affine pieces. Only called on `Uniform`/`Affine`/`Segments`.
    fn append_range_segs(&self, from: usize, to: usize, segs: &mut Vec<Seg>) {
        if from >= to {
            return;
        }
        match self {
            ThickValue::Uniform(v) => segs.push(Seg {
                len: (to - from) as u32,
                base: *v,
                stride: 0,
            }),
            ThickValue::Affine { base, stride } => segs.push(Seg {
                len: (to - from) as u32,
                base: base.wrapping_add(stride.wrapping_mul(from as Word)),
                stride: *stride,
            }),
            ThickValue::Segments(cur) => {
                let mut start = 0usize;
                for piece in cur {
                    let plen = piece.len as usize;
                    let lo = from.max(start);
                    let hi = to.min(start + plen);
                    if lo < hi {
                        segs.push(Seg {
                            len: (hi - lo) as u32,
                            base: piece.get(lo - start),
                            stride: piece.stride,
                        });
                    }
                    start += plen;
                    if start >= to {
                        break;
                    }
                }
                if start < to {
                    // Zero tail beyond the covered lanes.
                    let lo = from.max(start);
                    segs.push(Seg {
                        len: (to - lo) as u32,
                        base: 0,
                        stride: 0,
                    });
                }
            }
            ThickValue::PerThread(_) => unreachable!("append_range_segs on explicit lanes"),
        }
    }

    /// The value thread `i` sees.
    #[inline]
    pub fn get(&self, i: usize) -> Word {
        match self {
            ThickValue::Uniform(v) => *v,
            ThickValue::PerThread(vs) => vs.get(i).copied().unwrap_or(0),
            ThickValue::Affine { base, stride } => {
                base.wrapping_add(stride.wrapping_mul(i as Word))
            }
            ThickValue::Segments(segs) => {
                let mut k = i;
                for s in segs {
                    if k < s.len as usize {
                        return s.get(k);
                    }
                    k -= s.len as usize;
                }
                0
            }
        }
    }

    /// Gathers lanes `[lo, lo + out.len())` into the dense plane `out` —
    /// exactly `out[k] = self.get(lo + k)`, but bulk per representation:
    /// a fill for `Uniform`, a `memcpy` plus zero tail for `PerThread`,
    /// the chunked progression kernel for `Affine`, and a segment walk of
    /// progression fills for `Segments`. This is the structure-of-arrays
    /// operand gather of the per-lane fallback path (`crate::lanes`).
    pub fn fill_lanes(&self, lo: usize, out: &mut [Word]) {
        match self {
            ThickValue::Uniform(v) => out.fill(*v),
            ThickValue::PerThread(vs) => {
                // `lo` may sit past the materialized end (all-zero lanes).
                let start = lo.min(vs.len());
                let avail = (vs.len() - start).min(out.len());
                out[..avail].copy_from_slice(&vs[start..start + avail]);
                out[avail..].fill(0);
            }
            ThickValue::Affine { base, stride } => lanes::fill_affine(
                out,
                base.wrapping_add(stride.wrapping_mul(lo as Word)),
                *stride,
            ),
            ThickValue::Segments(segs) => {
                let hi = lo + out.len();
                let mut start = 0usize;
                let mut done = 0usize;
                for s in segs {
                    let plen = s.len as usize;
                    let a = lo.max(start);
                    let b = hi.min(start + plen);
                    if a < b {
                        lanes::fill_affine(&mut out[a - lo..b - lo], s.get(a - start), s.stride);
                        done = b - lo;
                    }
                    start += plen;
                    if start >= hi {
                        break;
                    }
                }
                out[done..].fill(0);
            }
        }
    }

    /// First `k` where `values[k] != self.get(lo + k)` — the bulk
    /// mismatch scan [`ThickRegs::write_lanes`] uses to decide whether a
    /// lane run leaves the stored representation untouched. Chunked per
    /// representation (`crate::lanes`); `PerThread` compares directly.
    pub fn first_mismatch(&self, lo: usize, values: &[Word]) -> Option<usize> {
        match self {
            ThickValue::Uniform(v) => lanes::first_mismatch_uniform(values, *v),
            ThickValue::Affine { base, stride } => lanes::first_mismatch_affine(
                values,
                base.wrapping_add(stride.wrapping_mul(lo as Word)),
                *stride,
            ),
            ThickValue::Segments(segs) => {
                let hi = lo + values.len();
                let mut start = 0usize;
                let mut done = 0usize;
                for s in segs {
                    let plen = s.len as usize;
                    let a = lo.max(start);
                    let b = hi.min(start + plen);
                    if a < b {
                        if let Some(p) = lanes::first_mismatch_affine(
                            &values[a - lo..b - lo],
                            s.get(a - start),
                            s.stride,
                        ) {
                            return Some(a - lo + p);
                        }
                        done = b - lo;
                    }
                    start += plen;
                    if start >= hi {
                        break;
                    }
                }
                lanes::first_mismatch_uniform(&values[done..], 0).map(|p| done + p)
            }
            ThickValue::PerThread(_) => values
                .iter()
                .enumerate()
                .find_map(|(k, &x)| (x != self.get(lo + k)).then_some(k)),
        }
    }

    /// The uniform value, if uniform.
    #[inline]
    pub fn as_uniform(&self) -> Option<Word> {
        match self {
            ThickValue::Uniform(v) => Some(*v),
            _ => None,
        }
    }

    /// The lane range `[lo, lo + len)` as an arithmetic progression
    /// `(value at lo, per-lane stride)`, when the representation yields it
    /// without touching lanes. `PerThread` always answers `None` — the
    /// point is O(1) classification, not O(len) detection.
    pub fn affine_over(&self, lo: usize, len: usize) -> Option<(Word, Word)> {
        match self {
            ThickValue::Uniform(v) => Some((*v, 0)),
            ThickValue::Affine { base, stride } => {
                Some((base.wrapping_add(stride.wrapping_mul(lo as Word)), *stride))
            }
            ThickValue::Segments(segs) => {
                if len == 0 {
                    return Some((self.get(lo), 0));
                }
                let mut k = lo;
                for s in segs {
                    if k < s.len as usize {
                        // Entirely within this segment?
                        return if k + len <= s.len as usize {
                            Some((s.get(k), if len == 1 { 0 } else { s.stride }))
                        } else {
                            None
                        };
                    }
                    k -= s.len as usize;
                }
                // Entirely beyond the covered lanes: all zero.
                Some((0, 0))
            }
            ThickValue::PerThread(_) => None,
        }
    }

    /// Appends the affine pieces of lanes `[lo, lo + len)` to `out`, in
    /// lane order, covering the range exactly (the tail beyond a
    /// `Segments` value's covered lanes appears as a zero piece). Returns
    /// `false` — leaving `out` untouched — for `PerThread` values, whose
    /// piecewise structure would cost O(len) to discover. This is the
    /// splitting primitive of masked execution: where
    /// [`affine_over`](ThickValue::affine_over) answers `None` because the
    /// range straddles segment boundaries, the pieces let the caller run
    /// the closed-form algebra per run instead of decaying to lanes.
    pub fn piece_runs(&self, lo: usize, len: usize, out: &mut Vec<Seg>) -> bool {
        if matches!(self, ThickValue::PerThread(_)) {
            return false;
        }
        self.append_range_segs(lo, lo + len, out);
        true
    }

    /// The lane range `[lo, lo + len)` re-based as a fresh value of
    /// thickness `len` — lane `k` of the result reads `self.get(lo + k)`.
    /// Compressed representations stay compressed (O(#runs), and a range
    /// inside one run collapses back to `Affine`/`Uniform`); `PerThread`
    /// copies the covered lanes (O(len)). This is the flow-splitting
    /// primitive: carving a sub-block out of a thick flow costs the run
    /// structure, not the thickness.
    pub fn slice_range(&self, lo: usize, len: usize) -> ThickValue {
        match self {
            ThickValue::Uniform(v) => ThickValue::Uniform(*v),
            ThickValue::PerThread(vs) => {
                let mut out = vec![0; len];
                let start = lo.min(vs.len());
                let avail = (vs.len() - start).min(len);
                out[..avail].copy_from_slice(&vs[start..start + avail]);
                ThickValue::PerThread(out)
            }
            ThickValue::Affine { base, stride } => {
                ThickValue::affine(base.wrapping_add(stride.wrapping_mul(lo as Word)), *stride)
            }
            ThickValue::Segments(_) => {
                let mut segs = Vec::new();
                self.append_range_segs(lo, lo + len, &mut segs);
                ThickValue::from_segs(segs, len)
            }
        }
    }

    /// Number of affine runs of the stored representation: 1 for
    /// `Uniform`/`Affine`, the segment count for `Segments`, and 0 for
    /// `PerThread` (no run structure). Feeds the mask-run budget check and
    /// the run-growth regression tests.
    pub fn run_count(&self) -> usize {
        match self {
            ThickValue::Uniform(_) | ThickValue::Affine { .. } => 1,
            ThickValue::Segments(segs) => segs.len(),
            ThickValue::PerThread(_) => 0,
        }
    }

    /// Materializes the value as a per-thread vector of length `thickness`.
    pub fn materialize(&self, thickness: usize) -> Vec<Word> {
        let mut out = Vec::new();
        self.materialize_into(thickness, &mut out);
        out
    }

    /// Like [`materialize`](ThickValue::materialize), but reusing `out`'s
    /// allocation: the vector is cleared and refilled to `thickness`
    /// entries. The zero-allocation choice for loops that materialize
    /// register after register into one scratch buffer.
    pub fn materialize_into(&self, thickness: usize, out: &mut Vec<Word>) {
        out.clear();
        match self {
            ThickValue::Uniform(v) => out.resize(thickness, *v),
            ThickValue::PerThread(vs) => {
                out.extend((0..thickness).map(|i| vs.get(i).copied().unwrap_or(0)))
            }
            ThickValue::Affine { base, stride } => {
                let mut v = *base;
                out.extend((0..thickness).map(|_| {
                    let cur = v;
                    v = v.wrapping_add(*stride);
                    cur
                }));
            }
            ThickValue::Segments(segs) => {
                for s in segs {
                    let take = (s.len as usize).min(thickness - out.len());
                    let mut v = s.base;
                    out.extend((0..take).map(|_| {
                        let cur = v;
                        v = v.wrapping_add(s.stride);
                        cur
                    }));
                    if out.len() == thickness {
                        break;
                    }
                }
                out.resize(thickness, 0);
            }
        }
    }

    /// The word every one of the first `thickness` implicit threads sees,
    /// when they all agree — [`normalize`](ThickValue::normalize)'s
    /// uniformity test as a non-mutating read. This is the operand-select
    /// fast path: flow-wise execution asks "is this operand uniform right
    /// now?" without cloning the per-thread vector (the stored
    /// representation is left as is).
    pub fn uniform_over(&self, thickness: usize) -> Option<Word> {
        match self {
            ThickValue::Uniform(v) => Some(*v),
            ThickValue::PerThread(vs) => {
                let first = vs.first().copied().unwrap_or(0);
                if (0..thickness).all(|i| vs.get(i).copied().unwrap_or(0) == first) {
                    Some(first)
                } else {
                    None
                }
            }
            // Nonzero stride: uniform only degenerately.
            ThickValue::Affine { base, .. } => (thickness <= 1).then_some(*base),
            ThickValue::Segments(_) => {
                let first = self.get(0);
                (1..thickness)
                    .all(|i| self.get(i) == first)
                    .then_some(first)
            }
        }
    }

    /// Sets thread `i`'s value, promoting to per-thread storage if it
    /// breaks the compressed form. `thickness` is the flow's current
    /// thickness (needed for promotion).
    ///
    /// Compressed forms (`Uniform`, `Affine`, `Segments`) stay compressed
    /// when the written value equals what lane `i` already reads —
    /// including at the thickness boundaries (`i == thickness - 1`,
    /// `thickness == 1`) — and otherwise decay to a `PerThread` vector of
    /// length `max(thickness, i + 1)` with the write applied, exactly the
    /// state a never-compressed register would be in.
    pub fn set(&mut self, i: usize, v: Word, thickness: usize) {
        match self {
            ThickValue::Uniform(u) if *u == v => {}
            ThickValue::Uniform(u) => {
                let mut vs = vec![*u; thickness.max(i + 1)];
                vs[i] = v;
                *self = ThickValue::PerThread(vs);
            }
            ThickValue::PerThread(vs) => {
                if vs.len() <= i {
                    vs.resize(i + 1, 0);
                }
                vs[i] = v;
            }
            ThickValue::Affine { .. } | ThickValue::Segments(_) => {
                if self.get(i) == v {
                    return;
                }
                let mut vs = self.materialize(thickness.max(i + 1));
                vs[i] = v;
                *self = ThickValue::PerThread(vs);
            }
        }
    }

    /// Re-compresses to uniform storage when all of the first `thickness`
    /// entries agree. Returns whether the value is now uniform.
    pub fn normalize(&mut self, thickness: usize) -> bool {
        match self {
            ThickValue::Uniform(_) => {}
            ThickValue::PerThread(vs) => {
                let first = vs.first().copied().unwrap_or(0);
                let all_same = (0..thickness).all(|i| vs.get(i).copied().unwrap_or(0) == first);
                if all_same {
                    *self = ThickValue::Uniform(first);
                }
            }
            ThickValue::Affine { .. } | ThickValue::Segments(_) => {
                if let Some(v) = self.uniform_over(thickness) {
                    *self = ThickValue::Uniform(v);
                }
            }
        }
        self.is_uniform()
    }

    /// Decays compressed affine forms to explicit lanes at the given
    /// thickness. `Uniform` and `PerThread` values are left untouched.
    ///
    /// This is the semantic guard for thickness changes: an `Affine`
    /// value extends its progression to every lane index, whereas the
    /// per-thread vector it stands in for would read 0 beyond the old
    /// thickness. Decaying at the *old* thickness before the change keeps
    /// both behaviours observably identical. Returns whether a compressed
    /// form was actually materialized (the decay-reason counters sum
    /// these).
    pub fn decay_compressed(&mut self, thickness: usize) -> bool {
        if matches!(self, ThickValue::Affine { .. } | ThickValue::Segments(_)) {
            *self = ThickValue::PerThread(self.materialize(thickness.max(1)));
            return true;
        }
        false
    }
}

impl Default for ThickValue {
    fn default() -> ThickValue {
        ThickValue::zero()
    }
}

/// Restores the canonical form of a segment list in place: single-lane
/// segments get stride 0, adjacent segments continuing one progression
/// merge, empty segments vanish.
fn merge_segs(segs: &mut Vec<Seg>) {
    let mut out = 0usize;
    for i in 0..segs.len() {
        let mut s = segs[i];
        if s.len == 0 {
            continue;
        }
        if s.len == 1 {
            s.stride = 0;
        }
        if out > 0 {
            let prev = segs[out - 1];
            let cont = prev.get(prev.len as usize); // extrapolated next lane
            let merged = if prev.len == 1 && s.len == 1 {
                // Two adjacent single-lane segments always form a two-lane
                // progression. Masked write-backs splice runs at mask
                // boundaries and leave single-lane fringes behind; without
                // this rule a rejoin could grow the run count one fringe
                // at a time.
                Some(Seg {
                    len: 2,
                    base: prev.base,
                    stride: s.base.wrapping_sub(prev.base),
                })
            } else if prev.len == 1 && s.base == prev.base.wrapping_add(s.stride) {
                // A single-lane segment is the head of any progression.
                Some(Seg {
                    len: prev.len + s.len,
                    base: prev.base,
                    stride: s.stride,
                })
            } else if s.base == cont && (s.stride == prev.stride || s.len == 1) {
                Some(Seg {
                    len: prev.len + s.len,
                    base: prev.base,
                    stride: prev.stride,
                })
            } else {
                None
            };
            if let Some(m) = merged {
                segs[out - 1] = m;
                continue;
            }
        }
        segs[out] = s;
        out += 1;
    }
    segs.truncate(out);
}

/// One run of a [`LaneMask`]: `len` consecutive lanes starting at `start`
/// (relative to the mask's queried range), all selected (`set`) or all
/// masked out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskRun {
    /// First lane of the run, relative to the range the mask was built
    /// over.
    pub start: usize,
    /// Number of lanes in the run (≥ 1).
    pub len: usize,
    /// Whether the run's lanes are selected (condition read nonzero).
    pub set: bool,
}

/// Why a [`LaneMask`] could not be built from a condition value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskError {
    /// The condition holds explicit lanes (`PerThread`) or a wrapping
    /// progression whose zero set cannot be classified in O(1) — run
    /// structure would cost O(len) to discover.
    Lanes,
    /// The condition's run structure exceeds the caller's budget
    /// (`decay_mask_runs` in the decay taxonomy).
    Budget,
}

/// A run-length lane mask: the truthiness (nonzero-ness) of a compressed
/// condition value over a lane range, as sorted alternating runs of set
/// and clear lanes. This is what lets `Sel`, masked stores and strided
/// references execute divergent control flow in O(#runs) instead of
/// decaying to O(thickness) lane planes: each run of the mask is
/// homogeneous, so the closed-form affine algebra applies per run.
///
/// The struct is a reusable buffer ([`rebuild`](LaneMask::rebuild) clears
/// and refills it), pooled by the execution engine's fragment outputs so
/// steady-state masked slices allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct LaneMask {
    runs: Vec<MaskRun>,
    /// Scratch for the condition's affine pieces.
    segs: Vec<Seg>,
}

impl LaneMask {
    /// Rebuilds the mask as the truthiness runs of `v` over lanes
    /// `[lo, lo + len)`. Uniform and segment pieces classify wholesale; a
    /// non-uniform piece classifies only when its progression is exact
    /// ([`progression_exact`]) — an exact progression passes through zero
    /// at most once, splitting the piece into at most three runs. Adjacent
    /// same-truthiness runs merge, so the result is alternating. Fails
    /// with [`MaskError::Lanes`] on `PerThread` or inexact-progression
    /// conditions and [`MaskError::Budget`] when more than `budget` runs
    /// accumulate.
    pub fn rebuild(
        &mut self,
        v: &ThickValue,
        lo: usize,
        len: usize,
        budget: usize,
    ) -> Result<(), MaskError> {
        self.runs.clear();
        self.segs.clear();
        if len == 0 {
            return Ok(());
        }
        if !v.piece_runs(lo, len, &mut self.segs) {
            return Err(MaskError::Lanes);
        }
        fn push(runs: &mut Vec<MaskRun>, start: usize, len: usize, set: bool) {
            if len == 0 {
                return;
            }
            if let Some(last) = runs.last_mut() {
                if last.set == set {
                    last.len += len;
                    return;
                }
            }
            runs.push(MaskRun { start, len, set });
        }
        let LaneMask { runs, segs } = self;
        let mut start = 0usize;
        for s in segs.iter() {
            let plen = s.len as usize;
            if s.stride == 0 || plen == 1 {
                push(runs, start, plen, s.base != 0);
            } else {
                if !progression_exact(s.base, s.stride, plen) {
                    return Err(MaskError::Lanes);
                }
                // Exact ⇒ the progression hits zero at most once, at
                // k = −base/stride when that divides evenly.
                let (b, st) = (s.base as i128, s.stride as i128);
                let zero = if (-b).rem_euclid(st.abs()) == 0 {
                    let k = (-b).div_euclid(st);
                    (k >= 0 && (k as usize) < plen).then_some(k as usize)
                } else {
                    None
                };
                match zero {
                    Some(k) => {
                        push(runs, start, k, true);
                        push(runs, start + k, 1, false);
                        push(runs, start + k + 1, plen - k - 1, true);
                    }
                    None => push(runs, start, plen, true),
                }
            }
            start += plen;
            if runs.len() > budget {
                return Err(MaskError::Budget);
            }
        }
        Ok(())
    }

    /// The mask's runs, in lane order, alternating set/clear.
    #[inline]
    pub fn runs(&self) -> &[MaskRun] {
        &self.runs
    }

    /// Whether every lane is selected.
    pub fn all_set(&self) -> bool {
        self.runs.iter().all(|r| r.set)
    }

    /// Whether every lane is masked out.
    pub fn all_clear(&self) -> bool {
        self.runs.iter().all(|r| !r.set)
    }
}

/// The result of a closed-form ALU evaluation over a run of lanes: at
/// most three affine runs covering the lanes in order (a comparison of an
/// affine value against a bound yields zeros, a crossover, and ones; all
/// purely affine results are a single run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AffineRuns {
    runs: [Seg; 3],
    n: usize,
}

impl AffineRuns {
    fn one(len: usize, base: Word, stride: Word) -> AffineRuns {
        let mut r = AffineRuns::default();
        r.push(len, base, stride);
        r
    }

    fn push(&mut self, len: usize, base: Word, stride: Word) {
        if len == 0 {
            return;
        }
        let stride = if len == 1 { 0 } else { stride };
        if self.n > 0 {
            let prev = &mut self.runs[self.n - 1];
            let cont = prev.get(prev.len as usize);
            if base == cont && (stride == prev.stride || len == 1 || prev.len == 1) {
                if prev.len == 1 {
                    prev.stride = stride;
                }
                prev.len += len as u32;
                return;
            }
        }
        self.runs[self.n] = Seg {
            len: len as u32,
            base,
            stride,
        };
        self.n += 1;
    }

    /// The runs, in lane order.
    #[inline]
    pub fn runs(&self) -> &[Seg] {
        &self.runs[..self.n]
    }

    /// Value of lane `k` (relative to the run list's first lane).
    pub fn get(&self, k: usize) -> Word {
        let mut k = k;
        for s in self.runs() {
            if k < s.len as usize {
                return s.get(k);
            }
            k -= s.len as usize;
        }
        0
    }
}

/// Whether the exact (unwrapped) progression `base + stride·k` stays
/// within `Word` range for all `k in [0, len)` — i.e. wrapping per-lane
/// evaluation agrees with exact integer arithmetic over the run.
#[inline]
fn progression_exact(base: Word, stride: Word, len: usize) -> bool {
    if len == 0 {
        return true;
    }
    let last = base as i128 + stride as i128 * (len - 1) as i128;
    last >= Word::MIN as i128 && last <= Word::MAX as i128
}

/// Lane-ordered region lengths `(a, b, c)` of the sign of the exact
/// affine `d(k) = db + ds·k` over `k in [0, len)`, together with the sign
/// of each region: returns `[(len, ordering)]` where ordering is the
/// comparison of `d(k)` against 0. `ds` may be any sign.
fn sign_regions(db: i128, ds: i128, len: usize) -> [(usize, core::cmp::Ordering); 3] {
    use core::cmp::Ordering::*;
    let n = len as i128;
    if ds == 0 {
        return [(len, db.cmp(&0)), (0, Equal), (0, Equal)];
    }
    // Reflect a decreasing progression so we can always count an
    // increasing one, then un-reflect the region order.
    let (b, s, flip) = if ds > 0 {
        (db, ds, false)
    } else {
        (db + ds * (n - 1), -ds, true)
    };
    // d(k) < 0  ⟺  k < -b/s ; d(k) ≤ 0  ⟺  k ≤ -b/s.
    let clamp = |x: i128| x.clamp(0, n) as usize;
    let n_lt = clamp((-b).div_euclid(s) + ((-b).rem_euclid(s) != 0) as i128);
    let n_le = clamp((-b).div_euclid(s) + 1);
    let (lt, eq, gt) = (n_lt, n_le - n_lt, len - n_le);
    if flip {
        [(gt, Greater), (eq, Equal), (lt, Less)]
    } else {
        [(lt, Less), (eq, Equal), (gt, Greater)]
    }
}

/// Closed-form evaluation of `op` over a run of `len` lanes whose
/// operands are arithmetic progressions: operand lane `k` reads
/// `base + stride·k` (wrapping). Returns the result as at most three
/// affine runs, or `None` when the op escapes the affine form (the
/// caller falls back to per-lane evaluation). The result is bit-exact
/// with per-lane [`AluOp::eval`] — comparisons and min/max, which are
/// not modular, are only folded when both progressions stay in exact
/// range ([`progression_exact`]).
pub fn affine_alu(
    op: AluOp,
    (ab, astride): (Word, Word),
    (bb, bstride): (Word, Word),
    len: usize,
) -> Option<AffineRuns> {
    use core::cmp::Ordering;
    if len == 0 {
        return Some(AffineRuns::default());
    }
    // Unaries and modular-linear ops first: these are exact under
    // wrapping for any strides (addition and constant multiplication are
    // ring homomorphisms mod 2^64).
    match op {
        AluOp::Mov => return Some(AffineRuns::one(len, ab, astride)),
        AluOp::Neg => {
            return Some(AffineRuns::one(
                len,
                ab.wrapping_neg(),
                astride.wrapping_neg(),
            ))
        }
        AluOp::Not => {
            // !x = -x - 1, lane-wise.
            return Some(AffineRuns::one(len, !ab, astride.wrapping_neg()));
        }
        AluOp::Add => {
            return Some(AffineRuns::one(
                len,
                ab.wrapping_add(bb),
                astride.wrapping_add(bstride),
            ))
        }
        AluOp::Sub => {
            return Some(AffineRuns::one(
                len,
                ab.wrapping_sub(bb),
                astride.wrapping_sub(bstride),
            ))
        }
        AluOp::Mul if bstride == 0 => {
            return Some(AffineRuns::one(
                len,
                ab.wrapping_mul(bb),
                astride.wrapping_mul(bb),
            ))
        }
        AluOp::Mul if astride == 0 => {
            return Some(AffineRuns::one(
                len,
                bb.wrapping_mul(ab),
                bstride.wrapping_mul(ab),
            ))
        }
        _ => {}
    }
    // Everything below needs uniform-or-exact operands; fold both-uniform
    // through the scalar ALU for any remaining op.
    if astride == 0 && bstride == 0 {
        return Some(AffineRuns::one(len, op.eval(ab, bb), 0));
    }
    match op {
        AluOp::Shl if bstride == 0 => {
            // x << k multiplies by 2^k mod 2^64: still modular-linear.
            Some(AffineRuns::one(
                len,
                ab.wrapping_shl(shamt(bb)),
                astride.wrapping_shl(shamt(bb)),
            ))
        }
        AluOp::Slt
        | AluOp::Sle
        | AluOp::Seq
        | AluOp::Sne
        | AluOp::Sgt
        | AluOp::Sge
        | AluOp::Min
        | AluOp::Max => {
            if !progression_exact(ab, astride, len) || !progression_exact(bb, bstride, len) {
                return None;
            }
            // Sign of d(k) = a(k) - b(k), exactly (operands unwrapped, so
            // the i128 difference is the true difference).
            let db = ab as i128 - bb as i128;
            let ds = astride as i128 - bstride as i128;
            let mut out = AffineRuns::default();
            let mut at = 0usize;
            for (rlen, ord) in sign_regions(db, ds, len) {
                if rlen == 0 {
                    continue;
                }
                match op {
                    AluOp::Min => {
                        // d ≤ 0 → a, else b (ties read identically).
                        let take_a = ord != Ordering::Greater;
                        let (vb, vs) = if take_a { (ab, astride) } else { (bb, bstride) };
                        out.push(rlen, vb.wrapping_add(vs.wrapping_mul(at as Word)), vs);
                    }
                    AluOp::Max => {
                        let take_a = ord != Ordering::Less;
                        let (vb, vs) = if take_a { (ab, astride) } else { (bb, bstride) };
                        out.push(rlen, vb.wrapping_add(vs.wrapping_mul(at as Word)), vs);
                    }
                    _ => {
                        let truthy = match op {
                            AluOp::Slt => ord == Ordering::Less,
                            AluOp::Sle => ord != Ordering::Greater,
                            AluOp::Seq => ord == Ordering::Equal,
                            AluOp::Sne => ord != Ordering::Equal,
                            AluOp::Sgt => ord == Ordering::Greater,
                            AluOp::Sge => ord != Ordering::Less,
                            _ => unreachable!(),
                        };
                        out.push(rlen, truthy as Word, 0);
                    }
                }
                at += rlen;
            }
            Some(out)
        }
        _ => None,
    }
}

/// The register file of one flow: `R` thick values. Index 0 is the
/// hardwired zero register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThickRegs {
    regs: Vec<ThickValue>,
}

impl ThickRegs {
    /// `nregs` zeroed registers.
    pub fn new(nregs: usize) -> ThickRegs {
        ThickRegs {
            regs: vec![ThickValue::zero(); nregs],
        }
    }

    /// Number of registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file is empty (never true in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The thick value of register `r`.
    #[inline]
    pub fn value(&self, r: tcf_isa::reg::Reg) -> &ThickValue {
        &self.regs[r.index()]
    }

    /// Thread `i`'s view of register `r`.
    #[inline]
    pub fn read(&self, r: tcf_isa::reg::Reg, i: usize) -> Word {
        self.regs[r.index()].get(i)
    }

    /// Writes thread `i`'s view of register `r` (r0 writes discarded).
    #[inline]
    pub fn write(&mut self, r: tcf_isa::reg::Reg, i: usize, v: Word, thickness: usize) {
        if !r.is_zero() {
            self.regs[r.index()].set(i, v, thickness);
        }
    }

    /// Writes a uniform value to register `r`.
    #[inline]
    pub fn write_uniform(&mut self, r: tcf_isa::reg::Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = ThickValue::Uniform(v);
        }
    }

    /// Replaces register `r` wholesale.
    #[inline]
    pub fn write_value(&mut self, r: tcf_isa::reg::Reg, v: ThickValue) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Writes `values` to the contiguous lane range starting at `base` of
    /// register `r` — exactly equivalent to calling
    /// [`write`](ThickRegs::write) once per lane in ascending order, but
    /// with one representation decision for the whole run: the register
    /// stays uniform when every lane agrees with it, and promotes with a
    /// single bulk copy otherwise. The thick-execution merge replays
    /// register runs through here.
    ///
    /// Returns whether a *compressed* (`Affine`/`Segments`) value decayed
    /// to explicit lanes — the `lane_write` decay reason.
    pub fn write_lanes(
        &mut self,
        r: tcf_isa::reg::Reg,
        base: usize,
        values: &[Word],
        thickness: usize,
    ) -> bool {
        if r.is_zero() || values.is_empty() {
            return false;
        }
        let end = base + values.len();
        match &mut self.regs[r.index()] {
            ThickValue::Uniform(u) => {
                let u = *u;
                // Per-lane `set` leaves a uniform register untouched until
                // the first disagreeing lane, then promotes to length
                // `max(thickness, lane + 1)` and extends lane by lane.
                let Some(p) = lanes::first_mismatch_uniform(values, u) else {
                    return false;
                };
                let first = base + p;
                let mut vs = vec![u; thickness.max(first + 1).max(end)];
                vs[first..end].copy_from_slice(&values[p..]);
                self.regs[r.index()] = ThickValue::PerThread(vs);
                false
            }
            ThickValue::PerThread(vs) => {
                if vs.len() < end {
                    vs.resize(end, 0);
                }
                vs[base..end].copy_from_slice(values);
                false
            }
            cur @ (ThickValue::Affine { .. } | ThickValue::Segments(_)) => {
                // Per-lane `set` on a compressed value is a no-op until
                // the first disagreeing lane, then decays to lanes of
                // length `max(thickness, lane + 1)` and extends from
                // there.
                let Some(p) = cur.first_mismatch(base, values) else {
                    return false;
                };
                let first = base + p;
                let mut vs = cur.materialize(thickness.max(first + 1));
                if vs.len() < end {
                    vs.resize(end, 0);
                }
                vs[first..end].copy_from_slice(&values[p..]);
                *cur = ThickValue::PerThread(vs);
                true
            }
        }
    }

    /// Writes the arithmetic progression `vbase + k·vstride` (wrapping)
    /// to the `count` lanes starting at `base` of register `r` — the
    /// value-level equivalent of [`write_lanes`](ThickRegs::write_lanes)
    /// for a run the caller holds in compressed form. Lanes below
    /// `max(thickness, base + count)` read exactly what the per-lane
    /// replay produces; lanes beyond may read the extended progression
    /// where the replay's vector would read 0, which is unobservable
    /// because thickness changes decay compressed registers first. The
    /// stored representation is kept compressed (`Uniform`, `Affine` or
    /// `Segments`) whenever the register was compressed, decaying
    /// per-lane only when it already held explicit lanes.
    pub fn write_affine(
        &mut self,
        r: tcf_isa::reg::Reg,
        base: usize,
        count: usize,
        vbase: Word,
        vstride: Word,
        thickness: usize,
    ) {
        if r.is_zero() || count == 0 {
            return;
        }
        let end = base + count;
        let run = Seg {
            len: count as u32,
            base: vbase,
            stride: if count == 1 { 0 } else { vstride },
        };
        let reg = &mut self.regs[r.index()];
        match reg {
            ThickValue::PerThread(vs) => {
                if vs.len() < end {
                    vs.resize(end, 0);
                }
                let mut v = vbase;
                for slot in &mut vs[base..end] {
                    *slot = v;
                    v = v.wrapping_add(vstride);
                }
            }
            _ => {
                // Whole-register overwrite: the common shape (every slice
                // of an instruction writing one progression) stays
                // allocation-free.
                if base == 0 && end >= thickness {
                    *reg = ThickValue::affine(vbase, vstride);
                    return;
                }
                // Splice the run into the compressed value: keep what is
                // below `base` and above `end`, canonicalize, collapse.
                let total = thickness.max(end);
                let mut segs: Vec<Seg> = Vec::with_capacity(4);
                reg.append_range_segs(0, base, &mut segs);
                segs.push(run);
                reg.append_range_segs(end, total, &mut segs);
                *reg = ThickValue::from_segs(segs, thickness);
            }
        }
    }

    /// The lane range `[lo, lo + len)` of every register as a fresh
    /// register file of thickness `len` (see
    /// [`ThickValue::slice_range`]). Splitting a flow into sub-blocks —
    /// the Balanced bound boundary, an async budget boundary, a branch
    /// divergence frontier — costs O(#runs) per register, never
    /// O(thickness), unless a register already holds explicit lanes.
    pub fn slice_lanes(&self, lo: usize, len: usize) -> ThickRegs {
        ThickRegs {
            regs: self.regs.iter().map(|v| v.slice_range(lo, len)).collect(),
        }
    }

    /// The flow-wise (thread 0) view as a fresh register file — exactly
    /// what cloning and then
    /// [`collapse_to_flowwise`](ThickRegs::collapse_to_flowwise) produces,
    /// but built uniform-by-uniform so the parent's per-thread lane
    /// vectors are never cloned just to be thrown away.
    pub fn clone_flowwise(&self) -> ThickRegs {
        ThickRegs {
            regs: self
                .regs
                .iter()
                .map(|v| ThickValue::Uniform(v.get(0)))
                .collect(),
        }
    }

    /// Collapses every register to the flow-wise (thread 0) view — the
    /// state a child flow inherits across a `split`, and the state a flow
    /// keeps when its thickness changes (per-thread data is meaningless
    /// under a new thickness).
    pub fn collapse_to_flowwise(&mut self) {
        for r in &mut self.regs {
            if !r.is_uniform() {
                *r = ThickValue::Uniform(r.get(0));
            }
        }
    }

    /// Decays every compressed affine register to explicit lanes at the
    /// given thickness (see [`ThickValue::decay_compressed`]). Called
    /// before a thickness change so the unbounded affine forms cannot
    /// leak values past the old thickness. Returns how many registers
    /// actually decayed (feeds the `setthick` decay-reason counter).
    pub fn decay_compressed(&mut self, thickness: usize) -> u64 {
        let mut n = 0u64;
        for r in &mut self.regs {
            if r.decay_compressed(thickness) {
                n += 1;
            }
        }
        n
    }

    /// Number of registers currently needing per-thread storage (used by
    /// the Table 1 registers-per-thread measurement).
    pub fn per_thread_count(&self) -> usize {
        self.regs.iter().filter(|r| !r.is_uniform()).count()
    }

    /// Test support: rewrites every register into its fully materialized
    /// per-thread form. Semantically the identity — every implicit thread
    /// reads the same words as before — but it defeats the uniform
    /// representation, forcing execution down the general thick path. The
    /// scalarization property test uses this to pin the uniform fast path
    /// against per-thread execution.
    pub fn materialize_all(&mut self, thickness: usize) {
        for v in &mut self.regs {
            *v = ThickValue::PerThread(v.materialize(thickness.max(1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::reg::r;

    /// Expands a mask to per-lane booleans via the runs.
    fn mask_lanes(m: &LaneMask, len: usize) -> Vec<bool> {
        let mut out = vec![false; len];
        let mut covered = 0;
        for r in m.runs() {
            out[r.start..r.start + r.len].fill(r.set);
            covered += r.len;
        }
        assert_eq!(covered, len, "runs must tile the slice");
        out
    }

    #[test]
    fn lane_mask_matches_truthiness_per_lane() {
        let vals: Vec<(&str, ThickValue)> = vec![
            ("uniform-true", ThickValue::Uniform(3)),
            ("uniform-false", ThickValue::Uniform(0)),
            (
                "affine-crossing",
                ThickValue::Affine {
                    base: -6,
                    stride: 2,
                },
            ),
            (
                "affine-offset",
                ThickValue::Affine {
                    base: -5,
                    stride: 2,
                },
            ),
            (
                "affine-neg",
                ThickValue::Affine {
                    base: 9,
                    stride: -3,
                },
            ),
            (
                "segments",
                // Lanes [1, 1, 0, 0, 0, 7, 8, 9, 0, 2].
                ThickValue::Segments(vec![
                    Seg {
                        len: 2,
                        base: 1,
                        stride: 0,
                    },
                    Seg {
                        len: 3,
                        base: 0,
                        stride: 0,
                    },
                    Seg {
                        len: 3,
                        base: 7,
                        stride: 1,
                    },
                    Seg {
                        len: 1,
                        base: 0,
                        stride: 0,
                    },
                    Seg {
                        len: 1,
                        base: 2,
                        stride: 0,
                    },
                ]),
            ),
        ];
        for (name, v) in &vals {
            for (lo, len) in [(0usize, 10usize), (0, 1), (3, 5), (9, 1), (0, 0)] {
                let mut m = LaneMask::default();
                m.rebuild(v, lo, len, usize::MAX)
                    .unwrap_or_else(|e| panic!("{name}: {e:?}"));
                let got = mask_lanes(&m, len);
                let want: Vec<bool> = (lo..lo + len).map(|k| v.get(k) != 0).collect();
                assert_eq!(got, want, "{name} lo={lo} len={len}");
                // Alternation: adjacent runs never share truthiness.
                for w in m.runs().windows(2) {
                    assert_ne!(w[0].set, w[1].set, "{name}: runs must alternate");
                }
            }
        }
    }

    #[test]
    fn lane_mask_rejects_lanes_and_budget() {
        let mut m = LaneMask::default();
        assert_eq!(
            m.rebuild(&ThickValue::PerThread(vec![1, 0, 1]), 0, 3, usize::MAX),
            Err(MaskError::Lanes)
        );
        // 0,1,0,1,... segments — every lane its own run, blows a budget of 3.
        let v = ThickValue::Segments(
            (0..8)
                .flat_map(|_| {
                    [
                        Seg {
                            len: 1,
                            base: 0,
                            stride: 0,
                        },
                        Seg {
                            len: 1,
                            base: 1,
                            stride: 0,
                        },
                    ]
                })
                .collect(),
        );
        assert_eq!(m.rebuild(&v, 0, 16, 3), Err(MaskError::Budget));
        assert!(m.rebuild(&v, 0, 16, 16).is_ok());
    }

    #[test]
    fn piece_runs_and_run_count_cover_representations() {
        let mut buf = Vec::new();
        assert!(ThickValue::Uniform(5).piece_runs(2, 4, &mut buf));
        assert_eq!(
            buf,
            vec![Seg {
                len: 4,
                base: 5,
                stride: 0
            }]
        );
        buf.clear();
        assert!(ThickValue::Affine {
            base: 10,
            stride: 3
        }
        .piece_runs(1, 3, &mut buf));
        assert_eq!(
            buf,
            vec![Seg {
                len: 3,
                base: 13,
                stride: 3
            }]
        );
        buf.clear();
        let segs = ThickValue::Segments(vec![
            Seg {
                len: 3,
                base: 7,
                stride: 0,
            },
            Seg {
                len: 3,
                base: 1,
                stride: 1,
            },
        ]);
        assert!(segs.piece_runs(0, 6, &mut buf));
        let total: usize = buf.iter().map(|s| s.len as usize).sum();
        assert_eq!(total, 6);
        buf.clear();
        assert!(!ThickValue::PerThread(vec![1, 2]).piece_runs(0, 2, &mut buf));
        assert_eq!(ThickValue::Uniform(0).run_count(), 1);
        assert_eq!(ThickValue::Affine { base: 0, stride: 1 }.run_count(), 1);
        assert!(segs.run_count() >= 2);
        assert_eq!(ThickValue::PerThread(vec![1]).run_count(), 0);
    }

    #[test]
    fn merge_segs_coalesces_single_lane_rejoins() {
        // Repeated branch-rejoin writebacks produce adjacent single-lane
        // segments that together form a progression; canonicalization must
        // fold them so run-count doesn't grow monotonically.
        let v = ThickValue::from_segs(
            vec![
                Seg {
                    len: 1,
                    base: 10,
                    stride: 0,
                },
                Seg {
                    len: 1,
                    base: 12,
                    stride: 0,
                },
                Seg {
                    len: 1,
                    base: 14,
                    stride: 0,
                },
                Seg {
                    len: 1,
                    base: 16,
                    stride: 0,
                },
            ],
            4,
        );
        assert_eq!(v.run_count(), 1);
        assert_eq!(
            v,
            ThickValue::Affine {
                base: 10,
                stride: 2
            }
        );
        // Uniform rejoin: equal single lanes collapse too.
        let u = ThickValue::from_segs(
            vec![
                Seg {
                    len: 1,
                    base: 5,
                    stride: 0,
                },
                Seg {
                    len: 1,
                    base: 5,
                    stride: 0,
                },
                Seg {
                    len: 2,
                    base: 5,
                    stride: 0,
                },
            ],
            4,
        );
        assert_eq!(u, ThickValue::Uniform(5));
    }

    #[test]
    fn uniform_reads_everywhere() {
        let v = ThickValue::Uniform(7);
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(1_000_000), 7);
        assert_eq!(v.as_uniform(), Some(7));
    }

    #[test]
    fn set_same_value_stays_uniform() {
        let mut v = ThickValue::Uniform(7);
        v.set(3, 7, 8);
        assert!(v.is_uniform());
    }

    #[test]
    fn set_different_value_promotes() {
        let mut v = ThickValue::Uniform(7);
        v.set(2, 9, 4);
        assert!(!v.is_uniform());
        assert_eq!(v.get(0), 7);
        assert_eq!(v.get(2), 9);
        assert_eq!(v.get(3), 7);
    }

    #[test]
    fn per_thread_reads_beyond_length_are_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.get(5), 0);
    }

    #[test]
    fn normalize_recompresses() {
        let mut v = ThickValue::PerThread(vec![4, 4, 4]);
        assert!(v.normalize(3));
        assert_eq!(v, ThickValue::Uniform(4));
        let mut v = ThickValue::PerThread(vec![4, 5, 4]);
        assert!(!v.normalize(3));
    }

    #[test]
    fn materialize_pads_with_zero() {
        let v = ThickValue::PerThread(vec![1, 2]);
        assert_eq!(v.materialize(4), vec![1, 2, 0, 0]);
        let u = ThickValue::Uniform(9);
        assert_eq!(u.materialize(3), vec![9, 9, 9]);
    }

    #[test]
    fn materialize_into_reuses_and_matches_materialize() {
        let mut buf = vec![99; 16];
        let v = ThickValue::PerThread(vec![1, 2]);
        v.materialize_into(4, &mut buf);
        assert_eq!(buf, v.materialize(4));
        let u = ThickValue::Uniform(7);
        u.materialize_into(2, &mut buf);
        assert_eq!(buf, u.materialize(2));
        u.materialize_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn uniform_over_matches_normalize_without_mutating() {
        let cases = vec![
            (ThickValue::Uniform(3), 4),
            (ThickValue::PerThread(vec![4, 4, 4]), 3),
            (ThickValue::PerThread(vec![4, 5, 4]), 3),
            // Beyond-length entries read 0: uniform over 4 iff first is 0.
            (ThickValue::PerThread(vec![0, 0]), 4),
            (ThickValue::PerThread(vec![2, 2]), 4),
            (ThickValue::PerThread(vec![]), 2),
            (ThickValue::PerThread(vec![1, 1, 9]), 2),
        ];
        for (v, t) in cases {
            let before = v.clone();
            let expect = {
                let mut c = v.clone();
                c.normalize(t);
                c.as_uniform()
            };
            assert_eq!(v.uniform_over(t), expect, "{v:?} over {t}");
            assert_eq!(v, before, "uniform_over must not mutate");
        }
    }

    #[test]
    fn regs_r0_hardwired() {
        let mut f = ThickRegs::new(8);
        f.write(r(0), 0, 42, 4);
        assert_eq!(f.read(r(0), 0), 0);
        f.write_uniform(r(0), 42);
        assert_eq!(f.read(r(0), 0), 0);
    }

    #[test]
    fn regs_collapse_to_flowwise() {
        let mut f = ThickRegs::new(4);
        f.write(r(1), 0, 10, 3);
        f.write(r(1), 1, 20, 3);
        f.write_uniform(r(2), 5);
        assert_eq!(f.per_thread_count(), 1);
        f.collapse_to_flowwise();
        assert_eq!(f.per_thread_count(), 0);
        assert_eq!(f.read(r(1), 2), 10); // thread 0's view everywhere
        assert_eq!(f.read(r(2), 0), 5);
    }

    #[test]
    fn write_lanes_matches_per_lane_writes() {
        // Bulk lane writes must leave the register bit-identical to the
        // ascending per-lane replay they replace — including the stored
        // representation, not just the values threads read.
        let starts = [
            ThickValue::Uniform(7),
            ThickValue::Uniform(0),
            ThickValue::PerThread(vec![1, 2, 3]),
            ThickValue::PerThread(vec![]),
        ];
        let runs: [(usize, &[Word]); 6] = [
            (0, &[7, 7, 7]),    // all agree with Uniform(7)
            (0, &[7, 9, 7]),    // disagree mid-run
            (2, &[5, 6]),       // offset run
            (5, &[1]),          // run beyond current length
            (0, &[]),           // empty run
            (1, &[2, 2, 2, 2]), // run crossing the stored length
        ];
        for start in &starts {
            for &(base, values) in &runs {
                for thickness in [1usize, 3, 6] {
                    let mut bulk = ThickRegs::new(2);
                    bulk.write_value(r(1), start.clone());
                    let mut lanes = ThickRegs::new(2);
                    lanes.write_value(r(1), start.clone());
                    bulk.write_lanes(r(1), base, values, thickness);
                    for (j, &v) in values.iter().enumerate() {
                        lanes.write(r(1), base + j, v, thickness);
                    }
                    assert_eq!(
                        bulk.value(r(1)),
                        lanes.value(r(1)),
                        "start={start:?} base={base} values={values:?} t={thickness}"
                    );
                }
            }
        }
    }

    #[test]
    fn write_tracks_thickness_for_promotion() {
        let mut f = ThickRegs::new(4);
        f.write_uniform(r(3), 1);
        f.write(r(3), 2, 9, 6);
        // Threads 0..6 except 2 should still see 1.
        assert_eq!(f.read(r(3), 0), 1);
        assert_eq!(f.read(r(3), 2), 9);
        assert_eq!(f.read(r(3), 5), 1);
    }

    #[test]
    fn affine_reads_progression() {
        let v = ThickValue::affine(10, 3);
        assert_eq!(v.get(0), 10);
        assert_eq!(v.get(4), 22);
        assert!(!v.is_uniform());
        assert_eq!(v.as_uniform(), None);
        // Stride 0 canonicalizes to Uniform.
        assert_eq!(ThickValue::affine(7, 0), ThickValue::Uniform(7));
        // Wrapping lanes.
        let w = ThickValue::affine(Word::MAX, 1);
        assert_eq!(w.get(1), Word::MIN);
    }

    #[test]
    fn segments_read_piecewise_and_zero_beyond() {
        let v = ThickValue::Segments(vec![
            Seg {
                len: 2,
                base: 5,
                stride: 0,
            },
            Seg {
                len: 3,
                base: 100,
                stride: -2,
            },
        ]);
        assert_eq!(
            (0..7).map(|i| v.get(i)).collect::<Vec<_>>(),
            vec![5, 5, 100, 98, 96, 0, 0]
        );
        assert_eq!(v.materialize(7), vec![5, 5, 100, 98, 96, 0, 0]);
    }

    #[test]
    fn affine_set_agreeing_value_keeps_compression() {
        // Satellite regression: `set` on Affine must stay compressed when
        // the written value matches the progression — including at both
        // thickness boundaries.
        for (i, t) in [(0usize, 1usize), (3, 4), (0, 4), (2, 4), (7, 4)] {
            let mut v = ThickValue::affine(10, 3);
            v.set(i, 10 + 3 * i as Word, t);
            assert_eq!(
                v,
                ThickValue::affine(10, 3),
                "agreeing set at i={i} t={t} must not decay"
            );
        }
    }

    #[test]
    fn affine_set_decays_exactly_like_per_thread_promotion() {
        // Disagreeing `set` must land in the same PerThread state a
        // never-compressed register would be in: length
        // max(thickness, i+1), progression values, write applied.
        let cases = [(0usize, 1usize), (0, 4), (2, 4), (3, 4), (5, 4), (0, 0)];
        for (i, t) in cases {
            let mut v = ThickValue::affine(10, 3);
            v.set(i, -1, t);
            let mut want: Vec<Word> = (0..t.max(i + 1) as Word).map(|k| 10 + 3 * k).collect();
            want[i] = -1;
            assert_eq!(v, ThickValue::PerThread(want), "set at i={i} t={t}");
        }
        // Thickness-1 boundary: a single-lane affine write decays to a
        // one-element vector, not an empty or progression-extended one.
        let mut v = ThickValue::affine(4, 9);
        v.set(0, 0, 1);
        assert_eq!(v, ThickValue::PerThread(vec![0]));
        // index == thickness - 1 boundary.
        let mut v = ThickValue::affine(0, 1);
        v.set(3, 99, 4);
        assert_eq!(v, ThickValue::PerThread(vec![0, 1, 2, 99]));
    }

    #[test]
    fn segments_set_boundaries_match_per_thread_promotion() {
        let seg = || {
            ThickValue::Segments(vec![
                Seg {
                    len: 2,
                    base: 1,
                    stride: 0,
                },
                Seg {
                    len: 2,
                    base: 8,
                    stride: 1,
                },
            ])
        };
        // Agreeing writes keep the segments.
        let mut v = seg();
        v.set(3, 9, 4);
        assert_eq!(v, seg());
        // Beyond-total lanes read 0; writing 0 there stays compressed.
        let mut v = seg();
        v.set(5, 0, 4);
        assert_eq!(v, seg());
        // Disagreeing write at the last lane decays at max(t, i+1).
        let mut v = seg();
        v.set(3, -7, 4);
        assert_eq!(v, ThickValue::PerThread(vec![1, 1, 8, -7]));
        // Disagreeing write past the thickness extends with the
        // materialized reads (zeros past the total).
        let mut v = seg();
        v.set(5, 2, 4);
        assert_eq!(v, ThickValue::PerThread(vec![1, 1, 8, 9, 0, 2]));
    }

    #[test]
    fn normalize_and_uniform_over_handle_compressed_forms() {
        let mut v = ThickValue::affine(6, 5);
        assert!(!v.normalize(3));
        assert!(v.normalize(1));
        assert_eq!(v, ThickValue::Uniform(6));
        let mut v = ThickValue::Segments(vec![
            Seg {
                len: 1,
                base: 4,
                stride: 0,
            },
            Seg {
                len: 2,
                base: 4,
                stride: 3,
            },
        ]);
        assert_eq!(v.uniform_over(2), Some(4));
        assert_eq!(v.uniform_over(3), None);
        assert!(v.normalize(2));
        assert_eq!(v, ThickValue::Uniform(4));
    }

    #[test]
    fn decay_compressed_freezes_the_old_thickness_view() {
        let mut v = ThickValue::affine(0, 2);
        v.decay_compressed(3);
        assert_eq!(v, ThickValue::PerThread(vec![0, 2, 4]));
        // After decay, lanes past the old thickness read 0 — the same
        // view a per-thread register has across a thickness increase.
        assert_eq!(v.get(5), 0);
        // Uniform and PerThread are untouched.
        let mut u = ThickValue::Uniform(9);
        u.decay_compressed(4);
        assert_eq!(u, ThickValue::Uniform(9));
    }

    #[test]
    fn decay_compressed_at_the_thickness_edges() {
        // Thickness 0 clamps to one materialized lane: a flow with no
        // implicit threads still holds well-formed per-thread state.
        let mut v = ThickValue::affine(5, 3);
        v.decay_compressed(0);
        assert_eq!(v, ThickValue::PerThread(vec![5]));

        // Thickness 1 freezes exactly the first lane; later lanes read 0
        // like any short per-thread vector.
        let mut v = ThickValue::affine(5, 3);
        v.decay_compressed(1);
        assert_eq!(v, ThickValue::PerThread(vec![5]));
        assert_eq!(v.get(4), 0);

        let mut s = ThickValue::Segments(vec![
            Seg {
                len: 2,
                base: 7,
                stride: 1,
            },
            Seg {
                len: 2,
                base: 100,
                stride: 0,
            },
        ]);
        s.decay_compressed(1);
        assert_eq!(s, ThickValue::PerThread(vec![7]));
    }

    #[test]
    fn regs_decay_compressed_pins_the_materialized_view() {
        // Every compressed register decays to exactly its materialized
        // lanes at the decay thickness; uniform and per-thread registers
        // are untouched (unlike `materialize_all`, which forces
        // everything per-thread).
        let thickness = 4;
        let mut regs = ThickRegs::new(5);
        regs.write_affine(r(1), 0, thickness, 10, 2, thickness); // affine
        regs.write(r(2), 2, 9, thickness); // per-thread
        regs.write_uniform(r(3), 6);
        regs.write_value(
            r(4),
            ThickValue::Segments(vec![
                Seg {
                    len: 2,
                    base: 1,
                    stride: 1,
                },
                Seg {
                    len: 2,
                    base: 50,
                    stride: -3,
                },
            ]),
        );
        let mut reference = regs.clone();
        reference.materialize_all(thickness);

        regs.decay_compressed(thickness);
        for reg in [r(1), r(2), r(3), r(4)] {
            for lane in 0..thickness {
                assert_eq!(
                    regs.read(reg, lane),
                    reference.read(reg, lane),
                    "reg {reg:?} lane {lane}"
                );
            }
        }
        // The formerly compressed registers read 0 past the decay
        // thickness, exactly like the materialized vectors.
        for reg in [r(1), r(4)] {
            for lane in thickness..thickness + 2 {
                assert_eq!(regs.read(reg, lane), 0, "reg {reg:?} lane {lane}");
            }
        }
        // Affine and segment registers decayed; uniform stayed uniform.
        assert_eq!(regs.per_thread_count(), 3);
    }

    #[test]
    fn affine_over_extracts_progressions() {
        assert_eq!(ThickValue::Uniform(3).affine_over(5, 10), Some((3, 0)));
        assert_eq!(ThickValue::affine(10, 3).affine_over(2, 4), Some((16, 3)));
        let segs = ThickValue::Segments(vec![
            Seg {
                len: 4,
                base: 0,
                stride: 2,
            },
            Seg {
                len: 4,
                base: 50,
                stride: 0,
            },
        ]);
        assert_eq!(segs.affine_over(1, 3), Some((2, 2)));
        assert_eq!(segs.affine_over(4, 4), Some((50, 0)));
        assert_eq!(segs.affine_over(2, 4), None); // straddles pieces
        assert_eq!(segs.affine_over(8, 3), Some((0, 0))); // zero tail
        assert_eq!(ThickValue::PerThread(vec![0, 1, 2]).affine_over(0, 3), None);
    }

    #[test]
    fn write_affine_matches_per_lane_replay() {
        // write_affine must leave every lane reading exactly what the
        // ascending per-lane replay produces, for every starting
        // representation — and keep compressed starts compressed.
        let starts = [
            ThickValue::Uniform(7),
            ThickValue::affine(0, 1),
            ThickValue::affine(-5, 3),
            ThickValue::Segments(vec![
                Seg {
                    len: 3,
                    base: 2,
                    stride: 4,
                },
                Seg {
                    len: 3,
                    base: 0,
                    stride: 0,
                },
            ]),
            ThickValue::PerThread(vec![9, 8, 7]),
        ];
        let runs = [
            (0usize, 6usize, 0 as Word, 1 as Word), // whole overwrite
            (0, 3, 0, 1),                           // prefix
            (3, 3, 3, 1),                           // suffix continuing lane ids
            (2, 2, 50, 0),                          // interior constant
            (5, 4, -2, -2),                         // crossing the end
            (1, 1, 77, 5),                          // single lane
            (0, 0, 1, 1),                           // empty run
        ];
        for start in &starts {
            for &(base, count, vb, vs) in &runs {
                for t in [1usize, 4, 6] {
                    let mut bulk = ThickRegs::new(2);
                    bulk.write_value(r(1), start.clone());
                    let mut lanes = ThickRegs::new(2);
                    lanes.write_value(r(1), start.clone());
                    bulk.write_affine(r(1), base, count, vb, vs, t);
                    for k in 0..count {
                        lanes.write(r(1), base + k, vb.wrapping_add(vs * k as Word), t);
                    }
                    // Lanes beyond max(thickness, end) are unobservable
                    // (thickness growth decays compressed registers), so
                    // equivalence is checked below that line.
                    let top = t.max(base + count);
                    for i in 0..top {
                        assert_eq!(
                            bulk.value(r(1)).get(i),
                            lanes.value(r(1)).get(i),
                            "lane {i}: start={start:?} run=({base},{count},{vb},{vs}) t={t}"
                        );
                    }
                    if !matches!(start, ThickValue::PerThread(_)) {
                        assert!(
                            !matches!(bulk.value(r(1)), ThickValue::PerThread(_)),
                            "compressed start decayed: start={start:?} run=({base},{count},{vb},{vs}) t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn write_affine_slices_reassemble_to_affine() {
        // Four fragment slices writing consecutive pieces of one
        // progression must merge back into a single Affine value — the
        // shape the parallel engine's per-slice merge produces.
        let mut f = ThickRegs::new(2);
        f.write_value(r(1), ThickValue::Uniform(0));
        for slice in 0..4usize {
            let lo = slice * 256;
            f.write_affine(r(1), lo, 256, lo as Word * 3, 3, 1024);
        }
        assert_eq!(f.value(r(1)), &ThickValue::affine(0, 3));
    }

    #[test]
    fn write_lanes_decays_compressed_forms_like_per_lane_sets() {
        let starts = [
            ThickValue::affine(0, 2),
            ThickValue::Segments(vec![
                Seg {
                    len: 2,
                    base: 3,
                    stride: 0,
                },
                Seg {
                    len: 2,
                    base: 10,
                    stride: 1,
                },
            ]),
        ];
        let runs: [(usize, &[Word]); 4] = [
            (0, &[0, 2, 4]), // agrees with affine start
            (1, &[2, 9]),    // disagrees mid-run
            (5, &[1]),       // beyond current coverage
            (0, &[]),        // empty
        ];
        for start in &starts {
            for &(base, values) in &runs {
                for t in [1usize, 4, 6] {
                    let mut bulk = ThickRegs::new(2);
                    bulk.write_value(r(1), start.clone());
                    let mut lanes = ThickRegs::new(2);
                    lanes.write_value(r(1), start.clone());
                    bulk.write_lanes(r(1), base, values, t);
                    for (j, &v) in values.iter().enumerate() {
                        lanes.write(r(1), base + j, v, t);
                    }
                    assert_eq!(
                        bulk.value(r(1)),
                        lanes.value(r(1)),
                        "start={start:?} base={base} values={values:?} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn affine_alu_matches_scalar_eval() {
        // Every closed-form result must agree lane for lane with the
        // scalar ALU on materialized operands, across all 22 ops and a
        // grid of operand progressions (including wrapping ones).
        let opnds: [(Word, Word); 8] = [
            (0, 1),
            (5, 0),
            (-3, 2),
            (100, -7),
            (0, 0),
            (Word::MAX - 4, 3), // wraps within 8 lanes
            (Word::MIN + 2, -1),
            (2, 63),
        ];
        let len = 8usize;
        for op in AluOp::ALL {
            for a in opnds {
                for b in opnds {
                    let Some(runs) = affine_alu(op, a, b, len) else {
                        continue;
                    };
                    let total: usize = runs.runs().iter().map(|s| s.len as usize).sum();
                    assert_eq!(total, len, "{op:?} a={a:?} b={b:?} covers all lanes");
                    for k in 0..len {
                        let av = a.0.wrapping_add(a.1.wrapping_mul(k as Word));
                        let bv = b.0.wrapping_add(b.1.wrapping_mul(k as Word));
                        assert_eq!(
                            runs.get(k),
                            op.eval(av, bv),
                            "{op:?} lane {k} a={a:?} b={b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn affine_alu_folds_the_hot_shapes() {
        // The shapes the benchmark loop leans on must stay closed (not
        // fall back to per-lane evaluation).
        assert!(affine_alu(AluOp::Add, (0, 1), (1 << 14, 0), 1024).is_some());
        assert!(affine_alu(AluOp::Add, (0, 3), (0, 1), 1024).is_some());
        assert!(affine_alu(AluOp::Mul, (0, 1), (8, 0), 1024).is_some());
        assert!(affine_alu(AluOp::Slt, (0, 1), (512, 0), 1024).is_some());
        // And the comparison splits into the documented ≤3 runs.
        let runs = affine_alu(AluOp::Slt, (0, 1), (512, 0), 1024).unwrap();
        assert_eq!(
            runs.runs(),
            &[
                Seg {
                    len: 512,
                    base: 1,
                    stride: 0
                },
                Seg {
                    len: 512,
                    base: 0,
                    stride: 0
                }
            ]
        );
        // Non-affine algebra escapes: quadratic products, data shifts.
        assert!(affine_alu(AluOp::Mul, (0, 1), (0, 2), 8).is_none());
        assert!(affine_alu(AluOp::And, (0, 1), (3, 0), 8).is_none());
        assert!(affine_alu(AluOp::Shr, (0, 4), (1, 0), 8).is_none());
    }
}
