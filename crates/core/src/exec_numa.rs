//! NUMA-mode slice execution.
//!
//! A flow with thickness `1/T` executes `T` consecutive instructions of a
//! single sequential stream per synchronous step (§3.1). Memory accesses
//! are direct and sequentially consistent: a sequential stream cannot
//! reorder around its own references, and the timing layer serializes them
//! ([`GroupPipeline::run_step`] with `serialize_mem`), which is exactly why
//! NUMA code should target the group's local block rather than the shared
//! memory.
//!
//! [`GroupPipeline::run_step`]: tcf_machine::GroupPipeline::run_step

use tcf_isa::instr::{MemSpace, Operand};
use tcf_isa::word::to_addr;
use tcf_machine::{IssueUnit, UnitKind, UnitSeq};
use tcf_obs::{FlowEvent, Mode};

use crate::decoded::DecodedInst;
use crate::error::{TcfError, TcfFault};
use crate::flow::{ExecMode, Flow, FlowStatus};
use crate::machine::TcfMachine;
use crate::variant::Variant;

impl TcfMachine {
    /// Executes one step's slice (up to `slots` instructions) of NUMA-mode
    /// flow `id`.
    pub(crate) fn run_numa_slice(
        &mut self,
        id: u32,
        units: &mut [Vec<UnitSeq>],
    ) -> Result<(), TcfError> {
        let mut flow = self.flows.remove(&id).expect("flow exists");
        let result = self.numa_slice_inner(&mut flow, units);
        self.flows.insert(id, flow);
        result
    }

    fn numa_slice_inner(
        &mut self,
        flow: &mut Flow,
        units: &mut [Vec<UnitSeq>],
    ) -> Result<(), TcfError> {
        let slots = match flow.mode {
            ExecMode::Numa { slots } => slots,
            ExecMode::Pram => {
                return Err(self.flow_err(
                    flow.id,
                    TcfFault::Internal {
                        what: "numa slice on PRAM-mode flow".into(),
                    },
                ))
            }
        };
        let home = flow.home_group();
        // Consecutive same-kind units of the bunch coalesce into
        // run-length spans (thread rank = slot index), so a long
        // compute-only or local-only stretch of a `1/T` stream reaches the
        // timing layer as O(#kind changes) spans instead of `T` units —
        // the closed-form `ComputeRun`/serialized-`LocalRun` arms of
        // [`GroupPipeline::run_step_seq`] then replay each span in O(1).
        // Shared references stay `One`: a serialized remote round trip
        // must walk the router per message.
        let mut run: Option<UnitSeq> = None;

        for slot in 0..slots {
            let pc = flow.pc;
            // `Copy` fetch from the pre-decoded program: no per-slot clone.
            let instr = match self.decoded.fetch(pc) {
                Some(i) => i,
                None => return Err(self.flow_err(flow.id, TcfFault::PcOutOfRange { pc })),
            };
            self.stats.fetches += 1;
            self.obs
                .emit(self.steps, self.clock, FlowEvent::Fetch { flow: flow.id });
            let mut next_pc = pc + 1;
            let mut unit = IssueUnit::compute(flow.id, 0);

            match instr {
                DecodedInst::Alu { op, rd, ra, rb } => {
                    let a = flow.regs.read(ra, 0);
                    let b = match rb {
                        Operand::Reg(r) => flow.regs.read(r, 0),
                        Operand::Imm(w) => w,
                    };
                    flow.regs.write_uniform(rd, op.eval(a, b));
                }
                DecodedInst::Ldi { rd, imm } => flow.regs.write_uniform(rd, imm),
                DecodedInst::Mfs { rd, sr } => {
                    let v = self.special(flow, 0, sr);
                    flow.regs.write_uniform(rd, v);
                }
                DecodedInst::Sel { rd, cond, rt, rf } => {
                    let v = if flow.regs.read(cond, 0) != 0 {
                        flow.regs.read(rt, 0)
                    } else {
                        match rf {
                            Operand::Reg(r) => flow.regs.read(r, 0),
                            Operand::Imm(w) => w,
                        }
                    };
                    flow.regs.write_uniform(rd, v);
                }
                DecodedInst::Ld {
                    rd,
                    base,
                    off,
                    space,
                } => {
                    let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                    let v = match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                            self.shared
                                .peek(addr)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow.id, 0);
                            self.locals[home]
                                .read(addr)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?
                        }
                    };
                    flow.regs.write_uniform(rd, v);
                }
                DecodedInst::St {
                    rs,
                    base,
                    off,
                    space,
                }
                | DecodedInst::StMasked {
                    rs,
                    base,
                    off,
                    space,
                    ..
                } => {
                    let masked_out = matches!(instr, DecodedInst::StMasked { cond, .. }
                        if flow.regs.read(cond, 0) == 0);
                    let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                    let v = flow.regs.read(rs, 0);
                    if !masked_out {
                        match space {
                            MemSpace::Shared => {
                                unit =
                                    IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                                self.shared
                                    .poke(addr, v)
                                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                            }
                            MemSpace::Local => {
                                unit = IssueUnit::local_mem(flow.id, 0);
                                self.locals[home]
                                    .write(addr, v)
                                    .map_err(|e| self.flow_err(flow.id, e.into()))?;
                            }
                        }
                    }
                }
                DecodedInst::MultiOp {
                    kind,
                    base,
                    off,
                    rs,
                }
                | DecodedInst::MultiPrefix {
                    kind,
                    base,
                    off,
                    rs,
                    ..
                } => {
                    // Sequential stream: read-modify-write; a multiprefix
                    // returns the old value.
                    let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                    let v = flow.regs.read(rs, 0);
                    unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                    let old = self
                        .shared
                        .peek(addr)
                        .map_err(|e| self.flow_err(flow.id, e.into()))?;
                    self.shared
                        .poke(addr, kind.combine(old, v))
                        .map_err(|e| self.flow_err(flow.id, e.into()))?;
                    if let DecodedInst::MultiPrefix { rd, .. } = instr {
                        flow.regs.write_uniform(rd, old);
                    }
                }
                DecodedInst::Jmp { target } => next_pc = self.abs(flow.id, target)?,
                DecodedInst::Br { cond, rs, target } => {
                    if cond.holds(flow.regs.read(rs, 0)) {
                        next_pc = self.abs(flow.id, target)?;
                    }
                }
                DecodedInst::Call { target } => {
                    let dst = self.abs(flow.id, target)?;
                    flow.call_stack.push(pc + 1);
                    next_pc = dst;
                }
                DecodedInst::Ret => match flow.call_stack.pop() {
                    Some(ra) => next_pc = ra,
                    None => return Err(self.flow_err(flow.id, TcfFault::EmptyCallStack)),
                },
                DecodedInst::EndNuma => {
                    flow.pc = pc + 1;
                    self.exit_numa(flow);
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::ModeSwitch {
                            flow: flow.id,
                            mode: Mode::Pram,
                        },
                    );
                    if let Some(prev) = run.take() {
                        units[home].push(prev);
                    }
                    units[home].push(IssueUnit::overhead(flow.id).into());
                    return Ok(());
                }
                DecodedInst::Halt => {
                    flow.status = FlowStatus::Halted;
                    self.halt_absorbed(flow.id);
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::FlowHalted { flow: flow.id },
                    );
                    if let Some(prev) = run.take() {
                        units[home].push(prev);
                    }
                    units[home].push(unit.into());
                    return Ok(());
                }
                DecodedInst::Sync | DecodedInst::Nop => {}
                _ => {
                    // Cold fault path: render the source instruction.
                    return Err(self.flow_err(
                        flow.id,
                        TcfFault::UnsupportedByVariant {
                            instr: self
                                .program
                                .fetch(pc)
                                .map(|i| i.to_string())
                                .unwrap_or_default(),
                            variant: "NUMA mode",
                        },
                    ));
                }
            }

            flow.pc = next_pc;
            match (unit.kind, &mut run) {
                (UnitKind::Compute, Some(UnitSeq::ComputeRun { count, .. })) => *count += 1,
                (UnitKind::MemLocal, Some(UnitSeq::LocalRun { count, .. })) => *count += 1,
                (UnitKind::Compute, r) => {
                    if let Some(prev) = r.take() {
                        units[home].push(prev);
                    }
                    *r = Some(UnitSeq::ComputeRun {
                        flow: flow.id,
                        thread0: slot,
                        count: 1,
                    });
                }
                (UnitKind::MemLocal, r) => {
                    if let Some(prev) = r.take() {
                        units[home].push(prev);
                    }
                    *r = Some(UnitSeq::LocalRun {
                        flow: flow.id,
                        thread0: slot,
                        count: 1,
                    });
                }
                (_, r) => {
                    if let Some(prev) = r.take() {
                        units[home].push(prev);
                    }
                    units[home].push(unit.into());
                }
            }
        }
        if let Some(prev) = run.take() {
            units[home].push(prev);
        }
        Ok(())
    }

    /// Leaves NUMA mode: the flow resumes PRAM execution with thickness 1;
    /// under the Configurable single operation variant absorbed siblings
    /// resume with a copy of the bunch's final state.
    fn exit_numa(&mut self, flow: &mut Flow) {
        flow.mode = ExecMode::Pram;
        flow.thickness = 1;
        flow.fragments = self.allocation.fragments(flow.id, 1, self.config.groups);
        if matches!(self.variant, Variant::ConfigurableSingleOperation) {
            // The absorbed-id scan reuses the machine's pooled scratch —
            // bunch exits in a loop stop allocating after the first.
            let mut ids = std::mem::take(&mut self.numa_ids_buf);
            ids.clear();
            ids.extend(
                self.flows
                    .iter()
                    .filter(|(_, f)| matches!(f.status, FlowStatus::Absorbed { leader } if leader == flow.id))
                    .map(|(id, _)| id),
            );
            for &sid in &ids {
                let sibling = self.flows.get_mut(&sid).expect("absorbed sibling exists");
                // NUMA execution is flow-wise (registers collapsed on
                // entry), so the sibling restarts from lane-0 views only —
                // no per-thread lane vectors are ever copied here, keeping
                // bunch exits O(registers) like the masked compressed path
                // keeps divergent thick steps O(runs). The sibling's first
                // thick step re-enters the same compressed pipeline.
                sibling.regs = flow.regs.clone_flowwise();
                sibling.call_stack = flow.call_stack.clone();
                sibling.pc = flow.pc;
                sibling.status = FlowStatus::Running;
            }
            self.numa_ids_buf = ids;
        }
    }

    /// Halts every flow absorbed into a bunch led by `leader`.
    fn halt_absorbed(&mut self, leader: u32) {
        for f in self.flows.values_mut() {
            if matches!(f.status, FlowStatus::Absorbed { leader: l } if l == leader) {
                f.status = FlowStatus::Halted;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use tcf_isa::instr::{Instr, Operand};
    use tcf_isa::op::AluOp;
    use tcf_isa::program::Program;
    use tcf_isa::reg::r;
    use tcf_isa::word::Word;
    use tcf_machine::MachineConfig;

    use crate::error::TcfFault;
    use crate::machine::{TcfMachine, MAX_THICKNESS};
    use crate::variant::Variant;

    /// `numa <slots>; r1 += 1  (× body); endnuma; halt`.
    fn numa_prog(slots: Word, body: usize) -> Program {
        let mut instrs = vec![Instr::Numa {
            slots: Operand::Imm(slots),
        }];
        for _ in 0..body {
            instrs.push(Instr::Alu {
                op: AluOp::Add,
                rd: r(1),
                ra: r(1),
                rb: Operand::Imm(1),
            });
        }
        instrs.push(Instr::EndNuma);
        instrs.push(Instr::Halt);
        Program::new(instrs, Default::default(), vec![]).unwrap()
    }

    fn machine(slots: Word, body: usize) -> TcfMachine {
        TcfMachine::new(
            MachineConfig::small(),
            Variant::SingleInstruction,
            numa_prog(slots, body),
        )
    }

    #[test]
    fn bunch_length_one_is_the_slowest_legal_bunch() {
        // T = 1 (thickness 1/1): exactly one sequential instruction per
        // synchronous step — the boundary where NUMA mode degenerates to
        // plain sequential stepping.
        let mut m1 = machine(1, 5);
        let s1 = m1.run(1_000).unwrap();
        assert_eq!(m1.flow(0).unwrap().regs.read(r(1), 0), 5);
        // A bunch long enough to swallow the body in one slice.
        let mut m6 = machine(6, 5);
        let s6 = m6.run(1_000).unwrap();
        assert_eq!(m6.flow(0).unwrap().regs.read(r(1), 0), 5);
        assert!(
            s1.steps > s6.steps,
            "T=1 ({} steps) must step more often than T=6 ({} steps)",
            s1.steps,
            s6.steps
        );
        // 5 adds + endnuma at one instruction per step, plus the numa and
        // halt steps.
        assert_eq!(s1.steps, 8);
    }

    #[test]
    fn bunch_length_max_thickness_is_accepted() {
        // T = MAX_THICKNESS is the far boundary of 1/T: legal, and an
        // immediate endnuma must terminate the slice without executing
        // MAX instructions.
        let mut m = machine(MAX_THICKNESS as Word, 0);
        let s = m.run(1_000).unwrap();
        assert!(s.halted);
        assert_eq!(m.live_flows(), 0);
    }

    #[test]
    fn bunch_length_zero_is_rejected() {
        let mut m = machine(0, 1);
        let err = m.run(1_000).unwrap_err();
        assert!(
            matches!(err.fault, TcfFault::BadThickness { requested: 0 }),
            "got {:?}",
            err.fault
        );
    }

    #[test]
    fn bunch_length_above_max_thickness_is_rejected() {
        let mut m = machine(MAX_THICKNESS as Word + 1, 1);
        let err = m.run(1_000).unwrap_err();
        assert!(
            matches!(err.fault, TcfFault::BadThickness { .. }),
            "got {:?}",
            err.fault
        );
    }

    #[test]
    fn negative_bunch_length_is_rejected() {
        let mut m = machine(-3, 1);
        let err = m.run(1_000).unwrap_err();
        assert!(
            matches!(err.fault, TcfFault::BadThickness { requested: -3 }),
            "got {:?}",
            err.fault
        );
    }
}
