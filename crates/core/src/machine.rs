//! The extended PRAM-NUMA machine: flow scheduling, memory phases, timing.
//!
//! One synchronous step of the lockstep variants:
//!
//! 1. **Plan & issue** — every runnable PRAM-mode flow is activated in the
//!    TCF buffers of its fragments' groups (a non-resident activation
//!    costs `tcf_load_cost` overhead cycles — the multitasking knee), its
//!    current instruction is fetched once per flow (Table 1's
//!    fetches-per-TCF advantage), classified as *flow-wise* (control,
//!    uniform-operand scalar work: one operation on the home group) or
//!    *thick* (one operation per implicit thread, spread over the flow's
//!    fragments, bounded per step under the Balanced variant), and
//!    executed. Shared-memory operations become collected references.
//! 2. **Shared-memory step** — all collected references execute with PRAM
//!    semantics in one [`SharedMemory::step`].
//! 3. **Write-back** — replies land in thick registers.
//! 4. **NUMA slices** — flows with thickness `1/T` execute `T` consecutive
//!    instructions of their sequential stream with direct memory access.
//! 5. **Timing** — per group, issued units run through the
//!    [`GroupPipeline`]; the machine clock advances to the slowest group.
//!
//! The Multi-instruction variant replaces 1–4 with asynchronous
//! round-robin execution (see [`crate::exec_async`]).
//!
//! [`SharedMemory::step`]: tcf_mem::SharedMemory::step
//! [`GroupPipeline`]: tcf_machine::GroupPipeline

use std::sync::Arc;

use tcf_isa::program::Program;
use tcf_isa::reg::SpecialReg;
use tcf_isa::word::Word;
use tcf_machine::{
    FlowDesc, GroupPipeline, IssueUnit, MachineConfig, MachineStats, TcfBuffer, Trace, UnitSeq,
};
use tcf_mem::{BulkReplies, LocalMemory, SharedMemory, StepScratch, StepStats};
use tcf_net::{NetStats, Network};
use tcf_obs::{FlowEvent, MetricsRegistry, ObsSink};
use tcf_pram::RunSummary;

use crate::counters::{EngineCounters, ThickDecayCounters};
use crate::decoded::DecodedProgram;
use crate::error::{TcfError, TcfFault};
use crate::exec_async::AsyncBufs;
use crate::exec_sync::StepBufs;
use crate::flow::{ExecMode, Flow, FlowStatus, FlowTable, Fragment};
use crate::par_engine::{global_pool, Engine, FragOut, WorkerPool};
use crate::sched::Allocation;
use crate::variant::Variant;

/// Default step budget for [`TcfMachine::run`].
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Hard ceiling on a flow's thickness, protecting the host simulator from
/// runaway `setthick` values. Compressed (`Affine`/`Segments`) execution
/// never materializes lanes, so thickness-10^8 workloads that stay on the
/// masked closed-form path are cheap — the ceiling only bounds what a
/// *decay* to per-thread lanes could be asked to allocate.
pub const MAX_THICKNESS: usize = 1 << 27;

/// A machine executing the extended PRAM-NUMA model under a chosen
/// [`Variant`].
pub struct TcfMachine {
    pub(crate) config: MachineConfig,
    pub(crate) variant: Variant,
    pub(crate) allocation: Allocation,
    pub(crate) program: Arc<Program>,
    /// `program` pre-decoded to flat `Copy` instructions — the hot fetch
    /// path (see [`crate::decoded`]); `program` stays the source of truth
    /// for listings and fault messages.
    pub(crate) decoded: Arc<DecodedProgram>,
    pub(crate) shared: SharedMemory,
    pub(crate) locals: Vec<LocalMemory>,
    pub(crate) net: Network,
    pub(crate) pipes: Vec<GroupPipeline>,
    pub(crate) buffers: Vec<TcfBuffer>,
    pub(crate) flows: FlowTable,
    pub(crate) next_flow_id: u32,
    pub(crate) trace: Trace,
    pub(crate) obs: ObsSink,
    pub(crate) stats: MachineStats,
    pub(crate) mem_stats: StepStats,
    /// Why compressed thick registers decayed (reason taxonomy).
    pub(crate) thick_decay: ThickDecayCounters,
    /// Thick-execution engine counters (slices, coalescing, workers).
    pub(crate) engine_counters: EngineCounters,
    pub(crate) clock: u64,
    pub(crate) steps: u64,
    pub(crate) engine: Engine,
    pub(crate) pool: Option<Arc<WorkerPool>>,
    /// Persistent scratch of the sequential shared-memory step.
    pub(crate) mem_scratch: StepScratch,
    /// Per-module scratch for concurrent shard resolution (one per
    /// module: shard workers run with `&SharedMemory` and cannot share).
    pub(crate) shard_scratch: Vec<StepScratch>,
    /// Reused per-module reference buckets of the sharded step.
    pub(crate) mem_buckets: Vec<Vec<usize>>,
    /// Reply slots of the last memory step (index-aligned with its refs).
    pub(crate) mem_replies: Vec<Option<Word>>,
    /// Bulk (strided-read) replies of the last memory step.
    pub(crate) mem_bulk: BulkReplies,
    /// Reusable per-step buffers of the synchronous engine.
    pub(crate) step_bufs: StepBufs,
    /// Reusable per-quantum buffers of the asynchronous engine.
    pub(crate) async_bufs: AsyncBufs,
    /// Reusable absorbed-id scratch of NUMA bunch exit.
    pub(crate) numa_ids_buf: Vec<u32>,
    /// Reusable fragment-output pool of thick execution.
    pub(crate) frag_pool: Vec<FragOut>,
    /// Reusable slice list of thick execution.
    pub(crate) slice_buf: Vec<(Fragment, std::ops::Range<usize>)>,
}

impl TcfMachine {
    /// Builds a machine under `variant` and loads `program`.
    ///
    /// Initial flows depend on the variant: the thread-based variants
    /// (`SingleOperation`, `ConfigurableSingleOperation`) start `P × T_p`
    /// unit flows SPMD-style (their `tid` is the global thread rank, as in
    /// the baseline machine); `FixedThickness` starts one flow of the
    /// fixed width on group 0; the TCF variants start a single flow of
    /// thickness 1 — programs grow it with `setthick`.
    pub fn new(config: MachineConfig, variant: Variant, program: Program) -> TcfMachine {
        let allocation = match variant {
            Variant::SingleInstruction | Variant::Balanced { .. } => Allocation::Horizontal,
            _ => Allocation::Vertical,
        };
        TcfMachine::with_allocation(config, variant, program, allocation)
    }

    /// Like [`new`](TcfMachine::new) with an explicit fragment-allocation
    /// policy (the §5 horizontal-vs-vertical experiment).
    pub fn with_allocation(
        config: MachineConfig,
        variant: Variant,
        program: Program,
        allocation: Allocation,
    ) -> TcfMachine {
        config.validate();
        let mut shared = SharedMemory::new(
            config.shared_size,
            config.groups,
            config.module_map,
            config.crcw,
        );
        shared
            .load_data(&program.data)
            .expect("program data outside configured shared memory");
        let pipes = (0..config.groups)
            .map(|g| {
                GroupPipeline::with_ilp(
                    g,
                    config.module_latency,
                    config.local_latency,
                    config.ilp_width,
                )
            })
            .collect();
        let locals = (0..config.groups)
            .map(|g| LocalMemory::new(g, config.local_size))
            .collect();
        let buffers = (0..config.groups)
            .map(|_| TcfBuffer::new(config.tcf_buffer_slots, config.tcf_load_cost))
            .collect();
        let net = Network::new(config.topology, config.hop_latency);
        let decoded = Arc::new(DecodedProgram::decode(&program));
        let mut m = TcfMachine {
            variant,
            allocation,
            program: Arc::new(program),
            decoded,
            shared,
            locals,
            net,
            pipes,
            buffers,
            flows: FlowTable::new(),
            next_flow_id: 0,
            trace: Trace::disabled(),
            obs: ObsSink::disabled(),
            stats: MachineStats::default(),
            mem_stats: StepStats::default(),
            thick_decay: ThickDecayCounters::default(),
            engine_counters: EngineCounters::default(),
            clock: 0,
            steps: 0,
            engine: Engine::Sequential,
            pool: None,
            mem_scratch: StepScratch::default(),
            shard_scratch: vec![StepScratch::default(); config.groups],
            mem_buckets: Vec::new(),
            mem_replies: Vec::new(),
            mem_bulk: BulkReplies::default(),
            step_bufs: StepBufs::default(),
            async_bufs: AsyncBufs::default(),
            numa_ids_buf: Vec::new(),
            frag_pool: Vec::new(),
            slice_buf: Vec::new(),
            config,
        };
        m.set_engine(Engine::from_env());
        m.create_initial_flows();
        m
    }

    /// Selects the execution engine (default: `TCF_ENGINE`, else
    /// sequential). The parallel engine is deterministic — it produces
    /// bit-identical results, statistics and event streams to the
    /// sequential engine at any worker count; see `docs/PARALLEL.md`.
    pub fn set_engine(&mut self, engine: Engine) {
        self.pool = match engine {
            Engine::Parallel { workers } => Some(global_pool(workers)),
            Engine::Sequential => None,
        };
        self.engine = engine;
    }

    /// The active execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    fn create_initial_flows(&mut self) {
        let entry = self.program.entry;
        let nregs = self.config.regs_per_thread;
        match self.variant {
            Variant::SingleInstruction | Variant::Balanced { .. } | Variant::MultiInstruction => {
                let mut f = Flow::new(self.alloc_id(), 1, entry, nregs);
                f.rank_base = 0;
                f.fragments = self.allocation.fragments(f.id, 1, self.config.groups);
                self.flows.insert(f.id, f);
            }
            Variant::SingleOperation | Variant::ConfigurableSingleOperation => {
                let tp = self.config.threads_per_group;
                for rank in 0..self.config.total_threads() {
                    let id = self.alloc_id();
                    let mut f = Flow::new(id, 1, entry, nregs);
                    f.rank_base = rank;
                    f.tid_offset = rank;
                    f.fragments = vec![crate::flow::Fragment::new(rank / tp, 0, 1)];
                    self.flows.insert(id, f);
                }
            }
            Variant::FixedThickness { width } => {
                let mut f = Flow::new(self.alloc_id(), width, entry, nregs);
                f.rank_base = 0;
                // A vector machine is a single processor: everything on
                // group 0.
                f.fragments = vec![crate::flow::Fragment::new(0, 0, width)];
                self.flows.insert(f.id, f);
            }
        }
    }

    pub(crate) fn alloc_id(&mut self) -> u32 {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        id
    }

    /// Enables or disables execution tracing (disabled by default).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = if on {
            Trace::recording()
        } else {
            Trace::disabled()
        };
    }

    /// Enables execution tracing into a bounded ring buffer that keeps
    /// only the `capacity` most recent events (constant memory for long
    /// runs; see `Trace::dropped`).
    pub fn set_trace_ring(&mut self, capacity: usize) {
        self.trace = Trace::ring(capacity);
    }

    /// Enables or disables flow-lifecycle observation (disabled by
    /// default). Enabling emits a retroactive `FlowSpawned` for every
    /// live flow, since initial flows are created before observation can
    /// be switched on.
    pub fn set_observing(&mut self, on: bool) {
        if on {
            self.obs = ObsSink::recording();
            self.emit_existing_flows();
        } else {
            self.obs = ObsSink::disabled();
        }
    }

    /// Like [`set_observing`](TcfMachine::set_observing) but keeping only
    /// the `capacity` most recent events.
    pub fn set_observing_ring(&mut self, capacity: usize) {
        self.obs = ObsSink::ring(capacity);
        self.emit_existing_flows();
    }

    fn emit_existing_flows(&mut self) {
        let live: Vec<(u32, Option<u32>, usize)> = self
            .flows
            .values()
            .filter(|f| f.status != FlowStatus::Halted)
            .map(|f| (f.id, f.parent, f.thickness))
            .collect();
        for (id, parent, thickness) in live {
            self.obs.emit(
                self.steps,
                self.clock,
                FlowEvent::FlowSpawned {
                    flow: id,
                    parent,
                    thickness,
                },
            );
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The active variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The loaded program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Shared-memory host read.
    pub fn peek(&self, addr: usize) -> Result<Word, TcfError> {
        self.shared.peek(addr).map_err(|e| self.host_err(e.into()))
    }

    /// Shared-memory host read of a range.
    pub fn peek_range(&self, base: usize, len: usize) -> Result<Vec<Word>, TcfError> {
        self.shared
            .peek_range(base, len)
            .map_err(|e| self.host_err(e.into()))
    }

    /// Shared-memory host write.
    pub fn poke(&mut self, addr: usize, v: Word) -> Result<(), TcfError> {
        let step = self.steps;
        self.shared.poke(addr, v).map_err(|e| TcfError {
            fault: e.into(),
            step,
            flow: None,
        })
    }

    /// Local-memory host read.
    pub fn peek_local(&self, group: usize, addr: usize) -> Result<Word, TcfError> {
        self.locals[group]
            .read(addr)
            .map_err(|e| self.host_err(e.into()))
    }

    /// A flow by id.
    pub fn flow(&self, id: u32) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Sum of the thicknesses of all currently running flows (NUMA-mode
    /// flows count their fractional thickness as 0) — the machine-wide
    /// thickness profile used by the Figure 3/4 reproductions.
    pub fn running_thickness(&self) -> usize {
        self.flows
            .values()
            .filter(|f| f.is_running())
            .map(|f| match f.mode {
                crate::flow::ExecMode::Pram => f.thickness,
                crate::flow::ExecMode::Numa { .. } => 0,
            })
            .sum()
    }

    /// Ids of all flows ever created (including halted ones).
    pub fn flow_ids(&self) -> Vec<u32> {
        self.flows.keys().collect()
    }

    /// Test support: force-materializes every flow's registers into
    /// per-thread form (see [`ThickRegs::materialize_all`]) — semantically
    /// the identity, but it disables the uniform-operand scalarization so
    /// property tests can check the fast path against the general thick
    /// path.
    ///
    /// [`ThickRegs::materialize_all`]: crate::ThickRegs::materialize_all
    pub fn materialize_all_registers(&mut self) {
        for f in self.flows.values_mut() {
            let t = f.thickness.max(1);
            f.regs.materialize_all(t);
        }
    }

    /// Number of flows that still have work or are waiting.
    pub fn live_flows(&self) -> usize {
        self.flows
            .values()
            .filter(|f| f.status != FlowStatus::Halted)
            .count()
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The recorded flow-lifecycle event stream.
    pub fn obs(&self) -> &ObsSink {
        &self.obs
    }

    /// Pipeline statistics so far.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Aggregated shared-memory step statistics so far.
    pub fn mem_stats(&self) -> &StepStats {
        &self.mem_stats
    }

    /// Compressed-register decay counters, by reason.
    pub fn thick_decay(&self) -> &ThickDecayCounters {
        &self.thick_decay
    }

    /// Bulk-resolution path statistics (fast closed-form vs expanded).
    pub fn bulk_stats(&self) -> &tcf_mem::BulkPathStats {
        self.shared.bulk_stats()
    }

    /// Thick-execution engine counters (slices, coalescing, per-worker
    /// lane distribution).
    pub fn engine_counters(&self) -> &EngineCounters {
        &self.engine_counters
    }

    /// All of the machine's measurements as one named-series registry
    /// (machine, memory, network and TCF-buffer metrics plus the latency
    /// histograms). See `docs/OBSERVABILITY.md` for the naming scheme.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = tcf_pram::summary_metrics(&self.stats, &self.mem_stats, self.net.stats());
        let mut switches = 0u64;
        let mut misses = 0u64;
        let mut overhead = 0u64;
        let mut reload = tcf_obs::LatencyHistogram::new();
        for b in &self.buffers {
            switches += b.switches;
            misses += b.misses;
            overhead += b.overhead_cycles;
            reload.merge(&b.reload);
        }
        reg.set_counter("buffer.switches", switches);
        reg.set_counter("buffer.misses", misses);
        reg.set_counter("buffer.overhead_cycles", overhead);
        reg.set_histogram("buffer.reload", reload);
        reg.set_counter("thick.decay_setthick", self.thick_decay.setthick);
        reg.set_counter("thick.decay_lane_write", self.thick_decay.lane_write);
        reg.set_counter("thick.decay_mem_reply", self.thick_decay.mem_reply);
        reg.set_counter("thick.decay_mask_runs", self.thick_decay.mask_runs);
        reg.set_counter("thick.decay_fault", self.thick_decay.fault);
        reg.set_counter(
            "thick.decay_balanced_resume",
            self.thick_decay.balanced_resume,
        );
        reg.set_counter("thick.decay_async_slice", self.thick_decay.async_slice);
        reg.set_counter("thick.decay_total", self.thick_decay.total());
        let e = &self.engine_counters;
        reg.set_counter("engine.thick_instrs", e.thick_instrs);
        reg.set_counter("engine.slices", e.slices);
        reg.set_counter("engine.compressed_slices", e.compressed_slices);
        reg.set_counter("engine.per_lane_slices", e.per_lane_slices);
        reg.set_counter("engine.mask_hits", e.mask_hits);
        reg.set_counter("engine.mask_misses", e.mask_misses);
        reg.set_counter("engine.coalesce_hits", e.coalesce_hits);
        reg.set_counter("engine.coalesce_misses", e.coalesce_misses);
        reg.set_counter("engine.absorbed_events", e.absorbed_events);
        let bulk = self.shared.bulk_stats();
        reg.set_counter("mem.bulk_fast", bulk.fast);
        reg.set_counter("mem.bulk_expanded", bulk.expanded);
        reg.set_counter("mem.bulk_expanded_lanes", bulk.expanded_lanes);
        reg.set_counter("obs.trace_dropped", self.trace.dropped());
        reg.set_counter("obs.events_dropped", self.obs.dropped());
        reg
    }

    /// Engine-*dependent* measurements kept out of [`metrics`]: the
    /// per-worker lane/slice distribution and utilization. The artifact
    /// determinism guarantee (bit-identical `metrics()` under `seq` and
    /// `par:N`) cannot cover series whose length is the worker count, so
    /// these live in their own registry, merged only where the caller
    /// explicitly wants the engine view (`repro metrics`, the Chrome
    /// worker track).
    ///
    /// [`metrics`]: TcfMachine::metrics
    pub fn engine_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let e = &self.engine_counters;
        reg.set_counter("engine.workers", e.worker_lanes.len() as u64);
        reg.set_counter("engine.total_lanes", e.total_lanes());
        let util = e.worker_utilization_ppm();
        for (w, (&lanes, &slices)) in e.worker_lanes.iter().zip(&e.worker_slices).enumerate() {
            reg.set_counter(&format!("engine.worker{w}.lanes"), lanes);
            reg.set_counter(&format!("engine.worker{w}.slices"), slices);
            reg.set_counter(
                &format!("engine.worker{w}.utilization_ppm"),
                util.get(w).copied().unwrap_or(0),
            );
        }
        reg
    }

    /// Per-group TCF buffers (multitasking statistics).
    pub fn buffers(&self) -> &[TcfBuffer] {
        &self.buffers
    }

    /// Steps executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.clock
    }

    /// Adds an independent task as a new root flow at `entry` with the
    /// given thickness — multitasking in the extended model treats tasks
    /// as TCFs (§5). Only meaningful for the TCF variants (and, with
    /// thickness 1, Multi-instruction).
    pub fn spawn_task(&mut self, entry: usize, thickness: usize) -> Result<u32, TcfError> {
        if thickness != 1 && !self.variant.supports_setthick() {
            return Err(self.host_err(TcfFault::UnsupportedByVariant {
                instr: format!("spawn_task(thickness = {thickness})"),
                variant: self.variant.name(),
            }));
        }
        if matches!(
            self.variant,
            Variant::SingleOperation
                | Variant::ConfigurableSingleOperation
                | Variant::FixedThickness { .. }
        ) {
            return Err(self.host_err(TcfFault::UnsupportedByVariant {
                instr: "spawn_task".into(),
                variant: self.variant.name(),
            }));
        }
        let id = self.alloc_id();
        let mut f = Flow::new(id, thickness, entry, self.config.regs_per_thread);
        f.fragments = self.allocation.fragments(id, thickness, self.config.groups);
        self.flows.insert(id, f);
        self.obs.emit(
            self.steps,
            self.clock,
            FlowEvent::FlowSpawned {
                flow: id,
                parent: None,
                thickness,
            },
        );
        Ok(id)
    }

    pub(crate) fn host_err(&self, fault: TcfFault) -> TcfError {
        TcfError {
            fault,
            step: self.steps,
            flow: None,
        }
    }

    pub(crate) fn flow_err(&self, flow: u32, fault: TcfFault) -> TcfError {
        TcfError {
            fault,
            step: self.steps,
            flow: Some(flow),
        }
    }

    /// Special-register value for implicit thread `e` of `flow`.
    pub(crate) fn special(&self, flow: &Flow, e: usize, sr: SpecialReg) -> Word {
        special_value(flow, e, sr, &self.config)
    }

    /// Whether any flow can make progress this step.
    pub(crate) fn has_workable_flow(&self) -> bool {
        self.flows.values().any(|f| {
            f.is_running()
                && match f.mode {
                    ExecMode::Pram => f.thickness > 0,
                    ExecMode::Numa { slots } => slots > 0,
                }
        })
    }

    /// Executes one machine step. Returns `false` when no flow had work.
    pub fn step(&mut self) -> Result<bool, TcfError> {
        if !self.has_workable_flow() {
            let waiting = self.flows.values().any(|f| {
                matches!(
                    f.status,
                    FlowStatus::WaitingJoin { .. } | FlowStatus::WaitingSpawn { .. }
                )
            });
            if waiting {
                return Err(self.host_err(TcfFault::Deadlock));
            }
            return Ok(false);
        }
        match self.variant {
            Variant::MultiInstruction => self.step_async()?,
            _ => self.step_sync()?,
        }
        self.steps += 1;
        // The machine owns the step counter (a step may span several
        // pipeline calls); mirror it into the stats snapshot.
        self.stats.steps = self.steps;
        self.obs.emit(
            self.steps,
            self.clock,
            FlowEvent::StepEnd {
                step: self.steps,
                cycle: self.clock,
            },
        );
        Ok(true)
    }

    /// Runs until every flow halts (or sleeps at thickness 0) or the step
    /// budget is exhausted.
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, TcfError> {
        loop {
            if self.steps >= max_steps {
                return Err(self.host_err(TcfFault::StepBudgetExhausted { budget: max_steps }));
            }
            if !self.step()? {
                break;
            }
        }
        Ok(RunSummary {
            steps: self.steps,
            cycles: self.clock,
            halted: true,
            machine: self.stats,
            memory: self.mem_stats.clone(),
            network: self.net.stats().clone(),
        })
    }

    /// Phase 5 timing: runs each group's unit lists through its pipeline
    /// and advances the machine clock to the slowest group. Units arrive
    /// run-length compressed ([`UnitSeq`]); the pipeline advances its
    /// cadence in closed form over compressed runs, so a `T`-thick compute
    /// instruction's timing costs O(1) instead of O(T).
    pub(crate) fn apply_timing(
        &mut self,
        pram_units: &[Vec<UnitSeq>],
        numa_units: &[Vec<UnitSeq>],
    ) {
        let start = self.clock;
        let mut end = start;
        for g in 0..self.config.groups {
            let out = self.pipes[g].run_step_seq(
                start,
                &pram_units[g],
                false,
                &mut self.net,
                &mut self.trace,
                &mut self.stats,
            );
            let mut gend = out.end_cycle;
            if !numa_units[g].is_empty() {
                let out2 = self.pipes[g].run_step_seq(
                    gend,
                    &numa_units[g],
                    true,
                    &mut self.net,
                    &mut self.trace,
                    &mut self.stats,
                );
                gend = out2.end_cycle;
            }
            end = end.max(gend);
        }
        self.clock = end;
        self.stats.cycles = end;
    }

    /// Activates `flow`'s descriptor in the TCF buffer of every fragment
    /// group, pushing reload-overhead units where it missed. Free when
    /// resident — the extended model's zero-cost task switch. Iterates the
    /// fragment list by index (re-borrowing the flow per fragment) so the
    /// steady-state step loop allocates nothing here.
    pub(crate) fn activate_in_buffers(&mut self, flow_id: u32, units: &mut [Vec<UnitSeq>]) {
        let flow = &self.flows[&flow_id];
        let desc = match flow.mode {
            ExecMode::Pram => FlowDesc::pram(flow.id, flow.thickness, flow.pc),
            ExecMode::Numa { slots } => FlowDesc::numa(flow.id, slots, flow.pc),
        };
        let nfrags = flow.fragments.len();
        for fi in 0..nfrags {
            let g = self.flows[&flow_id].fragments[fi].group;
            let cost = self.buffers[g].activate(desc);
            if cost > 0 {
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::BufferReload {
                        flow: flow_id,
                        group: g,
                        cost,
                    },
                );
            }
            for _ in 0..cost {
                units[g].push(IssueUnit::overhead(flow_id).into());
            }
        }
    }
}

/// Special-register value for implicit thread `e` of `flow` — a free
/// function (no machine borrow) so engine workers can evaluate `mfs`
/// lanes against a read-only flow and configuration.
pub(crate) fn special_value(flow: &Flow, e: usize, sr: SpecialReg, config: &MachineConfig) -> Word {
    match sr {
        SpecialReg::Tid => (flow.tid_offset + e * flow.tid_stride) as Word,
        SpecialReg::Gid => (flow.rank_base + e) as Word,
        SpecialReg::Thickness => match flow.mode {
            ExecMode::Pram => flow.thickness as Word,
            ExecMode::Numa { .. } => 1,
        },
        SpecialReg::Fid => flow.id as Word,
        SpecialReg::Pid => flow.home_group() as Word,
        SpecialReg::NProcs => config.groups as Word,
        SpecialReg::NThreads => config.threads_per_group as Word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcf_isa::asm::assemble;

    fn small() -> MachineConfig {
        MachineConfig::small()
    }

    #[test]
    fn initial_flow_count_per_variant() {
        let p = || assemble("main:\n halt\n").unwrap();
        let m = TcfMachine::new(small(), Variant::SingleInstruction, p());
        assert_eq!(m.flows.len(), 1);
        let m = TcfMachine::new(small(), Variant::SingleOperation, p());
        assert_eq!(m.flows.len(), 64);
        let m = TcfMachine::new(small(), Variant::FixedThickness { width: 16 }, p());
        assert_eq!(m.flows.len(), 1);
        assert_eq!(m.flows[&0].thickness, 16);
    }

    #[test]
    fn spawn_task_rejected_on_thread_variants() {
        let p = assemble("main:\n halt\n").unwrap();
        let mut m = TcfMachine::new(small(), Variant::SingleOperation, p);
        assert!(m.spawn_task(0, 1).is_err());
    }

    #[test]
    fn trivial_program_halts() {
        let p = assemble("main:\n halt\n").unwrap();
        let mut m = TcfMachine::new(small(), Variant::SingleInstruction, p);
        let s = m.run(10).unwrap();
        assert_eq!(s.steps, 1);
        assert_eq!(m.live_flows(), 0);
    }
}
