//! Structure-of-arrays lane kernels for the per-lane fallback path.
//!
//! When a thick value decays out of the compressed (Affine/Segments)
//! representation, the executors fall back to evaluating every lane of the
//! slice. This module provides that fallback as *chunked* kernels over dense
//! `&[Word]` lane planes: operands are gathered once into contiguous buffers
//! ([`LanePlanes`], pooled and reused across steps), then evaluated
//! [`LANE_CHUNK`] lanes at a time through fixed-width inner loops the
//! compiler can autovectorize, with a scalar tail for the remainder.
//!
//! Bit-identity contract: every kernel computes exactly
//! `out[k] = f(a[k], b[k])` with the same `f` the scalar interpreter uses
//! ([`AluOp::eval`], the `Sel` cond-nonzero blend), in lane order, with no
//! reassociation — chunking an elementwise map cannot change results. Each
//! kernel is pinned against its `*_scalar_ref` oracle by the property suites
//! in `tests/scalarization.rs`.

use tcf_isa::{AluOp, Word};

use crate::thick::MaskRun;

/// Lanes evaluated per inner-loop iteration of the chunked kernels.
///
/// Eight 64-bit lanes = one 512-bit vector, or two 256-bit halves on AVX2;
/// the fixed-size `[Word; LANE_CHUNK]` bodies below compile to branch-free
/// straight-line code either way.
pub const LANE_CHUNK: usize = 8;

/// Pooled structure-of-arrays operand scratch for one execution slice.
///
/// Three planes cover the widest instruction (`Sel` reads cond/true/false);
/// ALU uses `a`/`b`. The vectors keep their capacity across steps — a slice
/// of the same thickness allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct LanePlanes {
    /// First operand plane (ALU `ra`, `Sel` cond).
    pub a: Vec<Word>,
    /// Second operand plane (ALU `rb`, `Sel` true-value).
    pub b: Vec<Word>,
    /// Third operand plane (`Sel` false-value).
    pub c: Vec<Word>,
}

/// Borrows `buf` as a writable plane of exactly `len` lanes, growing the
/// allocation only when a wider slice arrives. Contents are unspecified on
/// return — callers must overwrite every lane (e.g. via
/// [`crate::thick::ThickValue::fill_lanes`]).
#[inline]
pub fn prep(buf: &mut Vec<Word>, len: usize) -> &mut [Word] {
    if buf.len() < len {
        buf.resize(len, 0);
    }
    &mut buf[..len]
}

/// Chunked elementwise map: `out[k] = f(a[k], b[k])`.
///
/// The monomorphized closure is applied over `LANE_CHUNK`-wide fixed-size
/// array views (no bounds checks in the hot loop), then a scalar tail.
#[inline(always)]
fn map2(a: &[Word], b: &[Word], out: &mut [Word], f: impl Fn(Word, Word) -> Word + Copy) {
    let n = out.len();
    debug_assert_eq!(a.len(), n);
    debug_assert_eq!(b.len(), n);
    let mut ac = a.chunks_exact(LANE_CHUNK);
    let mut bc = b.chunks_exact(LANE_CHUNK);
    let mut oc = out.chunks_exact_mut(LANE_CHUNK);
    for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        let x: &[Word; LANE_CHUNK] = x.try_into().unwrap();
        let y: &[Word; LANE_CHUNK] = y.try_into().unwrap();
        let o: &mut [Word; LANE_CHUNK] = o.try_into().unwrap();
        for k in 0..LANE_CHUNK {
            o[k] = f(x[k], y[k]);
        }
    }
    for ((o, &x), &y) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = f(x, y);
    }
}

/// Vectorized per-lane ALU: `out[k] = op.eval(a[k], b[k])`.
///
/// The operation dispatch is hoisted out of the lane loop — one match, then
/// a monomorphized chunked kernel per op. Division and shifts go through the
/// same `div_w`/`rem_w`/`shamt` helpers as [`AluOp::eval`], so lane values
/// are bit-identical to the scalar interpreter by construction.
pub fn alu_lanes(op: AluOp, a: &[Word], b: &[Word], out: &mut [Word]) {
    use tcf_isa::word::{div_w, rem_w, shamt};
    match op {
        AluOp::Add => map2(a, b, out, |x, y| x.wrapping_add(y)),
        AluOp::Sub => map2(a, b, out, |x, y| x.wrapping_sub(y)),
        AluOp::Mul => map2(a, b, out, |x, y| x.wrapping_mul(y)),
        AluOp::Div => map2(a, b, out, div_w),
        AluOp::Mod => map2(a, b, out, rem_w),
        AluOp::And => map2(a, b, out, |x, y| x & y),
        AluOp::Or => map2(a, b, out, |x, y| x | y),
        AluOp::Xor => map2(a, b, out, |x, y| x ^ y),
        AluOp::Shl => map2(a, b, out, |x, y| x.wrapping_shl(shamt(y))),
        AluOp::Shr => map2(a, b, out, |x, y| {
            ((x as u64).wrapping_shr(shamt(y))) as Word
        }),
        AluOp::Sar => map2(a, b, out, |x, y| x.wrapping_shr(shamt(y))),
        AluOp::Slt => map2(a, b, out, |x, y| (x < y) as Word),
        AluOp::Sle => map2(a, b, out, |x, y| (x <= y) as Word),
        AluOp::Seq => map2(a, b, out, |x, y| (x == y) as Word),
        AluOp::Sne => map2(a, b, out, |x, y| (x != y) as Word),
        AluOp::Sgt => map2(a, b, out, |x, y| (x > y) as Word),
        AluOp::Sge => map2(a, b, out, |x, y| (x >= y) as Word),
        AluOp::Min => map2(a, b, out, |x, y| x.min(y)),
        AluOp::Max => map2(a, b, out, |x, y| x.max(y)),
        AluOp::Mov => map2(a, b, out, |x, _| x),
        AluOp::Not => map2(a, b, out, |x, _| !x),
        AluOp::Neg => map2(a, b, out, |x, _| x.wrapping_neg()),
    }
}

/// Scalar reference for [`alu_lanes`]: the interpreter's own [`AluOp::eval`]
/// applied lane by lane. Property-suite oracle only — not a hot path.
pub fn alu_lanes_scalar_ref(op: AluOp, a: &[Word], b: &[Word], out: &mut [Word]) {
    for k in 0..out.len() {
        out[k] = op.eval(a[k], b[k]);
    }
}

/// Vectorized `Sel` blend: `out[k] = if cond[k] != 0 { t[k] } else { f[k] }`,
/// computed branch-free through a full-width lane mask.
pub fn select_lanes(cond: &[Word], t: &[Word], f: &[Word], out: &mut [Word]) {
    let n = out.len();
    debug_assert_eq!(cond.len(), n);
    debug_assert_eq!(t.len(), n);
    debug_assert_eq!(f.len(), n);
    let mut cc = cond.chunks_exact(LANE_CHUNK);
    let mut tc = t.chunks_exact(LANE_CHUNK);
    let mut fc = f.chunks_exact(LANE_CHUNK);
    let mut oc = out.chunks_exact_mut(LANE_CHUNK);
    for (((o, c), tv), fv) in (&mut oc).zip(&mut cc).zip(&mut tc).zip(&mut fc) {
        let c: &[Word; LANE_CHUNK] = c.try_into().unwrap();
        let tv: &[Word; LANE_CHUNK] = tv.try_into().unwrap();
        let fv: &[Word; LANE_CHUNK] = fv.try_into().unwrap();
        let o: &mut [Word; LANE_CHUNK] = o.try_into().unwrap();
        for k in 0..LANE_CHUNK {
            let m = -((c[k] != 0) as Word); // all-ones where cond holds
            o[k] = (tv[k] & m) | (fv[k] & !m);
        }
    }
    for (((o, &c), &tv), &fv) in oc
        .into_remainder()
        .iter_mut()
        .zip(cc.remainder())
        .zip(tc.remainder())
        .zip(fc.remainder())
    {
        *o = if c != 0 { tv } else { fv };
    }
}

/// Scalar reference for [`select_lanes`].
pub fn select_lanes_scalar_ref(cond: &[Word], t: &[Word], f: &[Word], out: &mut [Word]) {
    for k in 0..out.len() {
        out[k] = if cond[k] != 0 { t[k] } else { f[k] };
    }
}

/// Run-masked `Sel` blend: the condition arrives as a run-length
/// [`MaskRun`] classification instead of a per-lane plane, so each run is
/// one `copy_from_slice` of the chosen branch — O(#runs) dispatches over
/// memcpy-speed bodies, never touching a condition lane. The runs must
/// tile `[0, out.len())` in order (the [`LaneMask`] contract).
///
/// [`LaneMask`]: crate::thick::LaneMask
pub fn select_lanes_mask(runs: &[MaskRun], t: &[Word], f: &[Word], out: &mut [Word]) {
    let n = out.len();
    debug_assert_eq!(t.len(), n);
    debug_assert_eq!(f.len(), n);
    for r in runs {
        let src = if r.set { t } else { f };
        out[r.start..r.start + r.len].copy_from_slice(&src[r.start..r.start + r.len]);
    }
}

/// Scalar reference for [`select_lanes_mask`]: expand the runs to a lane
/// plane and blend lane by lane.
pub fn select_lanes_mask_scalar_ref(runs: &[MaskRun], t: &[Word], f: &[Word], out: &mut [Word]) {
    for r in runs {
        for k in r.start..r.start + r.len {
            out[k] = if r.set { t[k] } else { f[k] };
        }
    }
}

/// Fills `out[k] = base + k * stride` (wrapping), chunked: per-chunk the
/// eight offsets `[0, s, .., 7s]` are added to a running base that advances
/// by `8s`, avoiding the serial add-chain of the naive loop.
pub fn fill_affine(out: &mut [Word], base: Word, stride: Word) {
    let mut offs = [0 as Word; LANE_CHUNK];
    for k in 1..LANE_CHUNK {
        offs[k] = offs[k - 1].wrapping_add(stride);
    }
    let step = stride.wrapping_mul(LANE_CHUNK as Word);
    let mut b = base;
    let mut oc = out.chunks_exact_mut(LANE_CHUNK);
    for o in &mut oc {
        let o: &mut [Word; LANE_CHUNK] = o.try_into().unwrap();
        for k in 0..LANE_CHUNK {
            o[k] = b.wrapping_add(offs[k]);
        }
        b = b.wrapping_add(step);
    }
    for (k, o) in oc.into_remainder().iter_mut().enumerate() {
        *o = b.wrapping_add(offs[k]);
    }
}

/// First index where `vals[k] != v`, chunked: each chunk ORs its eight lane
/// XORs into one accumulator and only rescans on a nonzero hit.
pub fn first_mismatch_uniform(vals: &[Word], v: Word) -> Option<usize> {
    let mut i = 0;
    while i + LANE_CHUNK <= vals.len() {
        let c: &[Word; LANE_CHUNK] = vals[i..i + LANE_CHUNK].try_into().unwrap();
        let mut acc = 0;
        for &x in c {
            acc |= x ^ v;
        }
        if acc != 0 {
            for (k, &x) in c.iter().enumerate() {
                if x != v {
                    return Some(i + k);
                }
            }
        }
        i += LANE_CHUNK;
    }
    while i < vals.len() {
        if vals[i] != v {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// First index where `vals[k] != base + k * stride` (wrapping), chunked like
/// [`first_mismatch_uniform`] with the progression generated in-register.
pub fn first_mismatch_affine(vals: &[Word], base: Word, stride: Word) -> Option<usize> {
    let mut offs = [0 as Word; LANE_CHUNK];
    for k in 1..LANE_CHUNK {
        offs[k] = offs[k - 1].wrapping_add(stride);
    }
    let step = stride.wrapping_mul(LANE_CHUNK as Word);
    let mut b = base;
    let mut i = 0;
    while i + LANE_CHUNK <= vals.len() {
        let c: &[Word; LANE_CHUNK] = vals[i..i + LANE_CHUNK].try_into().unwrap();
        let mut acc = 0;
        for k in 0..LANE_CHUNK {
            acc |= c[k] ^ b.wrapping_add(offs[k]);
        }
        if acc != 0 {
            for k in 0..LANE_CHUNK {
                if c[k] != b.wrapping_add(offs[k]) {
                    return Some(i + k);
                }
            }
        }
        b = b.wrapping_add(step);
        i += LANE_CHUNK;
    }
    let mut expect = b;
    while i < vals.len() {
        if vals[i] != expect {
            return Some(i);
        }
        expect = expect.wrapping_add(stride);
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_affine_matches_progression() {
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let mut out = vec![0; len];
            fill_affine(&mut out, 5, -3);
            for (k, &v) in out.iter().enumerate() {
                assert_eq!(v, 5i64.wrapping_add((-3i64).wrapping_mul(k as i64)));
            }
        }
    }

    #[test]
    fn mismatch_scans_find_first_divergence() {
        for len in [0usize, 1, 7, 8, 9, 17] {
            for hit in 0..len {
                let mut vals = vec![42; len];
                vals[hit] = 41;
                assert_eq!(first_mismatch_uniform(&vals, 42), Some(hit), "len={len}");
                let mut prog: Vec<Word> = (0..len as i64).map(|k| 9 + 2 * k).collect();
                prog[hit] ^= 1;
                assert_eq!(first_mismatch_affine(&prog, 9, 2), Some(hit), "len={len}");
            }
            assert_eq!(first_mismatch_uniform(&vec![42; len], 42), None);
            let prog: Vec<Word> = (0..len as i64).map(|k| 9 + 2 * k).collect();
            assert_eq!(first_mismatch_affine(&prog, 9, 2), None);
        }
    }

    #[test]
    fn alu_kernels_match_eval_on_tails() {
        let a: Vec<Word> = (0..21).map(|k| k * 7 - 40).collect();
        let b: Vec<Word> = (0..21).map(|k| 13 - k * 5).collect();
        for op in AluOp::ALL {
            let mut got = vec![0; a.len()];
            let mut want = vec![0; a.len()];
            alu_lanes(op, &a, &b, &mut got);
            alu_lanes_scalar_ref(op, &a, &b, &mut want);
            assert_eq!(got, want, "{op:?}");
        }
    }

    #[test]
    fn select_kernel_blends() {
        let cond: Vec<Word> = (0..19).map(|k| k % 3).collect();
        let t: Vec<Word> = (0..19).map(|k| 100 + k).collect();
        let f: Vec<Word> = (0..19).map(|k| -k).collect();
        let mut got = vec![0; 19];
        let mut want = vec![0; 19];
        select_lanes(&cond, &t, &f, &mut got);
        select_lanes_scalar_ref(&cond, &t, &f, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn masked_select_matches_lane_blend() {
        let n = 19usize;
        let t: Vec<Word> = (0..n as i64).map(|k| 100 + k).collect();
        let f: Vec<Word> = (0..n as i64).map(|k| -k).collect();
        // Runs tiling [0, n): set/clear alternation with uneven lengths,
        // plus the all-set and all-clear edges.
        let cases: Vec<Vec<MaskRun>> = vec![
            vec![MaskRun {
                start: 0,
                len: n,
                set: true,
            }],
            vec![MaskRun {
                start: 0,
                len: n,
                set: false,
            }],
            vec![
                MaskRun {
                    start: 0,
                    len: 3,
                    set: false,
                },
                MaskRun {
                    start: 3,
                    len: 9,
                    set: true,
                },
                MaskRun {
                    start: 12,
                    len: 7,
                    set: false,
                },
            ],
            vec![
                MaskRun {
                    start: 0,
                    len: 1,
                    set: true,
                },
                MaskRun {
                    start: 1,
                    len: 17,
                    set: false,
                },
                MaskRun {
                    start: 18,
                    len: 1,
                    set: true,
                },
            ],
        ];
        for runs in &cases {
            let cond: Vec<Word> = {
                let mut c = vec![0; n];
                for r in runs {
                    c[r.start..r.start + r.len].fill(r.set as Word);
                }
                c
            };
            let mut got = vec![0; n];
            let mut ref_runs = vec![0; n];
            let mut ref_lanes = vec![0; n];
            select_lanes_mask(runs, &t, &f, &mut got);
            select_lanes_mask_scalar_ref(runs, &t, &f, &mut ref_runs);
            select_lanes_scalar_ref(&cond, &t, &f, &mut ref_lanes);
            assert_eq!(got, ref_runs);
            assert_eq!(got, ref_lanes);
        }
    }
}
