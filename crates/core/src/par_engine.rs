//! The deterministic parallel execution engine for the synchronous
//! variants.
//!
//! Opt-in via [`TcfMachine::set_engine`] or the `TCF_ENGINE` environment
//! variable (`seq` or `par:<workers>`). The engine shards the two
//! embarrassingly parallel regions of a synchronous step across a
//! persistent worker pool, keeping the step phases as barriers:
//!
//! * **phase 1, thick execution** — a thick instruction's fragments live on
//!   *distinct* processor groups, per-lane operations never read another
//!   lane's same-instruction writes, and local memories are per-group, so
//!   each fragment executes on its own worker against a read-only view of
//!   the registers, producing a [`FragOut`] (issue units, memory
//!   references, a register write log, a local-memory undo log). The
//!   coordinator merges the outputs in fragment order, replaying register
//!   writes through the exact `ThickRegs::set` sequence the sequential
//!   engine performs — bit-identical down to the `Uniform`/`PerThread`
//!   representation.
//! * **phase 2, shared-memory step** — an address maps to exactly one
//!   module, so per-module reference buckets resolve concurrently
//!   ([`SharedMemory::resolve_shard`]); every ordering-sensitive decision
//!   (CRCW winner, multiprefix order) is derived from thread ranks inside
//!   the shard, and the staged results commit atomically.
//!
//! Flow-wise instructions, NUMA slices and the timing phase stay on the
//! coordinator: flows interact (split/join/bunch absorption, shared local
//! memories), and the network's link/service reservations are
//! order-dependent, so parallelizing them could not be bit-identical. See
//! `docs/PARALLEL.md` for the full determinism argument.
//!
//! Both engines execute thick lanes through the same
//! [`exec_thick_lanes`]/[`TcfMachine::merge_frag_outs`] pair — the
//! sequential engine simply runs the fragments inline — so the differential
//! conformance suite (`tests/engine_differential.rs`) guards the merge
//! logic rather than two divergent interpreters.
//!
//! [`SharedMemory::resolve_shard`]: tcf_mem::SharedMemory::resolve_shard

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use tcf_isa::reg::Reg;
use tcf_isa::word::{Addr, Word};
use tcf_machine::{IssueUnit, MachineConfig, UnitSeq};
use tcf_mem::{LocalMemory, MemError, MemRef, ShardOutcome, SharedMemory, StepStats};
use tcf_obs::{FlowEvent, ObsSink};

use crate::decoded::DecodedInst;
use crate::error::TcfError;
use crate::exec_sync::{WbTarget, Writeback};
use crate::flow::{Flow, Fragment};
use crate::lanes::{self, LanePlanes};
use crate::machine::TcfMachine;
use crate::thick::{affine_alu, LaneMask, MaskError, Seg, MASK_RUN_BUDGET};

/// Which execution engine a machine steps with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The default single-threaded engine.
    Sequential,
    /// The deterministic parallel engine: fragment and memory-module work
    /// sharded over `workers` host threads (the coordinating thread counts
    /// as one worker). `workers == 1` exercises the parallel code path
    /// without spawning threads.
    Parallel {
        /// Total worker count, coordinator included (clamped to ≥ 1).
        workers: usize,
    },
}

impl Engine {
    /// Parses an engine spec: `seq`/`sequential` or `par:<workers>`.
    pub fn from_spec(spec: &str) -> Option<Engine> {
        let s = spec.trim();
        if s.eq_ignore_ascii_case("seq") || s.eq_ignore_ascii_case("sequential") {
            return Some(Engine::Sequential);
        }
        let n = s.strip_prefix("par:")?;
        let workers: usize = n.trim().parse().ok()?;
        Some(Engine::Parallel {
            workers: workers.max(1),
        })
    }

    /// The engine selected by the `TCF_ENGINE` environment variable
    /// (`Sequential` when unset or unparseable).
    pub fn from_env() -> Engine {
        std::env::var("TCF_ENGINE")
            .ok()
            .and_then(|s| Engine::from_spec(&s))
            .unwrap_or(Engine::Sequential)
    }

    /// Whether this is the parallel engine.
    pub fn is_parallel(&self) -> bool {
        matches!(self, Engine::Parallel { .. })
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct PoolInner {
    queue: Mutex<VecDeque<StaticTask>>,
    work_ready: Condvar,
}

/// A persistent pool of host worker threads. Pools are process-global
/// (keyed by worker count, see [`global_pool`]) so repeated short steps
/// reuse warm threads instead of paying a spawn per step; idle workers
/// park on a condvar.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: usize,
}

impl WorkerPool {
    /// A pool where `workers` threads (including the calling coordinator)
    /// drain each batch; `workers - 1` background threads are spawned.
    fn new(workers: usize) -> WorkerPool {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        for _ in 1..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("tcf-par-worker".into())
                .spawn(move || worker_loop(inner))
                .expect("spawn pool worker");
        }
        WorkerPool { inner, workers }
    }

    /// Total worker count (coordinator included).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `tasks` to completion across the pool. The calling thread
    /// participates in draining the queue, then blocks until the last task
    /// finishes; a panicking task is re-raised here after the whole batch
    /// has drained.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: tasks.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
            for task in tasks {
                let b = Arc::clone(&batch);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    let mut st = b.state.lock().expect("batch state poisoned");
                    st.remaining -= 1;
                    if let Err(p) = outcome {
                        st.panic.get_or_insert(p);
                    }
                    if st.remaining == 0 {
                        b.done.notify_all();
                    }
                });
                // SAFETY: `run` does not return before `remaining` reaches
                // zero (the wait below), so every borrow captured by the
                // task outlives its execution on whichever thread picks it
                // up. This is the scoped-thread guarantee, applied to a
                // persistent pool.
                let wrapped: StaticTask = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, StaticTask>(wrapped)
                };
                queue.push_back(wrapped);
            }
            self.inner.work_ready.notify_all();
        }
        // The coordinator drains too — essential on hosts where it holds
        // the only runnable CPU, and it keeps `workers == 1` pools valid
        // with zero background threads.
        loop {
            let task = self
                .inner
                .queue
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            match task {
                Some(t) => t(),
                None => break,
            }
        }
        let mut st = batch.state.lock().expect("batch state poisoned");
        while st.remaining > 0 {
            st = batch.done.wait(st).expect("batch state poisoned");
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            resume_unwind(p);
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let task = {
            let mut queue = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(t) = queue.pop_front() {
                    break t;
                }
                queue = inner.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        task();
    }
}

/// The process-global pool for `workers` total workers. Machines with the
/// same `par:<N>` engine share one pool; threads persist for the process
/// lifetime and park when idle.
pub fn global_pool(workers: usize) -> Arc<WorkerPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool registry poisoned");
    Arc::clone(
        pools
            .entry(workers)
            .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
    )
}

// ---------------------------------------------------------------------------
// Engine-shared thick-lane executor
// ---------------------------------------------------------------------------

/// Read-only context for executing one fragment's lanes of a thick
/// instruction. Everything mutable lands in a [`FragOut`] (or in the
/// fragment group's own [`LocalMemory`], which no other fragment of the
/// instruction can touch).
pub(crate) struct ThickCtx<'a> {
    pub flow: &'a Flow,
    pub instr: DecodedInst,
    pub group: usize,
    pub shared: &'a SharedMemory,
    pub config: &'a MachineConfig,
    pub step: u64,
}

/// One fragment's outputs from a thick instruction, merged by the
/// coordinator in fragment order (see [`TcfMachine::merge_frag_outs`]).
pub(crate) struct FragOut {
    pub frag: Fragment,
    pub range: Range<usize>,
    /// Issue units for `frag.group`, in lane order (run-length compressed
    /// when the slice executed in closed form).
    pub units: Vec<UnitSeq>,
    /// Shared-memory references, in lane order (one strided bulk
    /// reference stands for the whole slice on the compressed path).
    pub refs: Vec<MemRef>,
    /// Pending write-backs as `(rd, destination lanes, index into
    /// self.refs)`.
    pub wbs: Vec<(Reg, WbTarget, usize)>,
    /// Affine register writes as `(rd, base lane, count, vbase, vstride)`
    /// — the compressed path's counterpart of `reg_runs`, replayed by the
    /// coordinator through `ThickRegs::write_affine`. A slice populates
    /// either this or `reg_runs`, never both.
    pub reg_affine: Vec<(Reg, usize, usize, Word, Word)>,
    /// Register writes as contiguous lane runs `(rd, base lane, range
    /// into reg_values)`, replayed by the coordinator through
    /// `ThickRegs::write_lanes` (bit-identical to an ascending per-lane
    /// replay). Lanes execute in ascending order writing one register per
    /// instruction, so a slice's whole log is typically ONE run — the
    /// flat encoding makes the replay a bulk copy instead of a per-lane
    /// representation decision.
    pub reg_runs: Vec<(Reg, usize, Range<usize>)>,
    /// Backing values of `reg_runs`, in push order.
    pub reg_values: Vec<Word>,
    /// `(addr, previous value)` per local-memory write, for rolling the
    /// group's local memory back when an *earlier* fragment faulted (the
    /// sequential engine would never have reached this fragment).
    pub local_undo: Vec<(Addr, Word)>,
    /// Worker-side observability events, absorbed in fragment order.
    pub obs: ObsSink,
    /// First fault; lanes after it did not execute.
    pub fault: Option<TcfError>,
    /// Whether the slice executed on the closed-form compressed path
    /// (feeds the `engine.compressed_slices` counter).
    pub compressed: bool,
    /// Whether the slice stayed closed-form *through divergence* — a lane
    /// mask or piecewise operand split was used (feeds `engine.mask_hits`).
    pub mask_hit: bool,
    /// Whether a masked / piecewise attempt fell back to the per-lane path
    /// (feeds `engine.mask_misses`).
    pub mask_miss: bool,
    /// Whether the fallback was specifically the mask-run budget — the
    /// `decay_mask_runs` reason of the decay taxonomy.
    pub mask_decay: bool,
    /// Pooled structure-of-arrays operand planes for the vectorized
    /// per-lane fallback ([`exec_thick_vector`]); capacity survives
    /// `reset`, so steady-state slices gather operands allocation-free.
    pub planes: LanePlanes,
    /// Pooled run-length scratch of the masked compressed path; capacity
    /// survives `reset`.
    pub scratch: MaskScratch,
}

/// Pooled buffers of the masked compressed executor: the condition's lane
/// mask and two piece lists for operand splitting.
#[derive(Debug, Default)]
pub(crate) struct MaskScratch {
    pub mask: LaneMask,
    pub a: Vec<Seg>,
    pub b: Vec<Seg>,
}

impl FragOut {
    /// A pool placeholder; [`reset`](FragOut::reset) before use.
    pub(crate) fn empty() -> FragOut {
        FragOut {
            frag: Fragment::new(0, 0, 0),
            range: 0..0,
            units: Vec::new(),
            refs: Vec::new(),
            wbs: Vec::new(),
            reg_runs: Vec::new(),
            reg_values: Vec::new(),
            reg_affine: Vec::new(),
            local_undo: Vec::new(),
            obs: ObsSink::disabled(),
            fault: None,
            compressed: false,
            mask_hit: false,
            mask_miss: false,
            mask_decay: false,
            planes: LanePlanes::default(),
            scratch: MaskScratch::default(),
        }
    }

    /// Rearms a pooled output for one slice, keeping every buffer's
    /// allocation.
    pub(crate) fn reset(&mut self, frag: Fragment, range: Range<usize>, obs_enabled: bool) {
        self.frag = frag;
        self.range = range;
        self.units.clear();
        self.refs.clear();
        self.wbs.clear();
        self.reg_runs.clear();
        self.reg_values.clear();
        self.reg_affine.clear();
        self.local_undo.clear();
        self.obs = if obs_enabled {
            ObsSink::recording()
        } else {
            ObsSink::disabled()
        };
        self.fault = None;
        self.compressed = false;
        self.mask_hit = false;
        self.mask_miss = false;
        self.mask_decay = false;
    }

    /// Appends one lane's register write, extending the current run when
    /// it continues the same register at the next lane.
    #[inline]
    fn log_reg(&mut self, rd: Reg, e: usize, v: Word) {
        let n = self.reg_values.len();
        if let Some((lrd, base, range)) = self.reg_runs.last_mut() {
            if *lrd == rd && *base + (range.end - range.start) == e && range.end == n {
                self.reg_values.push(v);
                range.end = n + 1;
                return;
            }
        }
        self.reg_values.push(v);
        self.reg_runs.push((rd, e, n..n + 1));
    }
}

/// Lane addresses `to_addr(lane_value + off)` of an affine base operand
/// as an exact strided progression, when per-lane wrapping and clamping
/// provably cannot kick in: the exact (i128) progression must stay in
/// `[0, i64::MAX]` — it is monotone, so checking both endpoints covers
/// every lane (the wrapped per-lane i64 result is the unique
/// representative of the exact value's residue class in i64 range, hence
/// equal to it, and `to_addr` is the identity on non-negatives) — and the
/// module map must advance by a constant node step per lane
/// ([`SharedMemory::strided_node_step`]; low-order interleaving only).
/// Returns lane 0's address and the node step.
fn strided_addr(
    ctx: &ThickCtx<'_>,
    ab: Word,
    off: Word,
    astride: Word,
    len: usize,
) -> Option<(Addr, usize)> {
    let w0 = (ab as i128) + (off as i128);
    let wlast = w0 + (astride as i128) * ((len - 1) as i128);
    let max = i64::MAX as i128;
    if w0 < 0 || w0 > max || wlast < 0 || wlast > max {
        return None;
    }
    let node_step = ctx.shared.strided_node_step(astride)?;
    Some((w0 as Addr, node_step))
}

/// Walks two piece lists covering the same lane count in lockstep,
/// calling `f(start, len, a_run, b_run)` once per maximal sub-run over
/// which both lists are single progressions — the union of the two run
/// boundary sets. Aborts (returning `false`) as soon as `f` does.
fn each_piece_pair(
    a: &[Seg],
    b: &[Seg],
    mut f: impl FnMut(usize, usize, (Word, Word), (Word, Word)) -> bool,
) -> bool {
    let (mut ai, mut aoff) = (0usize, 0usize);
    let (mut bi, mut boff) = (0usize, 0usize);
    let mut at = 0usize;
    while ai < a.len() && bi < b.len() {
        let ra = a[ai].len as usize - aoff;
        let rb = b[bi].len as usize - boff;
        let n = ra.min(rb);
        let ar = (a[ai].get(aoff), a[ai].stride);
        let br = (b[bi].get(boff), b[bi].stride);
        if !f(at, n, ar, br) {
            return false;
        }
        at += n;
        aoff += n;
        boff += n;
        if aoff == a[ai].len as usize {
            ai += 1;
            aoff = 0;
        }
        if boff == b[bi].len as usize {
            bi += 1;
            boff = 0;
        }
    }
    true
}

/// Truncates a fragment output's accumulating logs back to the given
/// marks — the masked compressed path emits runs as it walks the mask and
/// must unwind them completely when a later run escapes the closed form
/// (the per-lane fallback re-executes the whole slice).
fn unwind(out: &mut FragOut, marks: (usize, usize, usize, usize)) {
    let (units, refs, wbs, affine) = marks;
    out.units.truncate(units);
    out.refs.truncate(refs);
    out.wbs.truncate(wbs);
    out.reg_affine.truncate(affine);
}

/// Emits the closed-form stores of lanes `[sub_lo, sub_lo + n)` — one
/// [`UnitSeq::SharedRun`] plus one `StridedWrite` per sub-run of the union
/// split of the base and value registers' run boundaries. `Err(Lanes)`
/// when either register holds explicit lanes or an address progression
/// escapes the [`strided_addr`] guard; `Err(Budget)` past the run budget.
#[allow(clippy::too_many_arguments)]
fn emit_strided_store(
    ctx: &ThickCtx<'_>,
    out: &mut FragOut,
    a: &mut Vec<Seg>,
    b: &mut Vec<Seg>,
    base: Reg,
    off: Word,
    rs: Reg,
    sub_lo: usize,
    n: usize,
) -> Result<(), MaskError> {
    use tcf_mem::{MemOp, RefOrigin};

    let flow = ctx.flow;
    a.clear();
    b.clear();
    if !flow.regs.value(base).piece_runs(sub_lo, n, a)
        || !flow.regs.value(rs).piece_runs(sub_lo, n, b)
    {
        return Err(MaskError::Lanes);
    }
    if a.len().max(b.len()) > MASK_RUN_BUDGET {
        return Err(MaskError::Budget);
    }
    let ok = each_piece_pair(a, b, |start, m, (ab, astride), (vb, vstride)| {
        let Some((a0, node_step)) = strided_addr(ctx, ab, off, astride, m) else {
            return false;
        };
        out.units.push(UnitSeq::SharedRun {
            flow: flow.id,
            thread0: sub_lo + start,
            count: m,
            node0: ctx.shared.module_of(a0),
            node_step,
            nodes: ctx.shared.modules(),
        });
        out.refs.push(MemRef::new(
            RefOrigin::new(ctx.group, flow.rank_base + sub_lo + start),
            MemOp::StridedWrite {
                base: a0,
                stride: astride,
                count: m as u32,
                vbase: vb,
                vstride,
            },
        ));
        true
    });
    if ok {
        Ok(())
    } else {
        Err(MaskError::Lanes)
    }
}

/// Attempts to execute the whole slice in closed form: when every operand
/// the instruction reads is stride-compressed (uniform, affine or a
/// segment run) over the slice's lanes, the per-lane loop collapses to
/// O(#runs) affine algebra — run-length [`UnitSeq`] spans, an affine
/// register-write log, and (for shared-memory traffic) strided bulk
/// references. Divergence no longer forces a fallback: a non-uniform
/// `Sel`/`StMasked` condition classifies into a run-length [`LaneMask`]
/// and each run executes its branch closed-form, while operands whose
/// range straddles `Segments` boundaries split at the union of their run
/// boundaries ([`each_piece_pair`]) — so comparisons over compressed
/// operands produce masks (segment runs) instead of decaying. Returns
/// `false` to fall back to the per-lane loop only when the algebra
/// genuinely escapes (per-thread operands, guarded comparisons out of
/// exact range, wrapping/clamping addresses, hashed module maps on
/// strided targets, local memory) or when the run count exceeds
/// [`MASK_RUN_BUDGET`] (the `decay_mask_runs` taxonomy reason, flagged on
/// `out.mask_decay`). Multioperations and multiprefixes with piecewise
/// base and contribution operands compress to one [`MemOp::BulkMulti`]
/// reference per sub-run.
///
/// Bit-identity with the per-lane path holds by construction: ALU folding
/// goes through [`affine_alu`] (exact mod 2^64; comparisons only when
/// both progressions are provably exact), mask classification only
/// happens on exact progressions, strided addresses are only emitted
/// under the [`strided_addr`] guard, and every run-length unit/reference
/// sequence expands to exactly the per-lane sequence in lane order.
///
/// [`LaneMask`]: crate::thick::LaneMask
/// [`MASK_RUN_BUDGET`]: crate::thick::MASK_RUN_BUDGET
fn exec_thick_compressed(ctx: &ThickCtx<'_>, out: &mut FragOut, scratch: &mut MaskScratch) -> bool {
    use tcf_isa::instr::{MemSpace, Operand};
    use tcf_isa::reg::SpecialReg;
    use tcf_mem::{MemOp, RefOrigin};

    let flow = ctx.flow;
    let fid = flow.id;
    let lo = out.range.start;
    let len = out.range.len();
    if len == 0 {
        return true;
    }
    let affine_reg = |r: Reg| flow.regs.value(r).affine_over(lo, len);
    let affine_opnd = |o: Operand| match o {
        Operand::Reg(r) => affine_reg(r),
        Operand::Imm(w) => Some((w, 0)),
    };
    let compute_run = UnitSeq::ComputeRun {
        flow: fid,
        thread0: lo,
        count: len,
    };
    match ctx.instr {
        DecodedInst::Alu { op, rd, ra, rb } => {
            // Single-run fast path: both operands are one progression over
            // the whole slice.
            if let (Some(a), Some(b)) = (affine_reg(ra), affine_opnd(rb)) {
                let runs = match affine_alu(op, a, b, len) {
                    Some(r) => r,
                    None => return false,
                };
                let mut base = lo;
                for s in runs.runs() {
                    out.reg_affine
                        .push((rd, base, s.len as usize, s.base, s.stride));
                    base += s.len as usize;
                }
                out.units.push(compute_run);
                return true;
            }
            // Piecewise path: split at the union of both operands' run
            // boundaries and fold each sub-run. This keeps comparison
            // results over `Segments` operands compressed — they become
            // runs (masks) instead of decaying to lanes.
            scratch.a.clear();
            scratch.b.clear();
            if !flow.regs.value(ra).piece_runs(lo, len, &mut scratch.a) {
                out.mask_miss = true;
                return false;
            }
            let ok = match rb {
                Operand::Reg(r) => flow.regs.value(r).piece_runs(lo, len, &mut scratch.b),
                Operand::Imm(w) => {
                    scratch.b.push(Seg {
                        len: len as u32,
                        base: w,
                        stride: 0,
                    });
                    true
                }
            };
            if !ok {
                out.mask_miss = true;
                return false;
            }
            if scratch.a.len().max(scratch.b.len()) > MASK_RUN_BUDGET {
                out.mask_decay = true;
                out.mask_miss = true;
                return false;
            }
            let marks = (
                out.units.len(),
                out.refs.len(),
                out.wbs.len(),
                out.reg_affine.len(),
            );
            let ok = each_piece_pair(&scratch.a, &scratch.b, |start, n, ar, br| {
                let Some(runs) = affine_alu(op, ar, br, n) else {
                    return false;
                };
                let mut base = lo + start;
                for s in runs.runs() {
                    out.reg_affine
                        .push((rd, base, s.len as usize, s.base, s.stride));
                    base += s.len as usize;
                }
                true
            });
            if !ok {
                unwind(out, marks);
                out.mask_miss = true;
                return false;
            }
            out.mask_hit = true;
            out.units.push(compute_run);
            true
        }
        DecodedInst::Mfs { rd, sr } => {
            // Thick classification admits only Tid/Gid here; both are
            // the lane index plus a flow constant — affine, stride 1.
            let base = match sr {
                SpecialReg::Tid => (flow.tid_offset + lo) as Word,
                SpecialReg::Gid => (flow.rank_base + lo) as Word,
                _ => return false,
            };
            out.reg_affine.push((rd, lo, len, base, 1));
            out.units.push(compute_run);
            true
        }
        DecodedInst::Sel { rd, cond, rt, rf } => {
            // Uniform condition over the slice: every lane takes the
            // same branch, so the result is the chosen operand's run.
            if let Some((c, 0)) = affine_reg(cond) {
                let chosen = if c != 0 {
                    affine_reg(rt)
                } else {
                    affine_opnd(rf)
                };
                if let Some((vb, vs)) = chosen {
                    out.reg_affine.push((rd, lo, len, vb, vs));
                    out.units.push(compute_run);
                    return true;
                }
            }
            // Masked path: classify the condition's truthiness into a
            // run-length lane mask and let each run take its branch's
            // pieces. A uniform condition with a piecewise chosen operand
            // lands here too — the mask is then a single run.
            match scratch
                .mask
                .rebuild(flow.regs.value(cond), lo, len, MASK_RUN_BUDGET)
            {
                Ok(()) => {}
                Err(MaskError::Budget) => {
                    out.mask_decay = true;
                    out.mask_miss = true;
                    return false;
                }
                Err(MaskError::Lanes) => {
                    out.mask_miss = true;
                    return false;
                }
            }
            let marks = (
                out.units.len(),
                out.refs.len(),
                out.wbs.len(),
                out.reg_affine.len(),
            );
            let mut emitted = 0usize;
            for run in scratch.mask.runs() {
                scratch.a.clear();
                let ok = if run.set {
                    flow.regs
                        .value(rt)
                        .piece_runs(lo + run.start, run.len, &mut scratch.a)
                } else {
                    match rf {
                        Operand::Reg(r) => {
                            flow.regs
                                .value(r)
                                .piece_runs(lo + run.start, run.len, &mut scratch.a)
                        }
                        Operand::Imm(w) => {
                            scratch.a.push(Seg {
                                len: run.len as u32,
                                base: w,
                                stride: 0,
                            });
                            true
                        }
                    }
                };
                if !ok {
                    unwind(out, marks);
                    out.mask_miss = true;
                    return false;
                }
                emitted += scratch.a.len();
                if emitted > MASK_RUN_BUDGET {
                    unwind(out, marks);
                    out.mask_decay = true;
                    out.mask_miss = true;
                    return false;
                }
                let mut base = lo + run.start;
                for s in &scratch.a {
                    out.reg_affine
                        .push((rd, base, s.len as usize, s.base, s.stride));
                    base += s.len as usize;
                }
            }
            out.mask_hit = true;
            out.units.push(compute_run);
            true
        }
        DecodedInst::Ld {
            rd,
            base,
            off,
            space: MemSpace::Shared,
        } => {
            if let Some((ab, astride)) = affine_reg(base) {
                let (a0, node_step) = match strided_addr(ctx, ab, off, astride, len) {
                    Some(x) => x,
                    None => return false,
                };
                out.units.push(UnitSeq::SharedRun {
                    flow: fid,
                    thread0: lo,
                    count: len,
                    node0: ctx.shared.module_of(a0),
                    node_step,
                    nodes: ctx.shared.modules(),
                });
                out.wbs.push((
                    rd,
                    WbTarget::Lanes {
                        base: lo,
                        count: len,
                    },
                    out.refs.len(),
                ));
                out.refs.push(MemRef::new(
                    RefOrigin::new(ctx.group, flow.rank_base + lo),
                    MemOp::StridedRead {
                        base: a0,
                        stride: astride,
                        count: len as u32,
                    },
                ));
                return true;
            }
            // Piecewise base: one strided read per address-progression
            // run, each with its own lane-window writeback — the replies
            // still land closed-form via `BulkView`.
            scratch.a.clear();
            if !flow.regs.value(base).piece_runs(lo, len, &mut scratch.a) {
                out.mask_miss = true;
                return false;
            }
            if scratch.a.len() > MASK_RUN_BUDGET {
                out.mask_decay = true;
                out.mask_miss = true;
                return false;
            }
            let marks = (
                out.units.len(),
                out.refs.len(),
                out.wbs.len(),
                out.reg_affine.len(),
            );
            let mut at = lo;
            for s in &scratch.a {
                let m = s.len as usize;
                let Some((a0, node_step)) = strided_addr(ctx, s.base, off, s.stride, m) else {
                    unwind(out, marks);
                    out.mask_miss = true;
                    return false;
                };
                out.units.push(UnitSeq::SharedRun {
                    flow: fid,
                    thread0: at,
                    count: m,
                    node0: ctx.shared.module_of(a0),
                    node_step,
                    nodes: ctx.shared.modules(),
                });
                out.wbs
                    .push((rd, WbTarget::Lanes { base: at, count: m }, out.refs.len()));
                out.refs.push(MemRef::new(
                    RefOrigin::new(ctx.group, flow.rank_base + at),
                    MemOp::StridedRead {
                        base: a0,
                        stride: s.stride,
                        count: m as u32,
                    },
                ));
                at += m;
            }
            out.mask_hit = true;
            true
        }
        DecodedInst::St {
            rs,
            base,
            off,
            space: MemSpace::Shared,
        }
        | DecodedInst::StMasked {
            rs,
            base,
            off,
            space: MemSpace::Shared,
            ..
        } => {
            // Resolve the store mask. `St` and a uniformly-selected
            // `StMasked` store every lane; a divergent `StMasked`
            // condition classifies into truthiness runs so the write
            // splits at run boundaries instead of materializing lanes.
            let mut masked = false;
            if let DecodedInst::StMasked { cond, .. } = ctx.instr {
                match affine_reg(cond) {
                    // Uniformly masked out: every lane still burns its
                    // issue slot as a compute unit.
                    Some((0, 0)) => {
                        out.units.push(compute_run);
                        return true;
                    }
                    Some((_, 0)) => {} // uniformly selected: plain store
                    _ => {
                        match scratch
                            .mask
                            .rebuild(flow.regs.value(cond), lo, len, MASK_RUN_BUDGET)
                        {
                            Ok(()) => masked = true,
                            Err(MaskError::Budget) => {
                                out.mask_decay = true;
                                out.mask_miss = true;
                                return false;
                            }
                            Err(MaskError::Lanes) => {
                                out.mask_miss = true;
                                return false;
                            }
                        }
                    }
                }
            }
            let marks = (
                out.units.len(),
                out.refs.len(),
                out.wbs.len(),
                out.reg_affine.len(),
            );
            if masked {
                // Emitting runs in lane order — set runs become strided
                // writes, clear runs burn their issue slots as compute
                // units — expands to exactly the per-lane sequence.
                let mask = std::mem::take(&mut scratch.mask);
                let mut res = Ok(());
                for run in mask.runs() {
                    if !run.set {
                        out.units.push(UnitSeq::ComputeRun {
                            flow: fid,
                            thread0: lo + run.start,
                            count: run.len,
                        });
                        continue;
                    }
                    res = emit_strided_store(
                        ctx,
                        out,
                        &mut scratch.a,
                        &mut scratch.b,
                        base,
                        off,
                        rs,
                        lo + run.start,
                        run.len,
                    );
                    if res.is_err() {
                        break;
                    }
                    if out.refs.len() - marks.1 > MASK_RUN_BUDGET {
                        res = Err(MaskError::Budget);
                        break;
                    }
                }
                scratch.mask = mask;
                match res {
                    Ok(()) => {
                        out.mask_hit = true;
                        return true;
                    }
                    Err(e) => {
                        unwind(out, marks);
                        if matches!(e, MaskError::Budget) {
                            out.mask_decay = true;
                        }
                        out.mask_miss = true;
                        return false;
                    }
                }
            }
            match emit_strided_store(
                ctx,
                out,
                &mut scratch.a,
                &mut scratch.b,
                base,
                off,
                rs,
                lo,
                len,
            ) {
                Ok(()) => {
                    // A single strided ref is the pre-mask fast path; more
                    // than one means a piecewise operand stayed closed-form.
                    if out.refs.len() - marks.1 > 1 {
                        out.mask_hit = true;
                    }
                    true
                }
                Err(e) => {
                    unwind(out, marks);
                    if matches!(e, MaskError::Budget) {
                        out.mask_decay = true;
                        out.mask_miss = true;
                    }
                    false
                }
            }
        }
        DecodedInst::MultiOp {
            kind,
            base,
            off,
            rs,
        }
        | DecodedInst::MultiPrefix {
            kind,
            base,
            off,
            rs,
            ..
        } => {
            use tcf_isa::word::to_addr;
            let rd = match ctx.instr {
                DecodedInst::MultiPrefix { rd, .. } => Some(rd),
                _ => None,
            };
            // Gather both operands as run lists; the single-progression
            // case is just a one-piece walk.
            scratch.a.clear();
            scratch.b.clear();
            if !flow.regs.value(base).piece_runs(lo, len, &mut scratch.a)
                || !flow.regs.value(rs).piece_runs(lo, len, &mut scratch.b)
            {
                out.mask_miss = true;
                return false;
            }
            if scratch.a.len().max(scratch.b.len()) > MASK_RUN_BUDGET {
                out.mask_decay = true;
                out.mask_miss = true;
                return false;
            }
            let piecewise = scratch.a.len() > 1 || scratch.b.len() > 1;
            let marks = (
                out.units.len(),
                out.refs.len(),
                out.wbs.len(),
                out.reg_affine.len(),
            );
            let ok = each_piece_pair(
                &scratch.a,
                &scratch.b,
                |start, m, (ab, astride), (vb, vstride)| {
                    let (a0, node_step) = if astride == 0 {
                        // Uniform base: every lane targets one word, and the
                        // per-lane wrap/clamp applies identically to each lane —
                        // no exactness guard needed, and the single module works
                        // under any map (node step 0).
                        (to_addr(ab.wrapping_add(off)), 0)
                    } else {
                        match strided_addr(ctx, ab, off, astride, m) {
                            Some(x) => x,
                            None => return false,
                        }
                    };
                    out.units.push(UnitSeq::SharedRun {
                        flow: fid,
                        thread0: lo + start,
                        count: m,
                        node0: ctx.shared.module_of(a0),
                        node_step,
                        nodes: ctx.shared.modules(),
                    });
                    if let Some(rd) = rd {
                        out.wbs.push((
                            rd,
                            WbTarget::Lanes {
                                base: lo + start,
                                count: m,
                            },
                            out.refs.len(),
                        ));
                    }
                    out.refs.push(MemRef::new(
                        RefOrigin::new(ctx.group, flow.rank_base + lo + start),
                        MemOp::BulkMulti {
                            kind,
                            prefix: rd.is_some(),
                            base: a0,
                            astride,
                            count: m as u32,
                            vbase: vb,
                            vstride,
                        },
                    ));
                    true
                },
            );
            if !ok {
                unwind(out, marks);
                if piecewise {
                    out.mask_miss = true;
                }
                return false;
            }
            if piecewise {
                out.mask_hit = true;
            }
            true
        }
        _ => false,
    }
}

/// Executes `out.range`'s lanes of `ctx.instr` against a read-only
/// register view, logging register writes and applying local-memory
/// traffic to `local` (with an undo log). Stops at the first fault.
///
/// Both engines run thick lanes through here; the lane semantics live in
/// exactly one place. Stride-compressed operands short-circuit into
/// [`exec_thick_compressed`] — and because a slice's bounds derive only
/// from the fragments and the variant bound, both engines make the same
/// compressed-or-per-lane decision for every slice.
pub(crate) fn exec_thick_lanes(ctx: &ThickCtx<'_>, local: &mut LocalMemory, out: &mut FragOut) {
    use tcf_isa::instr::{MemSpace, Operand};
    use tcf_isa::word::to_addr;
    use tcf_mem::{MemOp, RefOrigin};

    use crate::error::TcfFault;
    use crate::machine::special_value;

    // The scratch is swapped out of `out` so the executors can borrow the
    // fragment output mutably while reusing the pooled mask/run buffers.
    let mut scratch = std::mem::take(&mut out.scratch);
    let compressed = exec_thick_compressed(ctx, out, &mut scratch);
    if compressed {
        out.scratch = scratch;
        out.compressed = true;
        return;
    }
    let vector = exec_thick_vector(ctx, out, &mut scratch);
    out.scratch = scratch;
    if vector {
        return;
    }

    let flow = ctx.flow;
    let group = ctx.group;
    let fid = flow.id;
    let fault = |out: &mut FragOut, f: TcfFault| {
        out.fault = Some(TcfError {
            fault: f,
            step: ctx.step,
            flow: Some(fid),
        });
    };

    for e in out.range.clone() {
        let origin = RefOrigin::new(group, flow.rank_base + e);
        match ctx.instr {
            DecodedInst::Alu { op, rd, ra, rb } => {
                let a = flow.regs.read(ra, e);
                let b = match rb {
                    Operand::Reg(r) => flow.regs.read(r, e),
                    Operand::Imm(w) => w,
                };
                out.log_reg(rd, e, op.eval(a, b));
                out.units.push(IssueUnit::compute(fid, e).into());
            }
            DecodedInst::Mfs { rd, sr } => {
                let v = special_value(flow, e, sr, ctx.config);
                out.log_reg(rd, e, v);
                out.units.push(IssueUnit::compute(fid, e).into());
            }
            DecodedInst::Sel { rd, cond, rt, rf } => {
                let v = if flow.regs.read(cond, e) != 0 {
                    flow.regs.read(rt, e)
                } else {
                    match rf {
                        Operand::Reg(r) => flow.regs.read(r, e),
                        Operand::Imm(w) => w,
                    }
                };
                out.log_reg(rd, e, v);
                out.units.push(IssueUnit::compute(fid, e).into());
            }
            DecodedInst::Ld {
                rd,
                base,
                off,
                space,
            } => {
                let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                match space {
                    MemSpace::Shared => {
                        out.units
                            .push(IssueUnit::shared_mem(fid, e, ctx.shared.module_of(addr)).into());
                        out.wbs.push((rd, WbTarget::Lane(e), out.refs.len()));
                        out.refs.push(MemRef::new(origin, MemOp::Read(addr)));
                    }
                    MemSpace::Local => {
                        out.units.push(IssueUnit::local_mem(fid, e).into());
                        match local.read(addr) {
                            Ok(v) => out.log_reg(rd, e, v),
                            Err(err) => return fault(out, err.into()),
                        }
                    }
                }
            }
            DecodedInst::St {
                rs,
                base,
                off,
                space,
            } => {
                let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                let v = flow.regs.read(rs, e);
                match space {
                    MemSpace::Shared => {
                        out.units
                            .push(IssueUnit::shared_mem(fid, e, ctx.shared.module_of(addr)).into());
                        out.refs.push(MemRef::new(origin, MemOp::Write(addr, v)));
                    }
                    MemSpace::Local => {
                        out.units.push(IssueUnit::local_mem(fid, e).into());
                        if let Ok(old) = local.read(addr) {
                            out.local_undo.push((addr, old));
                        }
                        if let Err(err) = local.write(addr, v) {
                            return fault(out, err.into());
                        }
                    }
                }
            }
            DecodedInst::StMasked {
                cond,
                rs,
                base,
                off,
                space,
            } => {
                let selected = flow.regs.read(cond, e) != 0;
                let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                let v = flow.regs.read(rs, e);
                if selected {
                    match space {
                        MemSpace::Shared => {
                            out.units.push(
                                IssueUnit::shared_mem(fid, e, ctx.shared.module_of(addr)).into(),
                            );
                            out.refs.push(MemRef::new(origin, MemOp::Write(addr, v)));
                        }
                        MemSpace::Local => {
                            out.units.push(IssueUnit::local_mem(fid, e).into());
                            if let Ok(old) = local.read(addr) {
                                out.local_undo.push((addr, old));
                            }
                            if let Err(err) = local.write(addr, v) {
                                return fault(out, err.into());
                            }
                        }
                    }
                } else {
                    // The lane still occupies its slot (vector-style
                    // masked execution).
                    out.units.push(IssueUnit::compute(fid, e).into());
                }
            }
            DecodedInst::MultiOp {
                kind,
                base,
                off,
                rs,
            } => {
                let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                let v = flow.regs.read(rs, e);
                out.units
                    .push(IssueUnit::shared_mem(fid, e, ctx.shared.module_of(addr)).into());
                out.refs
                    .push(MemRef::new(origin, MemOp::Multi(kind, addr, v)));
            }
            DecodedInst::MultiPrefix {
                kind,
                rd,
                base,
                off,
                rs,
            } => {
                let addr = to_addr(flow.regs.read(base, e).wrapping_add(off));
                let v = flow.regs.read(rs, e);
                out.units
                    .push(IssueUnit::shared_mem(fid, e, ctx.shared.module_of(addr)).into());
                out.wbs.push((rd, WbTarget::Lane(e), out.refs.len()));
                out.refs
                    .push(MemRef::new(origin, MemOp::Prefix(kind, addr, v)));
            }
            other => {
                return fault(
                    out,
                    TcfFault::Internal {
                        what: format!("`{}` classified as thick", other.name()),
                    },
                )
            }
        }
    }
}

/// Vectorized per-lane fallback for the pure compute instructions (`Alu`,
/// `Sel`) once the compressed path has declined — the structure-of-arrays
/// kernels of [`crate::lanes`]. Operands are gathered into the slice's
/// pooled [`LanePlanes`] via [`ThickValue::fill_lanes`] (bit-identical to
/// per-lane `regs.read`), evaluated by one chunked kernel directly into
/// `reg_values`, and logged as a single register run plus one
/// [`UnitSeq::ComputeRun`]. Both encodings are exactly what the scalar
/// loop's ascending per-lane `log_reg`/`IssueUnit::compute` pushes replay
/// to: `write_lanes` sees the same `(rd, base, values)` run, and
/// `ComputeRun` expands to the same per-lane units for timing, stats and
/// traces (the PR 4 run-length contract). Memory instructions keep the
/// scalar loop — their per-lane addresses, undo logs and first-fault stop
/// are inherently lane-serial.
///
/// [`ThickValue::fill_lanes`]: crate::thick::ThickValue::fill_lanes
fn exec_thick_vector(ctx: &ThickCtx<'_>, out: &mut FragOut, scratch: &mut MaskScratch) -> bool {
    use tcf_isa::instr::Operand;

    let flow = ctx.flow;
    let lo = out.range.start;
    let len = out.range.len();
    if len == 0 {
        return false;
    }
    let rd = match ctx.instr {
        DecodedInst::Alu { op, rd, ra, rb } => {
            let a = lanes::prep(&mut out.planes.a, len);
            flow.regs.value(ra).fill_lanes(lo, a);
            let b = lanes::prep(&mut out.planes.b, len);
            match rb {
                Operand::Reg(r) => flow.regs.value(r).fill_lanes(lo, b),
                Operand::Imm(w) => b.fill(w),
            }
            out.reg_values.resize(len, 0);
            lanes::alu_lanes(op, a, b, &mut out.reg_values);
            rd
        }
        DecodedInst::Sel { rd, cond, rt, rf } => {
            let t = lanes::prep(&mut out.planes.b, len);
            flow.regs.value(rt).fill_lanes(lo, t);
            let f = lanes::prep(&mut out.planes.c, len);
            match rf {
                Operand::Reg(r) => flow.regs.value(r).fill_lanes(lo, f),
                Operand::Imm(w) => f.fill(w),
            }
            out.reg_values.resize(len, 0);
            // A condition with run structure blends run-wise through the
            // masked kernel (no per-lane condition plane); explicit lanes
            // fall back to the branchless per-lane blend.
            let cv = flow.regs.value(cond);
            if scratch.mask.rebuild(cv, lo, len, usize::MAX).is_ok() {
                lanes::select_lanes_mask(scratch.mask.runs(), t, f, &mut out.reg_values);
            } else {
                let c = lanes::prep(&mut out.planes.a, len);
                cv.fill_lanes(lo, c);
                lanes::select_lanes(c, t, f, &mut out.reg_values);
            }
            rd
        }
        _ => return false,
    };
    out.reg_runs.push((rd, lo, 0..len));
    out.units.push(UnitSeq::ComputeRun {
        flow: flow.id,
        thread0: lo,
        count: len,
    });
    true
}

/// Tries to merge a fragment's sole `BulkMulti` reference into the run at
/// the tail of `refs`. A thick multioperation compresses per slice, so
/// with `g` fragment groups it arrives as `g` rank-adjacent `BulkMulti`
/// references to the same word (or one affine target progression) — the
/// slice boundary is an engine artifact, not a semantic split, and left
/// unmerged the same-address spans trip the bulk overlap check and expand
/// to per-lane resolution. Merging requires exact continuation in rank,
/// address, contribution value and (for prefixes) the destination lane
/// window of the same flow's writeback; the merged run expands to
/// precisely the union of the two runs' lanes in the same rank order, so
/// semantics are untouched. Returns `false` (the caller appends normally)
/// whenever anything does not line up.
fn coalesce_bulk_multi(
    refs: &mut [MemRef],
    wbs: &mut [Writeback],
    out: &FragOut,
    flow: u32,
) -> bool {
    use tcf_mem::MemOp;

    if out.refs.len() != 1 {
        return false;
    }
    let new = out.refs[0];
    let MemOp::BulkMulti {
        kind,
        prefix,
        base,
        astride,
        count,
        vbase,
        vstride,
    } = new.op
    else {
        return false;
    };
    let Some(last) = refs.last() else {
        return false;
    };
    let MemOp::BulkMulti {
        kind: lkind,
        prefix: lprefix,
        base: lbase,
        astride: lastride,
        count: lcount,
        vbase: lvbase,
        vstride: lvstride,
    } = last.op
    else {
        return false;
    };
    if kind != lkind
        || prefix != lprefix
        || astride != lastride
        || vstride != lvstride
        || new.origin.rank != last.origin.rank + lcount as usize
        || base as i128 != lbase as i128 + lcount as i128 * astride as i128
        || vbase != lvbase.wrapping_add((lcount as Word).wrapping_mul(vstride))
    {
        return false;
    }
    let merged_wb = if prefix {
        // The continuation must extend the previous slice's reply window
        // (same flow, same destination, adjacent lanes).
        if out.wbs.len() != 1 {
            return false;
        }
        let (rd, target, ri) = out.wbs[0];
        let WbTarget::Lanes {
            base: nwb,
            count: nwc,
        } = target
        else {
            return false;
        };
        let Some(wlast) = wbs.last() else {
            return false;
        };
        let WbTarget::Lanes {
            base: owb,
            count: owc,
        } = wlast.target
        else {
            return false;
        };
        if ri != 0
            || wlast.flow != flow
            || wlast.rd != rd
            || wlast.ref_idx != refs.len() - 1
            || owb + owc != nwb
            || nwc != count as usize
        {
            return false;
        }
        Some(WbTarget::Lanes {
            base: owb,
            count: owc + nwc,
        })
    } else {
        if !out.wbs.is_empty() {
            return false;
        }
        None
    };
    if let Some(target) = merged_wb {
        wbs.last_mut().expect("checked above").target = target;
    }
    refs.last_mut().expect("checked above").op = MemOp::BulkMulti {
        kind,
        prefix,
        base: lbase,
        astride,
        count: lcount + count,
        vbase: lvbase,
        vstride,
    };
    true
}

// ---------------------------------------------------------------------------
// Coordinator-side orchestration
// ---------------------------------------------------------------------------

impl TcfMachine {
    /// Executes the rank-contiguous `slices` of one thick instruction —
    /// inline for the sequential engine, fanned out over the worker pool
    /// for the parallel engine — and returns the fragment outputs in
    /// fragment order. Workers see a read-only flow and shared memory plus
    /// exclusive access to their fragment group's local memory.
    pub(crate) fn exec_slices(
        &mut self,
        flow: &Flow,
        instr: DecodedInst,
        slices: &[(Fragment, Range<usize>)],
        outs: &mut Vec<FragOut>,
    ) {
        let obs_on = self.obs.is_enabled();
        let step = self.steps;
        let pool = match (&self.engine, &self.pool) {
            (Engine::Parallel { .. }, Some(pool)) if slices.len() > 1 => Some(Arc::clone(pool)),
            _ => None,
        };
        while outs.len() < slices.len() {
            outs.push(FragOut::empty());
        }
        let outs = &mut outs[..slices.len()];
        for (out, &(frag, ref range)) in outs.iter_mut().zip(slices.iter()) {
            out.reset(frag, range.clone(), obs_on);
        }
        let shared = &self.shared;
        let config = &self.config;
        let locals = &mut self.locals;
        match pool {
            None => {
                for out in outs.iter_mut() {
                    let ctx = ThickCtx {
                        flow,
                        instr,
                        group: out.frag.group,
                        shared,
                        config,
                        step,
                    };
                    exec_thick_lanes(&ctx, &mut locals[out.frag.group], out);
                }
            }
            Some(pool) => {
                // Fragments of one flow occupy distinct groups (the
                // scheduler guarantees it), so handing each slice its
                // group's local memory takes each `&mut` exactly once.
                let mut lm: Vec<Option<&mut LocalMemory>> = locals.iter_mut().map(Some).collect();
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                    Vec::with_capacity(slices.len());
                for out in outs.iter_mut() {
                    let local = lm[out.frag.group]
                        .take()
                        .expect("fragments of one flow have distinct groups");
                    tasks.push(Box::new(move || {
                        let ctx = ThickCtx {
                            flow,
                            instr,
                            group: out.frag.group,
                            shared,
                            config,
                            step,
                        };
                        exec_thick_lanes(&ctx, local, out);
                    }));
                }
                pool.run(tasks);
            }
        }
        // Engine counters, at slice granularity. The worker assignment is
        // *virtual* (slice `i` → worker `i mod workers`), matching how the
        // pool hands out tasks, so the lane distribution is a property of
        // the slicing, not of runtime scheduling — deterministic across
        // runs and engines of the same worker count.
        let workers = match self.engine {
            Engine::Parallel { workers } => workers.max(1),
            Engine::Sequential => 1,
        };
        self.engine_counters.thick_instrs += 1;
        self.engine_counters.slices += outs.len() as u64;
        self.engine_counters.ensure_workers(workers);
        for (i, out) in outs.iter().enumerate() {
            if out.compressed {
                self.engine_counters.compressed_slices += 1;
            } else {
                self.engine_counters.per_lane_slices += 1;
            }
            if out.mask_hit {
                self.engine_counters.mask_hits += 1;
            }
            if out.mask_miss {
                self.engine_counters.mask_misses += 1;
            }
            if out.mask_decay {
                self.thick_decay.mask_runs += 1;
            }
            let w = i % workers;
            self.engine_counters.worker_lanes[w] += out.range.len() as u64;
            self.engine_counters.worker_slices[w] += 1;
        }
    }

    /// Merges fragment outputs in fragment order: register-write replay,
    /// unit/reference accumulation (with write-back index fixup), worker
    /// sink absorption and the §3.3 spill check — the exact interleaving
    /// the sequential engine performs. On a fault, later fragments' local
    /// writes are rolled back (the sequential engine never executed them)
    /// and the first fault in fragment order is returned.
    pub(crate) fn merge_frag_outs(
        &mut self,
        flow: &mut Flow,
        outs: &mut [FragOut],
        units: &mut [Vec<UnitSeq>],
        refs: &mut Vec<MemRef>,
        wbs: &mut Vec<Writeback>,
    ) -> Result<(), TcfError> {
        let t = flow.thickness;
        let cap = self.config.reg_cache_words;
        // A merge covering fewer lanes than the thickness is a *partial*
        // instruction — a Balanced bound-split slice resumed via
        // `next_op`. Its lane writes splice a window into the register,
        // so a decay here is the price of resuming, not of the values:
        // attribute it to the `balanced_resume` taxonomy reason.
        let partial = outs.iter().map(|o| o.range.len()).sum::<usize>() < t;
        let mut fault: Option<TcfError> = None;
        for out in outs.iter_mut() {
            if fault.is_some() {
                for &(addr, old) in out.local_undo.iter().rev() {
                    self.locals[out.frag.group]
                        .write(addr, old)
                        .expect("undo targets a previously written address");
                }
                continue;
            }
            // A slice logs register writes either per-lane (`reg_runs`)
            // or compressed (`reg_affine`), never both, so replay order
            // between the two logs is immaterial.
            for (rd, base, range) in &out.reg_runs {
                if flow
                    .regs
                    .write_lanes(*rd, *base, &out.reg_values[range.clone()], t)
                {
                    // A faulting fragment's replay writes only the
                    // executed prefix — the fault frontier — so its decay
                    // belongs to the `fault` reason (highest priority),
                    // then `balanced_resume`, then the generic lane write.
                    if out.fault.is_some() {
                        self.thick_decay.fault += 1;
                    } else if partial {
                        self.thick_decay.balanced_resume += 1;
                    } else {
                        self.thick_decay.lane_write += 1;
                    }
                }
            }
            for &(rd, base, count, vbase, vstride) in &out.reg_affine {
                flow.regs.write_affine(rd, base, count, vbase, vstride, t);
            }
            self.engine_counters.absorbed_events += out.obs.len() as u64;
            self.obs.absorb(&out.obs);
            if out.fault.is_some() {
                fault = out.fault.take();
                continue;
            }
            let base = refs.len();
            units[out.frag.group].extend_from_slice(&out.units);
            // Coalescing is only ever attempted for the compressed path's
            // single-BulkMulti shape; count its hit/miss rate there.
            let coalescable =
                out.refs.len() == 1 && matches!(out.refs[0].op, tcf_mem::MemOp::BulkMulti { .. });
            if coalesce_bulk_multi(refs, wbs, out, flow.id) {
                self.engine_counters.coalesce_hits += 1;
            } else {
                if coalescable {
                    self.engine_counters.coalesce_misses += 1;
                }
                refs.extend_from_slice(&out.refs);
                for &(rd, target, ri) in &out.wbs {
                    wbs.push(Writeback {
                        flow: flow.id,
                        rd,
                        target,
                        ref_idx: base + ri,
                    });
                }
            }
            // §3.3 operand storage: if this fragment's per-thread register
            // footprint exceeds the cached register file, the operands
            // live in the local memory — every thick operation pays one
            // extra local access (spill traffic).
            if cap > 0 && flow.regs.per_thread_count() * out.frag.len > cap {
                units[out.frag.group].push(UnitSeq::LocalRun {
                    flow: flow.id,
                    thread0: out.range.start,
                    count: out.range.len(),
                });
                // One run-compressed spill event covers the fragment's
                // lanes: a T-thick spilling step emits O(fragments)
                // events and timing spans, never O(T) of either.
                self.stats.spill_refs += out.range.len() as u64;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::Spill {
                        flow: flow.id,
                        group: out.frag.group,
                        lanes: out.range.len(),
                    },
                );
            }
        }
        match fault {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Phase 2: one PRAM memory step for all collected references —
    /// sequential, or sharded per module under the parallel engine. Both
    /// paths return identical replies and statistics (the shards resolve
    /// through the same per-address logic and merge in module order).
    pub(crate) fn memory_step(&mut self, refs: &[MemRef]) -> Result<StepStats, TcfError> {
        if refs.iter().any(|r| r.op.is_bulk()) {
            // Strided bulk references resolve on the coordinator under
            // BOTH engines: the disjoint fast path is already
            // O(modules + conflicting lanes), so sharding buys nothing,
            // and one code path keeps the engines trivially identical.
            let mut bulk = std::mem::take(&mut self.mem_bulk);
            let r = self
                .shared
                .step_bulk_into(
                    refs,
                    &mut self.mem_scratch,
                    &mut self.mem_replies,
                    &mut bulk,
                )
                .map_err(|e| self.host_err(e.into()));
            self.mem_bulk = bulk;
            return r;
        }
        self.mem_bulk.clear();
        let pool = match (&self.engine, &self.pool) {
            (Engine::Parallel { .. }, Some(pool))
                if refs.len() > 1 && self.shared.modules() > 1 =>
            {
                Arc::clone(pool)
            }
            _ => {
                return self
                    .shared
                    .step_into(refs, &mut self.mem_scratch, &mut self.mem_replies)
                    .map_err(|e| self.host_err(e.into()));
            }
        };
        let mut stats = self
            .shared
            .shard_refs_into(refs, &mut self.mem_buckets)
            .map_err(|e| self.host_err(e.into()))?;
        let shared = &self.shared;
        let buckets = &self.mem_buckets;
        debug_assert_eq!(buckets.len(), self.shard_scratch.len());
        let n_active = buckets.iter().filter(|b| !b.is_empty()).count();
        let mut slots: Vec<Option<Result<ShardOutcome, MemError>>> = vec![None; n_active];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n_active);
            let mut slot_iter = slots.iter_mut();
            // Zipping buckets with the per-module scratch keeps each
            // worker on its own buffers (workers only hold `&self.shared`).
            for (idxs, scratch) in buckets.iter().zip(self.shard_scratch.iter_mut()) {
                if idxs.is_empty() {
                    continue;
                }
                let slot = slot_iter.next().expect("one slot per active bucket");
                tasks.push(Box::new(move || {
                    *slot = Some(shared.resolve_shard_with(refs, idxs, scratch));
                }));
            }
            pool.run(tasks);
        }
        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(slots.len());
        let mut fault: Option<MemError> = None;
        for slot in slots {
            match slot.expect("pool ran every task") {
                Ok(o) => outcomes.push(o),
                Err(e) => {
                    // The sequential step resolves addresses in ascending
                    // order: the lowest faulting address wins.
                    if fault.as_ref().map(|f| e.addr() < f.addr()).unwrap_or(true) {
                        fault = Some(e);
                    }
                }
            }
        }
        if let Some(e) = fault {
            return Err(self.host_err(e.into()));
        }
        self.mem_replies.clear();
        self.mem_replies.resize(refs.len(), None);
        for o in &outcomes {
            stats.hot_addrs += o.hot_addrs;
            stats.combined += o.combined;
            for &(i, v) in &o.replies {
                self.mem_replies[i] = Some(v);
            }
        }
        self.shared.commit_shards(&outcomes);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn coalesce_bulk_multi_merges_exact_continuations() {
        use crate::exec_sync::{WbTarget, Writeback};
        use tcf_isa::instr::MultiKind;
        use tcf_isa::reg::r;
        use tcf_mem::{MemOp, MemRef, RefOrigin};

        fn bm(rank: usize, count: u32, vbase: Word, prefix: bool) -> MemRef {
            MemRef::new(
                RefOrigin::new(0, rank),
                MemOp::BulkMulti {
                    kind: MultiKind::Add,
                    prefix,
                    base: 64,
                    astride: 0,
                    count,
                    vbase,
                    vstride: 1,
                },
            )
        }
        fn cont(out: &mut FragOut, r: MemRef) {
            out.refs.clear();
            out.wbs.clear();
            out.refs.push(r);
        }

        let mut out = FragOut::empty();
        let mut no_wbs: Vec<Writeback> = Vec::new();

        // A rank- and value-exact continuation merges into one run.
        let mut refs = vec![bm(0, 256, 0, false)];
        cont(&mut out, bm(256, 256, 256, false));
        assert!(coalesce_bulk_multi(&mut refs, &mut no_wbs, &out, 7));
        assert_eq!(refs.len(), 1);
        let MemOp::BulkMulti { count, vbase, .. } = refs[0].op else {
            panic!("not a bulk multi");
        };
        assert_eq!((count, vbase), (512, 0));

        // A rank gap (not the next slice) refuses.
        let mut refs = vec![bm(0, 256, 0, false)];
        cont(&mut out, bm(300, 256, 256, false));
        assert!(!coalesce_bulk_multi(&mut refs, &mut no_wbs, &out, 7));

        // A broken value progression refuses.
        let mut refs = vec![bm(0, 256, 0, false)];
        cont(&mut out, bm(256, 256, 999, false));
        assert!(!coalesce_bulk_multi(&mut refs, &mut no_wbs, &out, 7));

        // Prefix runs merge their reply windows too.
        let mut refs = vec![bm(0, 256, 0, true)];
        let mut wbs = vec![Writeback {
            flow: 7,
            rd: r(2),
            target: WbTarget::Lanes {
                base: 0,
                count: 256,
            },
            ref_idx: 0,
        }];
        cont(&mut out, bm(256, 256, 256, true));
        out.wbs.push((
            r(2),
            WbTarget::Lanes {
                base: 256,
                count: 256,
            },
            0,
        ));
        assert!(coalesce_bulk_multi(&mut refs, &mut wbs, &out, 7));
        let MemOp::BulkMulti { count, .. } = refs[0].op else {
            panic!("not a bulk multi");
        };
        assert_eq!(count, 512);
        assert_eq!(wbs.len(), 1);
        let WbTarget::Lanes { base, count } = wbs[0].target else {
            panic!("not a lane window");
        };
        assert_eq!((base, count), (0, 512));

        // A prefix continuation from another flow's writeback refuses.
        let mut refs = vec![bm(0, 256, 0, true)];
        let mut wbs = vec![Writeback {
            flow: 8,
            rd: r(2),
            target: WbTarget::Lanes {
                base: 0,
                count: 256,
            },
            ref_idx: 0,
        }];
        cont(&mut out, bm(256, 256, 256, true));
        out.wbs.push((
            r(2),
            WbTarget::Lanes {
                base: 256,
                count: 256,
            },
            0,
        ));
        assert!(!coalesce_bulk_multi(&mut refs, &mut wbs, &out, 7));
    }

    #[test]
    fn engine_spec_parsing() {
        assert_eq!(Engine::from_spec("seq"), Some(Engine::Sequential));
        assert_eq!(Engine::from_spec("Sequential"), Some(Engine::Sequential));
        assert_eq!(
            Engine::from_spec("par:4"),
            Some(Engine::Parallel { workers: 4 })
        );
        assert_eq!(
            Engine::from_spec(" par:1 "),
            Some(Engine::Parallel { workers: 1 })
        );
        // 0 workers clamps to 1 rather than deadlocking.
        assert_eq!(
            Engine::from_spec("par:0"),
            Some(Engine::Parallel { workers: 1 })
        );
        assert_eq!(Engine::from_spec("par"), None);
        assert_eq!(Engine::from_spec("par:x"), None);
        assert_eq!(Engine::from_spec(""), None);
    }

    #[test]
    fn pool_runs_all_tasks_with_borrows() {
        let pool = global_pool(4);
        let mut results = vec![0usize; 64];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (i, slot) in results.iter_mut().enumerate() {
                tasks.push(Box::new(move || *slot = i * i));
            }
            pool.run(tasks);
        }
        for (i, &r) in results.iter().enumerate() {
            assert_eq!(r, i * i);
        }
    }

    #[test]
    fn single_worker_pool_drains_on_coordinator() {
        let pool = global_pool(1);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = global_pool(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| {}),
                Box::new(|| panic!("worker exploded")),
                Box::new(|| {}),
            ];
            pool.run(tasks);
        }));
        assert!(caught.is_err());
        // The pool survives a panicking batch.
        let ok = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            ok.fetch_add(1, Ordering::SeqCst);
        })];
        pool.run(tasks);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_pool_is_shared_per_worker_count() {
        let a = global_pool(3);
        let b = global_pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.workers(), 3);
    }
}
