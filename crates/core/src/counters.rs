//! Compression and engine counters — the low-overhead telemetry the
//! `repro metrics` command and the exporters surface.
//!
//! Two groups:
//!
//! * [`ThickDecayCounters`] — **why** compressed thick values
//!   (`Affine`/`Segments`) decayed to explicit per-thread lanes. Each
//!   field is one reason of the taxonomy (see
//!   `docs/OBSERVABILITY.md`); together they explain where a workload
//!   loses its stride compression.
//! * [`EngineCounters`] — what the thick-execution engine did: how many
//!   slices ran closed-form vs per-lane, how often rank-adjacent bulk
//!   references coalesced, how many observability events the merge
//!   absorbed, and how lanes were distributed over workers.
//!
//! Both structs are plain saturating-free `u64` adders updated on paths
//! that already branch (a decay, a slice merge), so the recording cost
//! is a handful of increments per *instruction*, not per lane — they
//! stay within the observability overhead budget and are
//! engine-independent (identical under `seq` and `par:N`), except for
//! the per-worker series which is virtual (rank-derived) and therefore
//! also engine-independent.

/// Why compressed (`Affine`/`Segments`) thick registers decayed to
/// explicit per-thread lanes. One counter per reason in the taxonomy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThickDecayCounters {
    /// Decays forced by a thickness change (`setthick`): compressed forms
    /// extend past the old thickness and must be pinned first.
    pub setthick: u64,
    /// Decays caused by a per-lane register write disagreeing with the
    /// compressed progression (the merge's `write_lanes` replay).
    pub lane_write: u64,
    /// Decays caused by a shared-memory reply landing lane-wise in a
    /// compressed register (phase-3 write-back).
    pub mem_reply: u64,
    /// Slices whose masked / piecewise closed-form execution was abandoned
    /// because the mask or operand run count exceeded
    /// [`MASK_RUN_BUDGET`](crate::thick::MASK_RUN_BUDGET) — the value had
    /// effectively lost its run structure, so execution decayed to the SoA
    /// lane planes.
    pub mask_runs: u64,
    /// Decays caused by a fault frontier: a faulting instruction stopped
    /// mid-thickness, so the partial lane writes of the already-executed
    /// prefix disagreed with the compressed progression when the merge
    /// replayed them (would have been `lane_write` on a completed
    /// instruction).
    pub fault: u64,
    /// Decays on a *partial* (resumed) Balanced instruction: the
    /// bound-split merge replayed a sub-instruction lane run into a
    /// compressed register and the splice had to materialize. A
    /// fully-compressed Balanced resume never increments this — the run
    /// splits in O(1) at the bound boundary.
    pub balanced_resume: u64,
    /// Decays inside an asynchronous (MultiInstruction) block slice: the
    /// per-lane fallback of the block executor materialized a compressed
    /// register, or a block had to shatter into unit flows (nested
    /// `spawn`).
    pub async_slice: u64,
}

impl ThickDecayCounters {
    /// Total decays across every reason.
    pub fn total(&self) -> u64 {
        self.setthick
            + self.lane_write
            + self.mem_reply
            + self.mask_runs
            + self.fault
            + self.balanced_resume
            + self.async_slice
    }
}

/// What the thick-execution engine did, counted at slice/merge
/// granularity (never per lane).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Thick instructions executed (one per flow per step that took the
    /// thick path).
    pub thick_instrs: u64,
    /// Fragment slices executed (a thick instruction spans one slice per
    /// fragment chunk).
    pub slices: u64,
    /// Slices fully handled by the closed-form compressed executor.
    pub compressed_slices: u64,
    /// Slices that fell back to the general per-lane executor.
    pub per_lane_slices: u64,
    /// Slices that stayed closed-form *through divergence*: a run-length
    /// lane mask or a piecewise operand split kept a `Sel`, comparison,
    /// masked store or strided reference compressed where it previously
    /// decayed to per-lane execution.
    pub mask_hits: u64,
    /// Slices that attempted masked / piecewise execution but fell back
    /// to the per-lane path (explicit-lane operands, inexact progressions,
    /// unguardable addresses, or the run budget — the budget subset is
    /// also counted as `decay_mask_runs`).
    pub mask_misses: u64,
    /// Rank-adjacent bulk references merged by `coalesce_bulk_multi`.
    pub coalesce_hits: u64,
    /// Bulk references that stayed separate (shape or adjacency mismatch).
    pub coalesce_misses: u64,
    /// Observability events absorbed from fragment outputs into the main
    /// sink during the merge.
    pub absorbed_events: u64,
    /// Lanes assigned per engine worker (virtual round-robin rank: slice
    /// `i` of a batch belongs to worker `i mod workers`), so the series
    /// is identical whichever engine actually ran. Length = worker count
    /// (1 for the sequential engine).
    pub worker_lanes: Vec<u64>,
    /// Slices assigned per engine worker (same virtual ranking).
    pub worker_slices: Vec<u64>,
}

impl EngineCounters {
    /// Total lanes executed across all workers.
    pub fn total_lanes(&self) -> u64 {
        self.worker_lanes.iter().sum()
    }

    /// Ensures the per-worker series cover `workers` entries.
    pub fn ensure_workers(&mut self, workers: usize) {
        if self.worker_lanes.len() < workers {
            self.worker_lanes.resize(workers, 0);
            self.worker_slices.resize(workers, 0);
        }
    }

    /// Per-worker busy share (lanes on the worker / total lanes), in
    /// parts-per-thousand for allocation-free integer export. Empty when
    /// nothing ran.
    pub fn worker_utilization_ppm(&self) -> Vec<u64> {
        let total = self.total_lanes();
        if total == 0 {
            return Vec::new();
        }
        self.worker_lanes
            .iter()
            .map(|&l| l * 1_000_000 / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_total_sums_reasons() {
        let c = ThickDecayCounters {
            setthick: 2,
            lane_write: 3,
            mem_reply: 5,
            mask_runs: 7,
            fault: 11,
            balanced_resume: 13,
            async_slice: 17,
        };
        assert_eq!(c.total(), 58);
    }

    #[test]
    fn worker_utilization_is_lane_share() {
        let mut e = EngineCounters::default();
        e.ensure_workers(2);
        e.worker_lanes[0] = 3;
        e.worker_lanes[1] = 1;
        assert_eq!(e.total_lanes(), 4);
        assert_eq!(e.worker_utilization_ppm(), vec![750_000, 250_000]);
        assert!(EngineCounters::default()
            .worker_utilization_ppm()
            .is_empty());
    }

    #[test]
    fn ensure_workers_never_shrinks() {
        let mut e = EngineCounters::default();
        e.ensure_workers(4);
        e.ensure_workers(2);
        assert_eq!(e.worker_lanes.len(), 4);
        assert_eq!(e.worker_slices.len(), 4);
    }
}
