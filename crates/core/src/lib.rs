#![warn(missing_docs)]
//! # tcf-core — the extended PRAM-NUMA model of computation
//!
//! The paper's contribution: replace the *thread* of the PRAM-NUMA model
//! with the **Thick Control Flow** (TCF) — a control flow with one program
//! counter, one call stack and a dynamically variable *thickness* `T`. One
//! TCF instruction means `T` identical data-parallel operations (PRAM
//! mode) or, with thickness `1/T` (NUMA mode), `T` consecutive
//! instructions of a single sequential stream.
//!
//! This crate implements the extended model and **all six of its variants**
//! (§3.2), each tied to an existing machine class:
//!
//! | [`Variant`] | corresponds to |
//! |---|---|
//! | `SingleInstruction` | the true TCF-aware model (this paper) |
//! | `Balanced { bound }` | TCF-aware with bounded per-step slices |
//! | `MultiInstruction` | XMT-style asynchronous spawn/join |
//! | `SingleOperation` | classic interleaved ESM (SB-PRAM, ECLIPSE) |
//! | `ConfigurableSingleOperation` | original PRAM-NUMA (TOTAL ECLIPSE) |
//! | `FixedThickness { width }` | traditional vector/SIMD machine |
//!
//! Key model behaviours implemented here:
//!
//! * **flow-wise execution** — calls, returns and branches happen once per
//!   flow, never per implicit thread; a non-uniform branch condition is a
//!   fault (the whole flow must select exactly one path, §2.2),
//! * **uniform-operand scalarization** — instructions whose operands are
//!   uniform across the flow execute once on common operands (the paper's
//!   "eliminates the need for replicating registers with identical value"),
//!   tracked by [`ThickValue`],
//! * **`split`/`join` control parallelism** — the `parallel` statement:
//!   child flows with their own thicknesses, implicit join, flow creation
//!   charged `O(R)` (Table 1's flow-branch row),
//! * **free task switching** — flows resident in the per-group
//!   [`TcfBuffer`] switch at zero cost; the buffer-capacity knee is the
//!   multitasking experiment,
//! * **horizontal allocation** — overly thick flows are split into
//!   fragments across processor groups (§3.3/§5), configurable via
//!   [`Allocation`].
//!
//! [`TcfBuffer`]: tcf_machine::TcfBuffer

pub mod counters;
mod decoded;
pub mod error;
pub mod exec_async;
pub mod exec_numa;
pub mod exec_sync;
pub mod flow;
pub mod lanes;
pub mod machine;
pub mod par_engine;
pub mod sched;
pub mod thick;
pub mod variant;

pub use counters::{EngineCounters, ThickDecayCounters};
pub use error::{TcfError, TcfFault};
pub use flow::{Flow, FlowStatus, Fragment};
pub use machine::{TcfMachine, DEFAULT_STEP_BUDGET};
pub use par_engine::Engine;
pub use sched::Allocation;
pub use thick::{
    affine_alu, AffineRuns, LaneMask, MaskError, MaskRun, Seg, ThickRegs, ThickValue,
    MASK_RUN_BUDGET,
};
pub use variant::Variant;
