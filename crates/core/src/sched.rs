//! Flow-to-processor allocation.
//!
//! §3.3/§5: when flows are allocated to TCF processors, the sum of
//! thickness per processor should stay balanced; TCF computing offers two
//! levers — running an arbitrary subset of flows, and splitting a flow's
//! execution into fragments on different processors. §5 concludes that
//! *horizontal* allocation (each flow spread as `T/P`-wide fragments over
//! all processors) beats *vertical* allocation (whole flows pinned to
//! single processors) for load balance.

use serde::{Deserialize, Serialize};

use crate::flow::Fragment;

/// Fragment-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Allocation {
    /// Pin each flow to one group, chosen round-robin by flow id
    /// (vertical allocation).
    Vertical,
    /// Split each flow's thickness evenly over all `P` groups
    /// (horizontal allocation, the paper's recommendation).
    Horizontal,
}

impl Allocation {
    /// Computes the fragments of a flow of `thickness` implicit threads on
    /// a machine of `groups` groups. `flow_id` seeds the round-robin of
    /// vertical allocation.
    ///
    /// A zero-thickness flow still gets one empty fragment so it has a
    /// home group for flow-wise instructions.
    pub fn fragments(&self, flow_id: u32, thickness: usize, groups: usize) -> Vec<Fragment> {
        assert!(groups > 0);
        match self {
            Allocation::Vertical => {
                vec![Fragment::new(flow_id as usize % groups, 0, thickness)]
            }
            Allocation::Horizontal => {
                if thickness == 0 {
                    return vec![Fragment::new(flow_id as usize % groups, 0, 0)];
                }
                let per = thickness.div_ceil(groups);
                let mut frags = Vec::new();
                let mut offset = 0;
                for g in 0..groups {
                    if offset >= thickness {
                        break;
                    }
                    let len = per.min(thickness - offset);
                    frags.push(Fragment::new(g, offset, len));
                    offset += len;
                }
                frags
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_pins_whole_flow() {
        let f = Allocation::Vertical.fragments(5, 100, 4);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].group, 1); // 5 % 4
        assert_eq!(f[0].len, 100);
    }

    #[test]
    fn horizontal_splits_evenly() {
        let f = Allocation::Horizontal.fragments(0, 100, 4);
        assert_eq!(f.len(), 4);
        assert_eq!(f.iter().map(|x| x.len).sum::<usize>(), 100);
        assert!(f.iter().all(|x| x.len == 25));
        // Offsets are contiguous.
        assert_eq!(f[1].offset, 25);
        assert_eq!(f[3].offset, 75);
    }

    #[test]
    fn horizontal_handles_remainders() {
        let f = Allocation::Horizontal.fragments(0, 10, 4);
        // ceil(10/4) = 3 → 3,3,3,1
        assert_eq!(
            f.iter().map(|x| x.len).collect::<Vec<_>>(),
            vec![3, 3, 3, 1]
        );
    }

    #[test]
    fn horizontal_thin_flow_uses_fewer_groups() {
        let f = Allocation::Horizontal.fragments(0, 2, 4);
        assert_eq!(f.len(), 2);
        assert_eq!(f.iter().map(|x| x.len).sum::<usize>(), 2);
    }

    #[test]
    fn zero_thickness_keeps_home_group() {
        for alloc in [Allocation::Vertical, Allocation::Horizontal] {
            let f = alloc.fragments(7, 0, 4);
            assert_eq!(f.len(), 1);
            assert_eq!(f[0].len, 0);
            assert_eq!(f[0].group, 3); // 7 % 4
        }
    }
}
