//! The six execution variants of the extended PRAM-NUMA model (§3.2) and
//! their capability/cost matrix (Table 1).

use serde::{Deserialize, Serialize};

use tcf_machine::MachineConfig;

/// Execution variant of the extended PRAM-NUMA machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Every flow executes exactly one TCF instruction per step, however
    /// thick. The most general variant; thick instructions of one flow can
    /// slow down thin instructions of co-resident flows (Figure 7).
    SingleInstruction,
    /// Every processor executes at most `bound` operations of a TCF
    /// instruction per step; incomplete instructions resume at the stored
    /// next-operation pointer (Figure 8).
    Balanced {
        /// Maximum operations per processor per step.
        bound: usize,
    },
    /// Multiple instructions per logical step, threads spawned
    /// asynchronously and run to completion — the XMT execution model
    /// (Figure 9). Loses PRAM lockstep; gains flexible parallel spawns.
    MultiInstruction,
    /// Thickness fixed at one, no NUMA: the standard interleaved ESM of
    /// SB-PRAM / ECLIPSE (Figure 10).
    SingleOperation,
    /// Thickness one plus NUMA bunching of processors: the original
    /// PRAM-NUMA model of TOTAL ECLIPSE (Figure 11).
    ConfigurableSingleOperation,
    /// One flow of fixed thickness `width` plus a scalar unit, no control
    /// parallelism: the traditional vector/SIMD machine (Figure 12).
    FixedThickness {
        /// The fixed vector width.
        width: usize,
    },
}

/// One row set of Table 1 for a variant, partly analytic (from the model
/// definition and machine config) and partly measured by the benches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantProperties {
    /// Variant name as used in the paper.
    pub name: &'static str,
    /// Maximum concurrently schedulable TCFs.
    pub num_tcfs: String,
    /// Number of implicit threads expressible.
    pub num_threads: String,
    /// Registers available per thread.
    pub regs_per_thread: String,
    /// Instruction fetches needed per TCF instruction.
    pub fetches_per_tcf: String,
    /// Asymptotic task-switch cost.
    pub task_switch: &'static str,
    /// Asymptotic flow-branch (flow creation) cost.
    pub flow_branch: &'static str,
    /// Supports synchronous PRAM-style operation.
    pub pram_op: bool,
    /// Supports NUMA-mode operation.
    pub numa_op: bool,
    /// How sequential code runs.
    pub sequential: &'static str,
    /// Supports multiple instruction streams.
    pub mimd: bool,
}

impl Variant {
    /// All variants at representative parameters, for enumeration.
    pub fn all(t_p: usize) -> [Variant; 6] {
        [
            Variant::SingleInstruction,
            Variant::Balanced { bound: t_p },
            Variant::MultiInstruction,
            Variant::SingleOperation,
            Variant::ConfigurableSingleOperation,
            Variant::FixedThickness { width: t_p },
        ]
    }

    /// The paper's name for the variant.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::SingleInstruction => "Single instruction",
            Variant::Balanced { .. } => "Balanced",
            Variant::MultiInstruction => "Multi-instruction",
            Variant::SingleOperation => "Single-operation",
            Variant::ConfigurableSingleOperation => "Configurable single operation",
            Variant::FixedThickness { .. } => "Fixed thickness",
        }
    }

    /// Whether `setthick` (dynamic thickness) is available.
    pub fn supports_setthick(&self) -> bool {
        matches!(self, Variant::SingleInstruction | Variant::Balanced { .. })
    }

    /// Whether NUMA-mode execution (`numa`/`endnuma`) is available.
    pub fn supports_numa(&self) -> bool {
        matches!(
            self,
            Variant::SingleInstruction
                | Variant::Balanced { .. }
                | Variant::ConfigurableSingleOperation
        )
    }

    /// Whether `split`/`join` control parallelism is available.
    pub fn supports_split(&self) -> bool {
        matches!(self, Variant::SingleInstruction | Variant::Balanced { .. })
    }

    /// Whether asynchronous `spawn`/`sjoin` is available.
    pub fn supports_spawn(&self) -> bool {
        matches!(self, Variant::MultiInstruction)
    }

    /// Whether execution keeps the PRAM's machine-instruction-level
    /// lockstep.
    pub fn pram_lockstep(&self) -> bool {
        !matches!(self, Variant::MultiInstruction)
    }

    /// Whether the machine runs multiple instruction streams.
    pub fn mimd(&self) -> bool {
        !matches!(self, Variant::FixedThickness { .. })
    }

    /// The per-step operation bound of the Balanced variant.
    pub fn bound(&self) -> Option<usize> {
        match self {
            Variant::Balanced { bound } => Some(*bound),
            _ => None,
        }
    }

    /// The Table 1 row set for this variant on machine `config`.
    pub fn properties(&self, config: &MachineConfig) -> VariantProperties {
        let p = config.groups;
        let tp = config.threads_per_group;
        let r = config.regs_per_thread;
        let ptp = p * tp;
        match self {
            Variant::SingleInstruction => VariantProperties {
                name: self.name(),
                num_tcfs: format!("P*Tp = {ptp}"),
                num_threads: "u (unbounded)".into(),
                regs_per_thread: format!("R/u + m (R = {r})"),
                fetches_per_tcf: "1".into(),
                task_switch: "0 (buffer-resident)",
                flow_branch: "O(R)",
                pram_op: true,
                numa_op: true,
                sequential: "NUMA",
                mimd: true,
            },
            Variant::Balanced { bound } => VariantProperties {
                name: self.name(),
                num_tcfs: format!("P*Tp = {ptp}"),
                num_threads: "u (unbounded)".into(),
                regs_per_thread: format!("R/u + m (R = {r})"),
                fetches_per_tcf: format!("u/b (b = {bound})"),
                task_switch: "0 (buffer-resident)",
                flow_branch: "O(R)",
                pram_op: true,
                numa_op: true,
                sequential: "NUMA",
                mimd: true,
            },
            Variant::MultiInstruction => VariantProperties {
                name: self.name(),
                num_tcfs: format!("P*Tp = {ptp}"),
                num_threads: "u (spawned)".into(),
                regs_per_thread: format!("R = {r}"),
                fetches_per_tcf: format!("Tp = {tp}"),
                task_switch: "O(1)",
                flow_branch: "O(1)",
                pram_op: false,
                numa_op: false,
                sequential: "single thread",
                mimd: true,
            },
            Variant::SingleOperation => VariantProperties {
                name: self.name(),
                num_tcfs: format!("P*Tp = {ptp}"),
                num_threads: format!("P*Tp = {ptp}"),
                regs_per_thread: format!("R = {r}"),
                fetches_per_tcf: format!("Tp = {tp}"),
                task_switch: "O(Tp)",
                flow_branch: "O(1)",
                pram_op: true,
                numa_op: false,
                sequential: "single thread (1/Tp utilization)",
                mimd: true,
            },
            Variant::ConfigurableSingleOperation => VariantProperties {
                name: self.name(),
                num_tcfs: format!("P*Tp = {ptp}"),
                num_threads: format!("P*Tp = {ptp}"),
                regs_per_thread: format!("R = {r}"),
                fetches_per_tcf: format!("Tp = {tp}"),
                task_switch: "O(Tp)",
                flow_branch: "O(1)",
                pram_op: true,
                numa_op: true,
                sequential: "NUMA",
                mimd: true,
            },
            Variant::FixedThickness { width } => VariantProperties {
                name: self.name(),
                num_tcfs: "1".into(),
                num_threads: format!("fixed width = {width}"),
                regs_per_thread: format!("R = {r}"),
                fetches_per_tcf: "1".into(),
                task_switch: "O(Tp)",
                flow_branch: "n/a (no control parallelism)",
                pram_op: false,
                numa_op: false,
                sequential: "scalar unit",
                mimd: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper() {
        let si = Variant::SingleInstruction;
        assert!(si.supports_setthick() && si.supports_numa() && si.supports_split());
        assert!(!si.supports_spawn() && si.pram_lockstep() && si.mimd());

        let bal = Variant::Balanced { bound: 4 };
        assert!(bal.supports_setthick() && bal.supports_split());
        assert_eq!(bal.bound(), Some(4));

        let mi = Variant::MultiInstruction;
        assert!(mi.supports_spawn() && !mi.pram_lockstep());
        assert!(!mi.supports_setthick() && !mi.supports_numa() && !mi.supports_split());

        let so = Variant::SingleOperation;
        assert!(!so.supports_setthick() && !so.supports_numa() && !so.supports_split());
        assert!(so.pram_lockstep());

        let cso = Variant::ConfigurableSingleOperation;
        assert!(cso.supports_numa() && !cso.supports_setthick());

        let ft = Variant::FixedThickness { width: 16 };
        assert!(!ft.mimd() && !ft.supports_split() && !ft.supports_spawn());
    }

    #[test]
    fn properties_reflect_config() {
        let c = MachineConfig::small(); // P=4, Tp=16, R=32
        let p = Variant::SingleInstruction.properties(&c);
        assert!(p.num_tcfs.contains("64"));
        assert_eq!(p.fetches_per_tcf, "1");
        assert!(p.pram_op && p.numa_op && p.mimd);

        let p = Variant::SingleOperation.properties(&c);
        assert!(p.fetches_per_tcf.contains("16"));
        assert_eq!(p.task_switch, "O(Tp)");

        let p = Variant::FixedThickness { width: 16 }.properties(&c);
        assert!(!p.mimd);
        assert_eq!(p.num_tcfs, "1");
    }

    #[test]
    fn all_variants_enumerated() {
        let vs = Variant::all(8);
        let names: Vec<&str> = vs.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(names.contains(&"Single instruction"));
        assert!(names.contains(&"Fixed thickness"));
    }
}
