//! The synchronous step engine: Single instruction, Balanced,
//! Single-operation, Configurable single operation and Fixed thickness.
//!
//! All five lockstep variants share this engine; they differ only in the
//! per-step operation bound (`Balanced`), in their capability checks
//! (which instructions fault), and in how their initial flows were created
//! (see [`crate::machine`]). Instructions are classified *flow-wise* —
//! control flow, thickness control, and any data instruction whose
//! operands are uniform across the flow (executed once on common
//! operands) — or *thick* — one operation per implicit thread, executed
//! over the flow's fragments and bounded per step under Balanced.

use tcf_isa::instr::{MemSpace, Operand};
use tcf_isa::reg::{Reg, SpecialReg};
use tcf_isa::word::{to_addr, Word};
use tcf_machine::{IssueUnit, UnitSeq};
use tcf_mem::{BulkView, MemOp, MemRef, RefOrigin};
use tcf_obs::{FlowEvent, Mode};

use crate::decoded::{DecodedInst, DecodedProgram};
use crate::error::{TcfError, TcfFault};
use crate::flow::{ExecMode, Flow, FlowStatus, Fragment};
use crate::machine::{TcfMachine, MAX_THICKNESS};
use crate::variant::Variant;

/// Destination lanes of a pending register write-back.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WbTarget {
    /// Flow-wise load: the value becomes uniform.
    Uniform,
    /// One implicit thread's lane.
    Lane(usize),
    /// `count` consecutive lanes starting at `base`, served by a single
    /// strided bulk reference; replies arrive via
    /// [`tcf_mem::BulkReplies`] rather than the scalar reply vector.
    Lanes { base: usize, count: usize },
}

/// Pending register write-back from the shared-memory step.
pub(crate) struct Writeback {
    pub flow: u32,
    pub rd: Reg,
    pub target: WbTarget,
    pub ref_idx: usize,
}

/// Reusable buffers of the synchronous step — one bundle per machine, so
/// the steady-state loop performs no per-step allocation once every
/// buffer has grown to the workload's high-water mark. Taken out of the
/// machine (`std::mem::take`) for the duration of a step to keep the
/// borrow checker out of the phase structure, then put back.
#[derive(Default)]
pub(crate) struct StepBufs {
    pram_units: Vec<Vec<UnitSeq>>,
    numa_units: Vec<Vec<UnitSeq>>,
    refs: Vec<MemRef>,
    wbs: Vec<Writeback>,
    numa_flows: Vec<u32>,
    slots_used: Vec<usize>,
    /// Flow ids snapshotted at step start (status changes mid-step).
    ids: Vec<u32>,
}

impl TcfMachine {
    /// One synchronous step (phases 1–5 of the machine docs). The step
    /// buffers are taken out of the machine for the duration of the step
    /// (and put back even on a faulting step) so the phase structure can
    /// borrow them independently of `self`.
    pub(crate) fn step_sync(&mut self) -> Result<(), TcfError> {
        let mut bufs = std::mem::take(&mut self.step_bufs);
        let r = self.step_sync_inner(&mut bufs);
        self.step_bufs = bufs;
        r
    }

    fn step_sync_inner(&mut self, bufs: &mut StepBufs) -> Result<(), TcfError> {
        let ngroups = self.config.groups;
        bufs.pram_units.resize_with(ngroups, Vec::new);
        bufs.numa_units.resize_with(ngroups, Vec::new);
        for u in &mut bufs.pram_units {
            u.clear();
        }
        for u in &mut bufs.numa_units {
            u.clear();
        }
        bufs.refs.clear();
        bufs.wbs.clear();
        bufs.numa_flows.clear();
        let StepBufs {
            pram_units,
            numa_units,
            refs,
            wbs,
            numa_flows,
            slots_used,
            ids,
        } = bufs;

        // Fixed thread-slot accounting of the thread-based variants: an
        // interleaved ESM processor always rotates through its T_p slots,
        // so dead or absorbed slots burn issue cycles (the low-TLP
        // utilization problem of §1/§2.1). The TCF variants schedule
        // flows, not slots, and are exempt.
        let fixed_rotation = matches!(
            self.variant,
            Variant::SingleOperation | Variant::ConfigurableSingleOperation
        );
        slots_used.clear();
        slots_used.resize(ngroups, 0);

        ids.clear();
        ids.extend(self.flows.keys());
        for &id in ids.iter() {
            // Status can change mid-step (bunch absorption), so re-check.
            if !self.flows[&id].is_running() {
                continue;
            }
            match self.flows[&id].mode {
                ExecMode::Numa { slots } => {
                    if slots > 0 {
                        self.activate_in_buffers(id, numa_units);
                        slots_used[self.flows[&id].home_group()] += slots;
                        numa_flows.push(id);
                    }
                }
                ExecMode::Pram => {
                    if self.flows[&id].thickness == 0 {
                        continue; // dormant flow: executes nothing (§3.1)
                    }
                    self.activate_in_buffers(id, pram_units);
                    slots_used[self.flows[&id].home_group()] += 1;
                    self.exec_pram_instruction(id, pram_units, refs, wbs)?;
                }
            }
        }

        if fixed_rotation {
            let tp = self.config.threads_per_group;
            for g in 0..ngroups {
                for _ in slots_used[g]..tp {
                    pram_units[g].push(IssueUnit::idle().into());
                }
            }
        }

        // Phase 2: one PRAM memory step for all flows' references
        // (sharded per memory module under the parallel engine). Replies
        // land in the machine-owned `mem_replies` buffer.
        let mstats = self.memory_step(refs)?;
        self.mem_stats.absorb(&mstats);

        // Phase 3: write-backs. Bulk (strided-read) replies are taken
        // out of the machine for the loop so a borrowed reply view can
        // coexist with the `&mut` flow borrow.
        let bulk = std::mem::take(&mut self.mem_bulk);
        for wb in wbs.iter() {
            match wb.target {
                WbTarget::Uniform => {
                    if let Some(v) = self.mem_replies[wb.ref_idx] {
                        let flow = self.flows.get_mut(&wb.flow).expect("flow exists");
                        flow.regs.write_uniform(wb.rd, v);
                    }
                }
                WbTarget::Lane(e) => {
                    if let Some(v) = self.mem_replies[wb.ref_idx] {
                        let flow = self.flows.get_mut(&wb.flow).expect("flow exists");
                        let t = flow.thickness;
                        flow.regs.write(wb.rd, e, v, t);
                    }
                }
                WbTarget::Lanes { base, count } => {
                    if let Some(view) = bulk.get(wb.ref_idx) {
                        let flow = self.flows.get_mut(&wb.flow).expect("flow exists");
                        let t = flow.thickness;
                        match view {
                            BulkView::Affine {
                                base: vbase,
                                stride: vstride,
                            } => flow
                                .regs
                                .write_affine(wb.rd, base, count, vbase, vstride, t),
                            BulkView::Values(vals) => {
                                if flow.regs.write_lanes(wb.rd, base, vals, t) {
                                    self.thick_decay.mem_reply += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.mem_bulk = bulk;

        // Phase 4: NUMA slices.
        for &id in numa_flows.iter() {
            if self.flows[&id].is_running() {
                self.run_numa_slice(id, numa_units)?;
            }
        }

        // Phase 5: timing.
        self.apply_timing(pram_units, numa_units);
        Ok(())
    }

    fn operand_uniform(&self, flow: &Flow, o: Operand) -> bool {
        match o {
            Operand::Imm(_) => true,
            Operand::Reg(r) => flow.regs.value(r).is_uniform(),
        }
    }

    /// Whether `instr` needs one operation per implicit thread.
    fn is_thick(&self, flow: &Flow, instr: DecodedInst) -> bool {
        if flow.thickness <= 1 {
            // One implicit thread: flow-wise and thick coincide; treat as
            // flow-wise so unit flows cost one operation.
            return matches!(
                instr,
                DecodedInst::MultiOp { .. } | DecodedInst::MultiPrefix { .. }
            );
        }
        let u = |r: Reg| flow.regs.value(r).is_uniform();
        match instr {
            DecodedInst::Alu { ra, rb, .. } => !u(ra) || !self.operand_uniform(flow, rb),
            DecodedInst::Ldi { .. } => false,
            DecodedInst::Mfs { sr, .. } => matches!(sr, SpecialReg::Tid | SpecialReg::Gid),
            DecodedInst::Sel { cond, rt, rf, .. } => {
                !u(cond) || !u(rt) || !self.operand_uniform(flow, rf)
            }
            DecodedInst::Ld { base, .. } => !u(base),
            DecodedInst::St { rs, base, .. } => !u(rs) || !u(base),
            DecodedInst::StMasked { cond, rs, base, .. } => !u(cond) || !u(rs) || !u(base),
            // Every implicit thread contributes, whatever the operands.
            DecodedInst::MultiOp { .. } | DecodedInst::MultiPrefix { .. } => true,
            _ => false,
        }
    }

    fn uniform_value(&self, flow: &Flow, o: Operand, what: &'static str) -> Result<Word, TcfError> {
        match o {
            Operand::Imm(w) => Ok(w),
            Operand::Reg(r) => flow
                .regs
                .value(r)
                .uniform_over(flow.thickness.max(1))
                .ok_or_else(|| self.flow_err(flow.id, TcfFault::NonUniformOperand { what })),
        }
    }

    /// Executes (a slice of) one PRAM-mode instruction of flow `id`.
    fn exec_pram_instruction(
        &mut self,
        id: u32,
        units: &mut [Vec<UnitSeq>],
        refs: &mut Vec<MemRef>,
        wbs: &mut Vec<Writeback>,
    ) -> Result<(), TcfError> {
        let mut flow = self.flows.remove(&id).expect("flow exists");
        let result = self.exec_pram_inner(&mut flow, units, refs, wbs);
        self.flows.insert(id, flow);
        result
    }

    fn exec_pram_inner(
        &mut self,
        flow: &mut Flow,
        units: &mut [Vec<UnitSeq>],
        refs: &mut Vec<MemRef>,
        wbs: &mut Vec<Writeback>,
    ) -> Result<(), TcfError> {
        let pc = flow.pc;
        // The pre-decoded instruction is `Copy`: fetching it takes no
        // allocation and leaves the machine unborrowed.
        let instr = match self.decoded.fetch(pc) {
            Some(i) => i,
            None => return Err(self.flow_err(flow.id, TcfFault::PcOutOfRange { pc })),
        };
        self.stats.fetches += 1;
        self.obs
            .emit(self.steps, self.clock, FlowEvent::Fetch { flow: flow.id });

        if self.is_thick(flow, instr) {
            // Rank-contiguous slicing: the flow has ONE next-operation
            // pointer (§3.3's TCF-buffer resume pointer). Each fragment's
            // group contributes up to `bound` (Balanced) or its share
            // (Single instruction) of operations per step, taken in rank
            // order, which preserves multiprefix rank ordering across
            // sliced instructions.
            let bound = self.variant.bound().unwrap_or(usize::MAX);
            let mut cursor = flow.next_op;
            let mut slices = std::mem::take(&mut self.slice_buf);
            slices.clear();
            for fi in 0..flow.fragments.len() {
                if cursor >= flow.thickness {
                    break;
                }
                let frag = flow.fragments[fi];
                let n = bound.min(frag.len).min(flow.thickness - cursor);
                if n == 0 {
                    continue;
                }
                slices.push((frag, cursor..cursor + n));
                cursor += n;
            }
            // Lanes execute per slice (inline, or on the worker pool under
            // the parallel engine — the fragments' groups are distinct, so
            // the slices are independent) and merge in fragment order.
            let mut outs = std::mem::take(&mut self.frag_pool);
            self.exec_slices(flow, instr, &slices, &mut outs);
            let n = slices.len();
            let merged = self.merge_frag_outs(flow, &mut outs[..n], units, refs, wbs);
            self.slice_buf = slices;
            self.frag_pool = outs;
            merged?;
            flow.next_op = cursor;
            if flow.instruction_complete() {
                flow.pc = pc + 1;
                flow.reset_progress();
            }
            Ok(())
        } else {
            self.exec_flowwise(flow, instr, units, refs, wbs)
        }
    }

    /// Executes a flow-wise instruction: one operation on the home group's
    /// common operands.
    fn exec_flowwise(
        &mut self,
        flow: &mut Flow,
        instr: DecodedInst,
        units: &mut [Vec<UnitSeq>],
        refs: &mut Vec<MemRef>,
        wbs: &mut Vec<Writeback>,
    ) -> Result<(), TcfError> {
        let home = flow.home_group();
        let pc = flow.pc;
        let mut next_pc = pc + 1;
        let mut unit = IssueUnit::compute(flow.id, 0);
        // Flow-wise origin: rank of implicit thread 0.
        let origin = RefOrigin::new(home, flow.rank_base);

        let fid = flow.id;
        // Cold fault path: render the *source* instruction at `pc` (the
        // decoded form has no display).
        let unsupported = move |m: &TcfMachine| {
            m.flow_err(
                fid,
                TcfFault::UnsupportedByVariant {
                    instr: m
                        .program
                        .fetch(pc)
                        .map(|i| i.to_string())
                        .unwrap_or_default(),
                    variant: m.variant.name(),
                },
            )
        };

        match instr {
            DecodedInst::Alu { op, rd, ra, rb } => {
                let a = flow.regs.read(ra, 0);
                let b = match rb {
                    Operand::Reg(r) => flow.regs.read(r, 0),
                    Operand::Imm(w) => w,
                };
                flow.regs.write_uniform(rd, op.eval(a, b));
            }
            DecodedInst::Ldi { rd, imm } => flow.regs.write_uniform(rd, imm),
            DecodedInst::Mfs { rd, sr } => {
                let v = self.special(flow, 0, sr);
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Sel { rd, cond, rt, rf } => {
                let v = if flow.regs.read(cond, 0) != 0 {
                    flow.regs.read(rt, 0)
                } else {
                    match rf {
                        Operand::Reg(r) => flow.regs.read(r, 0),
                        Operand::Imm(w) => w,
                    }
                };
                flow.regs.write_uniform(rd, v);
            }
            DecodedInst::Ld {
                rd,
                base,
                off,
                space,
            } => {
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                match space {
                    MemSpace::Shared => {
                        unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                        wbs.push(Writeback {
                            flow: flow.id,
                            rd,
                            target: WbTarget::Uniform,
                            ref_idx: refs.len(),
                        });
                        refs.push(MemRef::new(origin, MemOp::Read(addr)));
                    }
                    MemSpace::Local => {
                        unit = IssueUnit::local_mem(flow.id, 0);
                        let v = self.locals[home]
                            .read(addr)
                            .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        flow.regs.write_uniform(rd, v);
                    }
                }
            }
            DecodedInst::St {
                rs,
                base,
                off,
                space,
            }
            | DecodedInst::StMasked {
                rs,
                base,
                off,
                space,
                ..
            } => {
                let masked_out = matches!(instr, DecodedInst::StMasked { cond, .. }
                    if flow.regs.read(cond, 0) == 0);
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                if !masked_out {
                    match space {
                        MemSpace::Shared => {
                            unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                            refs.push(MemRef::new(origin, MemOp::Write(addr, v)));
                        }
                        MemSpace::Local => {
                            unit = IssueUnit::local_mem(flow.id, 0);
                            self.locals[home]
                                .write(addr, v)
                                .map_err(|e| self.flow_err(flow.id, e.into()))?;
                        }
                    }
                }
            }
            DecodedInst::MultiOp {
                kind,
                base,
                off,
                rs,
            } => {
                // Thickness 1 (classification guarantees it): one
                // contribution.
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                refs.push(MemRef::new(origin, MemOp::Multi(kind, addr, v)));
            }
            DecodedInst::MultiPrefix {
                kind,
                rd,
                base,
                off,
                rs,
            } => {
                let addr = to_addr(flow.regs.read(base, 0).wrapping_add(off));
                let v = flow.regs.read(rs, 0);
                unit = IssueUnit::shared_mem(flow.id, 0, self.shared.module_of(addr));
                wbs.push(Writeback {
                    flow: flow.id,
                    rd,
                    target: WbTarget::Uniform,
                    ref_idx: refs.len(),
                });
                refs.push(MemRef::new(origin, MemOp::Prefix(kind, addr, v)));
            }
            DecodedInst::Jmp { target } => next_pc = self.abs(flow.id, target)?,
            DecodedInst::Br { cond, rs, target } => {
                // Borrow-based operand select: test uniformity in place —
                // no clone of the per-thread vector, no representation
                // write-back (the old clone never wrote back either).
                let v = match flow.regs.value(rs).uniform_over(flow.thickness.max(1)) {
                    Some(v) => v,
                    None => return Err(self.flow_err(flow.id, TcfFault::DivergentBranch { pc })),
                };
                if cond.holds(v) {
                    next_pc = self.abs(flow.id, target)?;
                }
            }
            DecodedInst::Call { target } => {
                let dst = self.abs(flow.id, target)?;
                flow.call_stack.push(pc + 1);
                next_pc = dst;
            }
            DecodedInst::Ret => match flow.call_stack.pop() {
                Some(ra) => next_pc = ra,
                None => return Err(self.flow_err(flow.id, TcfFault::EmptyCallStack)),
            },
            DecodedInst::SetThick { src } => {
                if !self.variant.supports_setthick() {
                    return Err(unsupported(self));
                }
                let v = self.uniform_value(flow, src, "setthick")?;
                if v < 0 || v as usize > MAX_THICKNESS {
                    return Err(self.flow_err(flow.id, TcfFault::BadThickness { requested: v }));
                }
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::ThicknessChange {
                        flow: flow.id,
                        from: flow.thickness,
                        to: v as usize,
                    },
                );
                // Compressed (affine/segment) registers describe an
                // unbounded progression; pin their observable lanes at
                // the OLD thickness before it changes, so lanes exposed
                // by a later grow read 0 exactly as per-thread storage
                // would.
                self.thick_decay.setthick += flow.regs.decay_compressed(flow.thickness);
                flow.thickness = v as usize;
                flow.fragments =
                    self.allocation
                        .fragments(flow.id, flow.thickness, self.config.groups);
                flow.reset_progress();
                unit = IssueUnit::overhead(flow.id);
            }
            DecodedInst::Numa { slots } => {
                if !self.variant.supports_numa() {
                    return Err(unsupported(self));
                }
                let v = self.uniform_value(flow, slots, "numa bunch length")?;
                if v < 1 || v as usize > MAX_THICKNESS {
                    return Err(self.flow_err(flow.id, TcfFault::BadThickness { requested: v }));
                }
                let slots = v as usize;
                if matches!(self.variant, Variant::ConfigurableSingleOperation) {
                    self.absorb_bunch(flow, slots, pc)?;
                }
                flow.mode = ExecMode::Numa { slots };
                flow.regs.collapse_to_flowwise();
                flow.fragments = vec![Fragment::new(home, 0, 1)];
                unit = IssueUnit::overhead(flow.id);
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::ModeSwitch {
                        flow: flow.id,
                        mode: Mode::Numa,
                    },
                );
            }
            DecodedInst::EndNuma => return Err(self.flow_err(flow.id, TcfFault::NotInNuma)),
            DecodedInst::Split { arms } => {
                if !self.variant.supports_split() {
                    return Err(unsupported(self));
                }
                let mut pending = 0;
                for ai in arms.indices() {
                    // Arms are `Copy` entries of the decoded side table;
                    // fetching one by index keeps `self` unborrowed.
                    let arm = self.decoded.arm(ai);
                    let t = self.uniform_value(flow, arm.thickness, "split arm thickness")?;
                    if t < 1 || t as usize > MAX_THICKNESS {
                        return Err(self.flow_err(flow.id, TcfFault::BadThickness { requested: t }));
                    }
                    let target = self.abs(flow.id, arm.target)?;
                    let child_id = self.alloc_id();
                    let mut child = Flow::new(child_id, t as usize, target, flow.regs.len());
                    child.regs = flow.regs.clone();
                    child.regs.collapse_to_flowwise();
                    child.parent = Some(flow.id);
                    child.fragments =
                        self.allocation
                            .fragments(child_id, t as usize, self.config.groups);
                    self.flows.insert(child_id, child);
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::FlowSpawned {
                            flow: child_id,
                            parent: Some(flow.id),
                            thickness: t as usize,
                        },
                    );
                    pending += 1;
                    // Flow creation copies the R common registers: the
                    // O(R) flow-branch cost of Table 1.
                    for _ in 0..self.config.regs_per_thread {
                        units[home].push(IssueUnit::overhead(flow.id).into());
                    }
                }
                if pending > 0 {
                    flow.status = FlowStatus::WaitingJoin { pending };
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::Split {
                            flow: flow.id,
                            arms: pending,
                        },
                    );
                    self.obs.emit(
                        self.steps,
                        self.clock,
                        FlowEvent::WaitBegin {
                            flow: flow.id,
                            pending,
                        },
                    );
                }
            }
            DecodedInst::Join => {
                let parent = flow
                    .parent
                    .ok_or_else(|| self.flow_err(flow.id, TcfFault::StrayJoin))?;
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::Join {
                        flow: flow.id,
                        parent: Some(parent),
                    },
                );
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
                self.notify_join(parent)?;
            }
            DecodedInst::Spawn { .. } | DecodedInst::SJoin => return Err(unsupported(self)),
            DecodedInst::Sync | DecodedInst::Nop => {}
            DecodedInst::Halt => {
                flow.status = FlowStatus::Halted;
                self.obs.emit(
                    self.steps,
                    self.clock,
                    FlowEvent::FlowHalted { flow: flow.id },
                );
            }
        }

        flow.pc = next_pc;
        units[home].push(unit.into());
        Ok(())
    }

    /// Checks a decoded control-transfer target for the unresolved-label
    /// sentinel (see [`DecodedProgram::UNRESOLVED`]).
    pub(crate) fn abs(&self, flow: u32, t: usize) -> Result<usize, TcfError> {
        if t == DecodedProgram::UNRESOLVED {
            Err(self.flow_err(
                flow,
                TcfFault::Internal {
                    what: "unresolved target".into(),
                },
            ))
        } else {
            Ok(t)
        }
    }

    /// Decrements a parent's pending-join count, waking it at zero.
    pub(crate) fn notify_join(&mut self, parent: u32) -> Result<(), TcfError> {
        self.notify_join_many(parent, 1)
    }

    /// Decrements a parent's pending-join count by `count` arrivals at
    /// once — how an async spawn *block* of `count` threads reports its
    /// collective `sjoin` in O(1) — waking the parent at zero.
    pub(crate) fn notify_join_many(&mut self, parent: u32, count: usize) -> Result<(), TcfError> {
        let step = self.steps;
        let missing = move |what: String| TcfError {
            fault: TcfFault::Internal { what },
            step,
            flow: None,
        };
        let p = self
            .flows
            .get_mut(&parent)
            .ok_or_else(|| missing(format!("join to missing parent {parent}")))?;
        let mut woke = false;
        match p.status {
            FlowStatus::WaitingJoin { pending } if pending > count => {
                p.status = FlowStatus::WaitingJoin {
                    pending: pending - count,
                };
            }
            FlowStatus::WaitingJoin { .. } => {
                p.status = FlowStatus::Running;
                woke = true;
            }
            FlowStatus::WaitingSpawn { pending } if pending > count => {
                p.status = FlowStatus::WaitingSpawn {
                    pending: pending - count,
                };
            }
            FlowStatus::WaitingSpawn { .. } => {
                p.status = FlowStatus::Running;
                woke = true;
            }
            _ => {
                return Err(self.host_err(TcfFault::Internal {
                    what: format!("join to non-waiting parent {parent}"),
                }))
            }
        }
        if woke {
            self.obs
                .emit(self.steps, self.clock, FlowEvent::WaitEnd { flow: parent });
        }
        Ok(())
    }

    /// Configurable single operation: `numa T` executed by a unit flow
    /// absorbs its `T - 1` same-group sibling flows (which must be at the
    /// same `numa` instruction) into a bunch.
    fn absorb_bunch(&mut self, leader: &mut Flow, slots: usize, pc: usize) -> Result<(), TcfError> {
        let group = leader.home_group();
        let leader_id = leader.id;
        let step = self.steps;
        let fail = move |why: &str| TcfError {
            fault: TcfFault::BunchFormation {
                why: why.to_string(),
            },
            step,
            flow: Some(leader_id),
        };
        for k in 1..slots as u32 {
            let sid = leader_id + k;
            let sibling = self
                .flows
                .get_mut(&sid)
                .ok_or_else(|| fail("sibling flow missing"))?;
            if sibling.home_group() != group {
                return Err(fail("sibling in another group"));
            }
            if !sibling.is_running() {
                return Err(fail("sibling not running"));
            }
            if sibling.pc != pc {
                return Err(fail("siblings not at a common pc"));
            }
            sibling.status = FlowStatus::Absorbed { leader: leader_id };
        }
        Ok(())
    }
}
