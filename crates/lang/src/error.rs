//! Compilation errors with source positions.

use core::fmt;

/// An error raised while compiling tce source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error.
    Lex {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Semantic error (unknown names, duplicate definitions, misuse).
    Sema {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// Resource exhaustion in the compiler (too many locals or too deep
    /// an expression for the register file).
    TooComplex {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
}

impl LangError {
    /// The 1-based source line of the error.
    pub fn line(&self) -> usize {
        match self {
            LangError::Lex { line, .. }
            | LangError::Parse { line, .. }
            | LangError::Sema { line, .. }
            | LangError::TooComplex { line, .. } => *line,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            LangError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LangError::Sema { line, msg } => write!(f, "semantic error at line {line}: {msg}"),
            LangError::TooComplex { line, msg } => {
                write!(f, "program too complex at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_display() {
        let e = LangError::Parse {
            line: 3,
            msg: "expected `;`".into(),
        };
        assert_eq!(e.line(), 3);
        assert!(e.to_string().contains("line 3"));
    }
}
