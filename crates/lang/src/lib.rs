#![warn(missing_docs)]
//! # tcf-lang — the *tce* language for Thick Control Flow programming
//!
//! A small c-like language realizing the programming style of the paper's
//! §4, compiled to the `tcf-isa` instruction set and executed on any
//! `tcf-core` variant (or the `tcf-pram` baseline, for thread-model
//! programs):
//!
//! ```text
//! shared int a[256] @ 1000;
//! shared int b[256] @ 2000;
//! shared int c[256] @ 3000;
//!
//! void main() {
//!     #256;                    // thickness statement: set thickness
//!     c[.] = a[.] + b[.];      // thick expression, `.` is the tid
//! }
//! ```
//!
//! Supported constructs (each mapping to a §4 example):
//!
//! * `#e;` — set the flow's thickness (`setthick`),
//! * `#1/e;` — enter NUMA mode with bunch length `e`,
//! * `#e: stmt;` — thickness-scoped statement (save, set, restore),
//! * `numa (e) stmt` — NUMA-scoped statement (`numa` … `endnuma`),
//! * `parallel { #e1: s1; #e2: s2; … }` — the parallel statement: one
//!   child flow per arm (`split`/`join`),
//! * `fork (i = e0; i < e1) stmt` — the Multi-instruction variant's
//!   asynchronous spawn construct,
//! * `prefix(target, MPADD, e)` — multiprefix expression returning each
//!   thread's prefix; `multi(target, MPADD, e);` — combining-only form,
//! * flow-wise `if`/`while`/`for`, `void` functions with flow-wise call
//!   semantics, `shared` scalars/arrays (optionally placed with `@`),
//!   register-allocated `int` locals that are transparently thick,
//! * builtins `tid` (also spelled `.`), `thickness`, `fid`, `pid`,
//!   `nprocs`, `nthreads`, `gid`.
//!
//! Entry points: [`compile`] (source → [`tcf_isa::Program`]) and the
//! [`CompileOptions`] knob for masked conditionals (Fixed-thickness
//! variant codegen).

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;

pub use codegen::{compile, compile_with, CompileOptions};
pub use error::LangError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let p = compile(
            "shared int x;
             void main() { x = 1 + 2 * 3; }",
        )
        .unwrap();
        assert!(p.len() > 2);
    }
}
