//! Recursive-descent parser for tce.

use tcf_isa::instr::MultiKind;

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses tce source into an AST.
pub fn parse(src: &str) -> Result<ProgramAst, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, LangError> {
        match self.bump() {
            Tok::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<ProgramAst, LangError> {
        let mut globals = Vec::new();
        let mut funcs = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.eat_kw("shared") {
                globals.push(self.global_decl()?);
            } else if self.eat_kw("void") {
                funcs.push(self.func_decl()?);
            } else {
                return Err(self.err(format!(
                    "expected `shared` or `void` at top level, found {:?}",
                    self.peek()
                )));
            }
        }
        Ok(ProgramAst { globals, funcs })
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, LangError> {
        let line = self.line();
        if !self.eat_kw("int") {
            return Err(self.err("expected `int` after `shared`"));
        }
        let name = self.expect_ident()?;
        let mut len = 1;
        if self.eat_punct("[") {
            let v = self.expect_int()?;
            if v < 1 {
                return Err(self.err("array length must be positive"));
            }
            len = v as usize;
            self.expect_punct("]")?;
        }
        let mut addr = None;
        if *self.peek() == Tok::At {
            self.bump();
            let v = self.expect_int()?;
            if v < 0 {
                return Err(self.err("placement address must be non-negative"));
            }
            addr = Some(v as usize);
        }
        self.expect_punct(";")?;
        Ok(GlobalDecl {
            name,
            len,
            addr,
            line,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let line = self.line();
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated function body"));
            }
            body.push(self.stmt()?);
        }
        Ok(FuncDecl { name, body, line })
    }

    fn block(&mut self) -> Result<Stmt, LangError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block"));
            }
            body.push(self.stmt()?);
        }
        Ok(Stmt::Block(body))
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Punct("{") => self.block(),
            Tok::Punct(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Hash => {
                self.bump();
                // `#1/e` = NUMA; otherwise thickness.
                if *self.peek() == Tok::Int(1) && self.toks[self.pos + 1].tok == Tok::Punct("/") {
                    self.bump();
                    self.bump();
                    let slots = self.expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::SetNuma { slots, line });
                }
                let value = self.expr()?;
                if self.eat_punct(":") {
                    let body = Box::new(self.stmt()?);
                    Ok(Stmt::ScopedThickness { value, body, line })
                } else {
                    self.expect_punct(";")?;
                    Ok(Stmt::SetThickness { value, line })
                }
            }
            Tok::Ident(kw) => match kw.as_str() {
                "int" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    let init = if self.eat_punct("=") {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect_punct(";")?;
                    Ok(Stmt::Local { name, init, line })
                }
                "if" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let then_s = Box::new(self.stmt()?);
                    let else_s = if self.eat_kw("else") {
                        Some(Box::new(self.stmt()?))
                    } else {
                        None
                    };
                    Ok(Stmt::If {
                        cond,
                        then_s,
                        else_s,
                        line,
                    })
                }
                "while" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let cond = self.expr()?;
                    self.expect_punct(")")?;
                    let body = Box::new(self.stmt()?);
                    Ok(Stmt::While { cond, body, line })
                }
                "for" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let init = if *self.peek() == Tok::Punct(";") {
                        self.bump();
                        None
                    } else {
                        Some(Box::new(self.simple_stmt()?))
                    };
                    let cond = if *self.peek() == Tok::Punct(";") {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_punct(";")?;
                    let step = if *self.peek() == Tok::Punct(")") {
                        None
                    } else {
                        Some(Box::new(self.simple_stmt_no_semi()?))
                    };
                    self.expect_punct(")")?;
                    let body = Box::new(self.stmt()?);
                    Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                        line,
                    })
                }
                "fork" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let var = self.expect_ident()?;
                    self.expect_punct("=")?;
                    let start = self.expr()?;
                    self.expect_punct(";")?;
                    let v2 = self.expect_ident()?;
                    if v2 != var {
                        return Err(self.err("fork bound must test the loop variable"));
                    }
                    self.expect_punct("<")?;
                    let bound = self.expr()?;
                    self.expect_punct(")")?;
                    let body = Box::new(self.stmt()?);
                    Ok(Stmt::Fork {
                        var,
                        start,
                        bound,
                        body,
                        line,
                    })
                }
                "numa" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let slots = self.expr()?;
                    self.expect_punct(")")?;
                    let body = Box::new(self.stmt()?);
                    Ok(Stmt::NumaBlock { slots, body, line })
                }
                "parallel" => {
                    self.bump();
                    self.expect_punct("{")?;
                    let mut arms = Vec::new();
                    while !self.eat_punct("}") {
                        let aline = self.line();
                        if *self.peek() != Tok::Hash {
                            return Err(self.err("parallel arms must start with `#thickness:`"));
                        }
                        self.bump();
                        let thickness = self.expr()?;
                        self.expect_punct(":")?;
                        let body = self.stmt()?;
                        arms.push(ParallelArm {
                            thickness,
                            body,
                            line: aline,
                        });
                    }
                    Ok(Stmt::Parallel { arms, line })
                }
                "multi" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let name = self.expect_ident()?;
                    let index = if self.eat_punct("[") {
                        let e = self.expr()?;
                        self.expect_punct("]")?;
                        Some(e)
                    } else {
                        None
                    };
                    self.expect_punct(",")?;
                    let kind = self.multikind()?;
                    self.expect_punct(",")?;
                    let value = self.expr()?;
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Multi {
                        name,
                        index,
                        kind,
                        value,
                        line,
                    })
                }
                "sync" => {
                    self.bump();
                    self.expect_punct(";")?;
                    Ok(Stmt::Sync { line })
                }
                "return" => {
                    self.bump();
                    self.expect_punct(";")?;
                    Ok(Stmt::Return { line })
                }
                _ => {
                    let s = self.simple_stmt()?;
                    Ok(s)
                }
            },
            other => Err(self.err(format!("unexpected token {other:?} starting statement"))),
        }
    }

    /// Assignment / store / call, terminated by `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, LangError> {
        let s = self.simple_stmt_no_semi()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            self.expect_punct(")")?;
            return Ok(Stmt::Call { name, line });
        }
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            let op = self.assign_op()?;
            let rhs = self.expr()?;
            let value = match op {
                None => rhs,
                Some(binop) => {
                    // Desugar `a[i] op= e` into `a[i] = a[i] op e`. The
                    // index is evaluated twice, so side-effecting indices
                    // (containing prefix()) are rejected.
                    if expr_has_prefix(&index) {
                        return Err(LangError::Parse {
                            line,
                            msg: "compound assignment index may not contain prefix()".into(),
                        });
                    }
                    Expr::Bin {
                        op: binop,
                        lhs: Box::new(Expr::Load {
                            name: name.clone(),
                            index: Some(Box::new(index.clone())),
                        }),
                        rhs: Box::new(rhs),
                    }
                }
            };
            return Ok(Stmt::Store {
                name,
                index: Some(index),
                value,
                line,
            });
        }
        let op = self.assign_op()?;
        let rhs = self.expr()?;
        // Whether `name` is a local or a shared scalar is resolved by the
        // code generator (`Assign` covers both; `Var` likewise).
        let value = match op {
            None => rhs,
            Some(binop) => Expr::Bin {
                op: binop,
                lhs: Box::new(Expr::Var(name.clone())),
                rhs: Box::new(rhs),
            },
        };
        Ok(Stmt::Assign { name, value, line })
    }

    /// Consumes `=` (returning `None`) or a compound-assignment operator
    /// (returning the underlying binary operator).
    fn assign_op(&mut self) -> Result<Option<BinOp>, LangError> {
        for (spelling, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Mod),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
        ] {
            if self.eat_punct(spelling) {
                return Ok(Some(op));
            }
        }
        self.expect_punct("=")?;
        Ok(None)
    }

    fn multikind(&mut self) -> Result<MultiKind, LangError> {
        let id = self.expect_ident()?;
        let kind = match id.as_str() {
            "MPADD" => MultiKind::Add,
            "MPAND" => MultiKind::And,
            "MPOR" => MultiKind::Or,
            "MPXOR" => MultiKind::Xor,
            "MPMAX" => MultiKind::Max,
            "MPMIN" => MultiKind::Min,
            other => {
                return Err(self.err(format!(
                    "unknown combining operator `{other}` (expected MPADD/MPAND/MPOR/MPXOR/MPMAX/MPMIN)"
                )))
            }
        };
        Ok(kind)
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary(0)
    }

    fn binary(&mut self, min_lvl: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, lvl) = match self.peek() {
                Tok::Punct("||") => (BinOp::LOr, 1),
                Tok::Punct("&&") => (BinOp::LAnd, 2),
                Tok::Punct("|") => (BinOp::Or, 3),
                Tok::Punct("^") => (BinOp::Xor, 4),
                Tok::Punct("&") => (BinOp::And, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Mod, 10),
                _ => break,
            };
            if lvl < min_lvl {
                break;
            }
            self.bump();
            let rhs = self.binary(lvl + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Dot => Ok(Expr::Builtin(Builtin::Tid)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "tid" => Ok(Expr::Builtin(Builtin::Tid)),
                "thickness" => Ok(Expr::Builtin(Builtin::Thickness)),
                "fid" => Ok(Expr::Builtin(Builtin::Fid)),
                "pid" => Ok(Expr::Builtin(Builtin::Pid)),
                "nprocs" => Ok(Expr::Builtin(Builtin::NProcs)),
                "nthreads" => Ok(Expr::Builtin(Builtin::NThreads)),
                "gid" => Ok(Expr::Builtin(Builtin::Gid)),
                "prefix" => {
                    self.expect_punct("(")?;
                    let gname = self.expect_ident()?;
                    let index = if self.eat_punct("[") {
                        let e = self.expr()?;
                        self.expect_punct("]")?;
                        Some(Box::new(e))
                    } else {
                        None
                    };
                    self.expect_punct(",")?;
                    let kind = self.multikind()?;
                    self.expect_punct(",")?;
                    let value = Box::new(self.expr()?);
                    self.expect_punct(")")?;
                    Ok(Expr::Prefix {
                        name: gname,
                        index,
                        kind,
                        value,
                    })
                }
                _ => {
                    if self.eat_punct("[") {
                        let index = self.expr()?;
                        self.expect_punct("]")?;
                        Ok(Expr::Load {
                            name,
                            index: Some(Box::new(index)),
                        })
                    } else {
                        // Local variable or shared scalar: resolved by the
                        // code generator.
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(LangError::Parse {
                line,
                msg: format!("unexpected token {other:?} in expression"),
            }),
        }
    }
}

/// Whether an expression contains a `prefix()` call (side-effecting).
fn expr_has_prefix(e: &Expr) -> bool {
    match e {
        Expr::Prefix { .. } => true,
        Expr::Bin { lhs, rhs, .. } => expr_has_prefix(lhs) || expr_has_prefix(rhs),
        Expr::Neg(inner) | Expr::Not(inner) => expr_has_prefix(inner),
        Expr::Load { index, .. } => index.as_deref().map(expr_has_prefix).unwrap_or(false),
        Expr::Int(_) | Expr::Var(_) | Expr::Builtin(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_main() {
        let p = parse(
            "shared int a[4] @ 100;
             shared int s;
             void main() { s = a[1] + 2; }",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].len, 4);
        assert_eq!(p.globals[0].addr, Some(100));
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_thickness_forms() {
        let p = parse(
            "void main() {
                #256;
                #1/4;
                #128: x = 1;
                int x;
             }",
        )
        .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(body[0], Stmt::SetThickness { .. }));
        assert!(matches!(body[1], Stmt::SetNuma { .. }));
        assert!(matches!(body[2], Stmt::ScopedThickness { .. }));
    }

    #[test]
    fn parses_parallel() {
        let p = parse(
            "void main() {
                parallel {
                    #4: x = 1;
                    #8: { y = 2; }
                }
                int x; int y;
             }",
        )
        .unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Parallel { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected parallel, got {other:?}"),
        }
    }

    #[test]
    fn parses_fork_and_prefix() {
        let p = parse(
            "shared int sum;
             void main() {
                fork (i = 0; i < 16) {
                    int v = prefix(sum, MPADD, i);
                }
             }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[0], Stmt::Fork { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse("void main() { int x = 1 + 2 * 3 < 10 && 4; }").unwrap();
        // (((1 + (2*3)) < 10) && 4)
        match &p.funcs[0].body[0] {
            Stmt::Local {
                init: Some(Expr::Bin {
                    op: BinOp::LAnd, ..
                }),
                ..
            } => {}
            other => panic!("precedence wrong: {other:?}"),
        }
    }

    #[test]
    fn dot_is_tid() {
        let p = parse("shared int c[4]; void main() { c[.] = . + 1; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Store {
                index: Some(Expr::Builtin(Builtin::Tid)),
                ..
            } => {}
            other => panic!("expected store with tid index: {other:?}"),
        }
    }

    #[test]
    fn errors_report_line() {
        let e = parse("void main() {\n x = ;\n}").unwrap_err();
        assert_eq!(e.line(), 2);
    }
}
