//! Abstract syntax of tce.

use tcf_isa::instr::MultiKind;

/// A whole program: global declarations plus functions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramAst {
    /// `shared` scalars and arrays.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions (`main` required).
    pub funcs: Vec<FuncDecl>,
}

/// A `shared int name[len]? (@ addr)?;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Element count (1 for scalars).
    pub len: usize,
    /// Explicit placement, if any.
    pub addr: Option<usize>,
    /// Source line.
    pub line: usize,
}

/// A `void name() { ... }` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&&` (eager, boolean-normalized)
    LAnd,
    /// `||` (eager, boolean-normalized)
    LOr,
}

/// Built-in flow/thread identity values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// Implicit thread index within the flow (`tid` or `.`).
    Tid,
    /// Current thickness.
    Thickness,
    /// Flow id.
    Fid,
    /// Home processor group.
    Pid,
    /// Number of groups.
    NProcs,
    /// Thread slots per group.
    NThreads,
    /// Global thread rank.
    Gid,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Local variable read.
    Var(String),
    /// Built-in read.
    Builtin(Builtin),
    /// Shared scalar read / array element read.
    Load {
        /// Global name.
        name: String,
        /// Element index (`None` for scalars).
        index: Option<Box<Expr>>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not (`!e`): 1 when `e == 0`.
    Not(Box<Expr>),
    /// `prefix(global[, index], OP, contribution)` — multiprefix returning
    /// this thread's prefix.
    Prefix {
        /// Target global.
        name: String,
        /// Element index (`None` for scalars).
        index: Option<Box<Expr>>,
        /// Combining operator.
        kind: MultiKind,
        /// Contribution.
        value: Box<Expr>,
    },
}

/// One arm of a `parallel` statement: `#thickness: stmt`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelArm {
    /// Child-flow thickness.
    pub thickness: Expr,
    /// Arm body.
    pub body: Stmt,
    /// Source line.
    pub line: usize,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int name (= init)?;` — register-allocated local.
    Local {
        /// Name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `name = e;`
    Assign {
        /// Local name.
        name: String,
        /// Value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `g = e;` or `g[i] = e;` — shared store.
    Store {
        /// Global name.
        name: String,
        /// Element index (`None` for scalars).
        index: Option<Expr>,
        /// Value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `#e;` — set thickness.
    SetThickness {
        /// New thickness.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `#1/e;` — enter NUMA mode.
    SetNuma {
        /// Bunch length.
        slots: Expr,
        /// Source line.
        line: usize,
    },
    /// `#e: stmt` — thickness-scoped statement (save/set/restore).
    ScopedThickness {
        /// Scoped thickness.
        value: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `numa (e) stmt` — NUMA-scoped statement.
    NumaBlock {
        /// Bunch length.
        slots: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `parallel { arms }` — split/join.
    Parallel {
        /// The arms.
        arms: Vec<ParallelArm>,
        /// Source line.
        line: usize,
    },
    /// `fork (i = e0; i < e1) stmt` — asynchronous spawn.
    Fork {
        /// Loop variable bound to the spawned thread index.
        var: String,
        /// Start index.
        start: Expr,
        /// End bound (exclusive).
        bound: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `if (e) s (else s)?` — flow-wise (condition must be uniform).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Else branch.
        else_s: Option<Box<Stmt>>,
        /// Source line.
        line: usize,
    },
    /// `while (e) s`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `for (init; cond; step) s`
    For {
        /// Initializer.
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Box<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `multi(global[, index], OP, e);` — combining-only multioperation.
    Multi {
        /// Target global.
        name: String,
        /// Element index.
        index: Option<Expr>,
        /// Combining operator.
        kind: MultiKind,
        /// Contribution.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `f();` — flow-wise call.
    Call {
        /// Callee.
        name: String,
        /// Source line.
        line: usize,
    },
    /// `sync;`
    Sync {
        /// Source line.
        line: usize,
    },
    /// `return;`
    Return {
        /// Source line.
        line: usize,
    },
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

impl Stmt {
    /// Source line of the statement (blocks/empties report 0).
    pub fn line(&self) -> usize {
        match self {
            Stmt::Local { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::Store { line, .. }
            | Stmt::SetThickness { line, .. }
            | Stmt::SetNuma { line, .. }
            | Stmt::ScopedThickness { line, .. }
            | Stmt::NumaBlock { line, .. }
            | Stmt::Parallel { line, .. }
            | Stmt::Fork { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Multi { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::Sync { line }
            | Stmt::Return { line } => *line,
            Stmt::Block(_) | Stmt::Empty => 0,
        }
    }
}
