//! Code generation: tce AST → `tcf-isa` programs.
//!
//! Locals live in registers `r1` upward; expression temporaries are drawn
//! from `r31` downward, so deeply nested expressions and many locals can
//! collide — reported as [`LangError::TooComplex`] rather than silently
//! spilling (the experiments never get close). Shared globals are placed
//! at explicit `@` addresses or allocated sequentially from
//! [`CompileOptions::globals_base`].

use std::collections::BTreeMap;

use tcf_isa::instr::Operand;
use tcf_isa::op::AluOp;
use tcf_isa::program::Program;
use tcf_isa::reg::{r, Reg, SpecialReg, NUM_REGS};
use tcf_isa::word::Word;
use tcf_isa::ProgramBuilder;

use crate::ast::*;
use crate::error::LangError;
use crate::parser::parse;

/// Compiler knobs.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// First address used for auto-placed globals.
    pub globals_base: usize,
    /// Compile `if` statements whose branches contain only shared stores
    /// into masked stores (`stm`) instead of branches — the Fixed
    /// thickness (SIMD) variant's conditional execution (paper §4).
    pub masked_conditionals: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            globals_base: 4096,
            masked_conditionals: false,
        }
    }
}

/// Compiles tce source with default options.
pub fn compile(src: &str) -> Result<Program, LangError> {
    compile_with(src, CompileOptions::default())
}

/// Compiles tce source.
pub fn compile_with(src: &str, opts: CompileOptions) -> Result<Program, LangError> {
    let ast = parse(src)?;
    Codegen::new(opts).generate(&ast)
}

struct GlobalInfo {
    addr: usize,
    len: usize,
}

struct Codegen {
    opts: CompileOptions,
    globals: BTreeMap<String, GlobalInfo>,
    funcs: Vec<String>,
    /// Current function's locals.
    locals: BTreeMap<String, Reg>,
    next_local: u8,
    /// Temp stack pointer (grows downward from NUM_REGS - 1).
    next_temp: u8,
    /// Static approximation of NUMA mode for `#e;`-after-`#1/T;`.
    in_numa: bool,
    label_seq: usize,
    in_main: bool,
}

impl Codegen {
    fn new(opts: CompileOptions) -> Codegen {
        Codegen {
            opts,
            globals: BTreeMap::new(),
            funcs: Vec::new(),
            locals: BTreeMap::new(),
            next_local: 1,
            next_temp: (NUM_REGS - 1) as u8,
            in_numa: false,
            label_seq: 0,
            in_main: false,
        }
    }

    fn sema(&self, line: usize, msg: impl Into<String>) -> LangError {
        LangError::Sema {
            line,
            msg: msg.into(),
        }
    }

    fn fresh(&mut self, hint: &str) -> String {
        self.label_seq += 1;
        format!("@{hint}_{}", self.label_seq)
    }

    fn generate(&mut self, ast: &ProgramAst) -> Result<Program, LangError> {
        // Place globals.
        let mut cursor = self.opts.globals_base;
        for g in &ast.globals {
            if self.globals.contains_key(&g.name) {
                return Err(self.sema(g.line, format!("duplicate global `{}`", g.name)));
            }
            let addr = match g.addr {
                Some(a) => a,
                None => {
                    let a = cursor;
                    cursor += g.len;
                    a
                }
            };
            self.globals
                .insert(g.name.clone(), GlobalInfo { addr, len: g.len });
        }
        // Collect function names.
        for f in &ast.funcs {
            if self.funcs.contains(&f.name) {
                return Err(self.sema(f.line, format!("duplicate function `{}`", f.name)));
            }
            self.funcs.push(f.name.clone());
        }
        let main_idx = ast
            .funcs
            .iter()
            .position(|f| f.name == "main")
            .ok_or_else(|| self.sema(1, "program has no `main` function"))?;

        let mut b = ProgramBuilder::new();
        // main first so entry resolution picks it up.
        self.gen_func(&ast.funcs[main_idx], &mut b)?;
        for (i, f) in ast.funcs.iter().enumerate() {
            if i != main_idx {
                self.gen_func(f, &mut b)?;
            }
        }
        b.build().map_err(|e| LangError::Sema {
            line: 0,
            msg: format!("assembly failed: {e}"),
        })
    }

    fn gen_func(&mut self, f: &FuncDecl, b: &mut ProgramBuilder) -> Result<(), LangError> {
        self.locals.clear();
        self.next_local = 1;
        self.next_temp = (NUM_REGS - 1) as u8;
        self.in_numa = false;
        self.in_main = f.name == "main";

        b.label(f.name.clone());
        let end_label = self.fresh(&format!("{}_end", f.name));
        for s in &f.body {
            self.gen_stmt(s, b, &end_label)?;
        }
        b.label(end_label);
        if self.in_main {
            b.halt();
        } else {
            b.ret();
        }
        Ok(())
    }

    // ---- register management ----

    fn alloc_local(&mut self, name: &str, line: usize) -> Result<Reg, LangError> {
        if let Some(&reg) = self.locals.get(name) {
            return Ok(reg); // redeclaration reuses the slot (flat scope)
        }
        if self.next_local >= self.next_temp {
            return Err(LangError::TooComplex {
                line,
                msg: format!("too many locals (register budget {})", NUM_REGS - 1),
            });
        }
        let reg = r(self.next_local);
        self.next_local += 1;
        self.locals.insert(name.to_string(), reg);
        Ok(reg)
    }

    fn alloc_temp(&mut self, line: usize) -> Result<Reg, LangError> {
        if self.next_temp < self.next_local {
            return Err(LangError::TooComplex {
                line,
                msg: "expression too deep for the register file".into(),
            });
        }
        let reg = r(self.next_temp);
        self.next_temp -= 1;
        Ok(reg)
    }

    fn free_temp(&mut self, reg: Reg) {
        // Temps are freed strictly LIFO; locals are never freed.
        if reg.index() as u8 == self.next_temp + 1 {
            self.next_temp += 1;
        }
    }

    fn is_temp(&self, reg: Reg) -> bool {
        reg.index() as u8 > self.next_temp
            && reg.index() < NUM_REGS
            && !self.locals.values().any(|&l| l == reg)
    }

    // ---- expressions ----

    /// Generates `e`, returning the register holding the result. Local
    /// variables are returned in place (callers must not clobber them);
    /// everything else lands in a temp the caller should `free_value`.
    fn gen_expr(
        &mut self,
        e: &Expr,
        b: &mut ProgramBuilder,
        line: usize,
    ) -> Result<Reg, LangError> {
        match e {
            Expr::Int(v) => {
                let t = self.alloc_temp(line)?;
                b.ldi(t, *v);
                Ok(t)
            }
            Expr::Var(name) => {
                if let Some(&reg) = self.locals.get(name) {
                    return Ok(reg);
                }
                if let Some(g) = self.globals.get(name) {
                    if g.len != 1 {
                        return Err(
                            self.sema(line, format!("array `{name}` used without an index"))
                        );
                    }
                    let addr = g.addr;
                    let t = self.alloc_temp(line)?;
                    b.ld(t, Reg::ZERO, addr as Word);
                    return Ok(t);
                }
                Err(self.sema(line, format!("unknown variable `{name}`")))
            }
            Expr::Builtin(bi) => {
                let t = self.alloc_temp(line)?;
                b.mfs(t, builtin_special(*bi));
                Ok(t)
            }
            Expr::Load { name, index } => {
                let g = self
                    .globals
                    .get(name)
                    .ok_or_else(|| self.sema(line, format!("unknown shared `{name}`")))?;
                let addr = g.addr;
                match index {
                    None => {
                        let t = self.alloc_temp(line)?;
                        b.ld(t, Reg::ZERO, addr as Word);
                        Ok(t)
                    }
                    Some(idx) => {
                        let ti = self.gen_expr(idx, b, line)?;
                        let t = self.result_reg(ti, line)?;
                        b.ld(t, ti, addr as Word);
                        if t != ti {
                            self.free_if_temp(ti);
                        }
                        Ok(t)
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => self.gen_bin(*op, lhs, rhs, b, line),
            Expr::Neg(inner) => {
                let ti = self.gen_expr(inner, b, line)?;
                let t = self.result_reg(ti, line)?;
                b.alu(AluOp::Neg, t, ti, Reg::ZERO);
                if t != ti {
                    self.free_if_temp(ti);
                }
                Ok(t)
            }
            Expr::Not(inner) => {
                let ti = self.gen_expr(inner, b, line)?;
                let t = self.result_reg(ti, line)?;
                b.alu(AluOp::Seq, t, ti, 0_i64);
                if t != ti {
                    self.free_if_temp(ti);
                }
                Ok(t)
            }
            Expr::Prefix {
                name,
                index,
                kind,
                value,
            } => {
                let g = self
                    .globals
                    .get(name)
                    .ok_or_else(|| self.sema(line, format!("unknown shared `{name}`")))?;
                let addr = g.addr;
                let tv = self.gen_expr(value, b, line)?;
                match index {
                    None => {
                        let t = self.result_reg(tv, line)?;
                        b.multiprefix(*kind, t, Reg::ZERO, addr as Word, tv);
                        if t != tv {
                            self.free_if_temp(tv);
                        }
                        Ok(t)
                    }
                    Some(idx) => {
                        let ti = self.gen_expr(idx, b, line)?;
                        let t = self.result_reg(tv, line)?;
                        b.multiprefix(*kind, t, ti, addr as Word, tv);
                        self.free_if_temp(ti);
                        if t != tv {
                            self.free_if_temp(tv);
                        }
                        Ok(t)
                    }
                }
            }
        }
    }

    /// Picks the destination for an operation consuming `src`: reuse the
    /// temp, or allocate one when `src` is a local.
    fn result_reg(&mut self, src: Reg, line: usize) -> Result<Reg, LangError> {
        if self.is_temp(src) {
            Ok(src)
        } else {
            self.alloc_temp(line)
        }
    }

    fn free_if_temp(&mut self, reg: Reg) {
        if self.is_temp(reg) {
            self.free_temp(reg);
        }
    }

    fn gen_bin(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        b: &mut ProgramBuilder,
        line: usize,
    ) -> Result<Reg, LangError> {
        let tl = self.gen_expr(lhs, b, line)?;
        let tr = self.gen_expr(rhs, b, line)?;
        let dst = if self.is_temp(tl) {
            tl
        } else if self.is_temp(tr) {
            tr
        } else {
            self.alloc_temp(line)?
        };
        match op {
            BinOp::LAnd => {
                // Booleanize both then AND: eager, branch-free.
                let tb = self.alloc_temp(line)?;
                b.alu(AluOp::Sne, tb, tl, 0_i64);
                b.alu(AluOp::Sne, dst, tr, 0_i64);
                b.alu(AluOp::And, dst, dst, tb);
                self.free_temp(tb);
            }
            BinOp::LOr => {
                b.alu(AluOp::Or, dst, tl, tr);
                b.alu(AluOp::Sne, dst, dst, 0_i64);
            }
            _ => {
                b.alu(bin_alu(op), dst, tl, tr);
            }
        }
        // Free the consumed temps (LIFO: tr first).
        if tr != dst {
            self.free_if_temp(tr);
        }
        if tl != dst {
            self.free_if_temp(tl);
        }
        Ok(dst)
    }

    // ---- statements ----

    fn gen_stmt(
        &mut self,
        s: &Stmt,
        b: &mut ProgramBuilder,
        end_label: &str,
    ) -> Result<(), LangError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(body) => {
                for s in body {
                    self.gen_stmt(s, b, end_label)?;
                }
                Ok(())
            }
            Stmt::Local { name, init, line } => {
                let reg = self.alloc_local(name, *line)?;
                if let Some(e) = init {
                    let t = self.gen_expr(e, b, *line)?;
                    b.alu(AluOp::Mov, reg, t, Reg::ZERO);
                    self.free_if_temp(t);
                }
                Ok(())
            }
            Stmt::Assign { name, value, line } => {
                if let Some(&reg) = self.locals.get(name) {
                    let t = self.gen_expr(value, b, *line)?;
                    b.alu(AluOp::Mov, reg, t, Reg::ZERO);
                    self.free_if_temp(t);
                    return Ok(());
                }
                if let Some(g) = self.globals.get(name) {
                    if g.len != 1 {
                        return Err(
                            self.sema(*line, format!("array `{name}` assigned without an index"))
                        );
                    }
                    let addr = g.addr;
                    let t = self.gen_expr(value, b, *line)?;
                    b.st(t, Reg::ZERO, addr as Word);
                    self.free_if_temp(t);
                    return Ok(());
                }
                Err(self.sema(*line, format!("unknown variable `{name}`")))
            }
            Stmt::Store {
                name,
                index,
                value,
                line,
            } => {
                let addr = self
                    .globals
                    .get(name)
                    .ok_or_else(|| self.sema(*line, format!("unknown shared `{name}`")))?
                    .addr;
                let tv = self.gen_expr(value, b, *line)?;
                match index {
                    None => {
                        b.st(tv, Reg::ZERO, addr as Word);
                    }
                    Some(idx) => {
                        let ti = self.gen_expr(idx, b, *line)?;
                        b.st(tv, ti, addr as Word);
                        self.free_if_temp(ti);
                    }
                }
                self.free_if_temp(tv);
                Ok(())
            }
            Stmt::SetThickness { value, line } => {
                if self.in_numa {
                    b.endnuma();
                    self.in_numa = false;
                }
                let t = self.gen_expr(value, b, *line)?;
                b.setthick(t);
                self.free_if_temp(t);
                Ok(())
            }
            Stmt::SetNuma { slots, line } => {
                let t = self.gen_expr(slots, b, *line)?;
                b.numa(t);
                self.free_if_temp(t);
                self.in_numa = true;
                Ok(())
            }
            Stmt::ScopedThickness { value, body, line } => {
                let saved = self.alloc_temp(*line)?;
                b.mfs(saved, SpecialReg::Thickness);
                let t = self.gen_expr(value, b, *line)?;
                b.setthick(t);
                self.free_if_temp(t);
                self.gen_stmt(body, b, end_label)?;
                b.setthick(saved);
                self.free_temp(saved);
                Ok(())
            }
            Stmt::NumaBlock { slots, body, line } => {
                let t = self.gen_expr(slots, b, *line)?;
                b.numa(t);
                self.free_if_temp(t);
                self.gen_stmt(body, b, end_label)?;
                b.endnuma();
                Ok(())
            }
            Stmt::Parallel { arms, line } => {
                let after = self.fresh("par_after");
                let mut thicks = Vec::new();
                for arm in arms {
                    let t = self.gen_expr(&arm.thickness, b, *line)?;
                    thicks.push(t);
                }
                let labels: Vec<String> = (0..arms.len()).map(|_| self.fresh("par_arm")).collect();
                b.split(
                    thicks
                        .iter()
                        .zip(&labels)
                        .map(|(&t, l)| (Operand::Reg(t), l.clone()))
                        .collect(),
                );
                for &t in thicks.iter().rev() {
                    self.free_if_temp(t);
                }
                b.jmp(after.clone());
                for (arm, label) in arms.iter().zip(&labels) {
                    b.label(label.clone());
                    self.gen_stmt(&arm.body, b, end_label)?;
                    b.join();
                }
                b.label(after);
                Ok(())
            }
            Stmt::Fork {
                var,
                start,
                bound,
                body,
                line,
            } => {
                let after = self.fresh("fork_after");
                let body_label = self.fresh("fork_body");
                let t_start = self.gen_expr(start, b, *line)?;
                // Keep the start value in a stable register the children
                // inherit; a local-like temp is fine since children copy
                // registers at spawn.
                let t_bound = self.gen_expr(bound, b, *line)?;
                let t_count = self.result_reg(t_bound, *line)?;
                b.alu(AluOp::Sub, t_count, t_bound, t_start);
                b.spawn(t_count, body_label.clone());
                if t_count != t_bound {
                    self.free_if_temp(t_bound);
                }
                self.free_if_temp(t_count);
                b.jmp(after.clone());
                b.label(body_label);
                let var_reg = self.alloc_local(var, *line)?;
                b.mfs(var_reg, SpecialReg::Tid);
                b.alu(AluOp::Add, var_reg, var_reg, t_start);
                self.gen_stmt(body, b, end_label)?;
                b.sjoin();
                self.free_if_temp(t_start);
                b.label(after);
                Ok(())
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                line,
            } => {
                if self.opts.masked_conditionals {
                    if let Some(()) =
                        self.try_masked_if(cond, then_s, else_s.as_deref(), b, *line)?
                    {
                        return Ok(());
                    }
                }
                let t = self.gen_expr(cond, b, *line)?;
                let else_l = self.fresh("else");
                let end_l = self.fresh("endif");
                b.beqz(t, else_l.clone());
                self.free_if_temp(t);
                self.gen_stmt(then_s, b, end_label)?;
                b.jmp(end_l.clone());
                b.label(else_l);
                if let Some(e) = else_s {
                    self.gen_stmt(e, b, end_label)?;
                }
                b.label(end_l);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let loop_l = self.fresh("while");
                let end_l = self.fresh("endwhile");
                b.label(loop_l.clone());
                let t = self.gen_expr(cond, b, *line)?;
                b.beqz(t, end_l.clone());
                self.free_if_temp(t);
                self.gen_stmt(body, b, end_label)?;
                b.jmp(loop_l);
                b.label(end_l);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    self.gen_stmt(i, b, end_label)?;
                }
                let loop_l = self.fresh("for");
                let end_l = self.fresh("endfor");
                b.label(loop_l.clone());
                if let Some(c) = cond {
                    let t = self.gen_expr(c, b, *line)?;
                    b.beqz(t, end_l.clone());
                    self.free_if_temp(t);
                }
                self.gen_stmt(body, b, end_label)?;
                if let Some(s) = step {
                    self.gen_stmt(s, b, end_label)?;
                }
                b.jmp(loop_l);
                b.label(end_l);
                Ok(())
            }
            Stmt::Multi {
                name,
                index,
                kind,
                value,
                line,
            } => {
                let addr = self
                    .globals
                    .get(name)
                    .ok_or_else(|| self.sema(*line, format!("unknown shared `{name}`")))?
                    .addr;
                let tv = self.gen_expr(value, b, *line)?;
                match index {
                    None => {
                        b.multiop(*kind, Reg::ZERO, addr as Word, tv);
                    }
                    Some(idx) => {
                        let ti = self.gen_expr(idx, b, *line)?;
                        b.multiop(*kind, ti, addr as Word, tv);
                        self.free_if_temp(ti);
                    }
                }
                self.free_if_temp(tv);
                Ok(())
            }
            Stmt::Call { name, line } => {
                if !self.funcs.contains(name) {
                    return Err(self.sema(*line, format!("unknown function `{name}`")));
                }
                if name == "main" {
                    return Err(self.sema(*line, "calling `main` is not allowed"));
                }
                b.call(name.clone());
                Ok(())
            }
            Stmt::Sync { .. } => {
                b.sync();
                Ok(())
            }
            Stmt::Return { .. } => {
                b.jmp(end_label.to_string());
                Ok(())
            }
        }
    }

    /// Masked-conditional codegen: succeeds (Some) when both branches
    /// contain only shared stores, emitting `stm` per store with the
    /// condition / inverted condition.
    fn try_masked_if(
        &mut self,
        cond: &Expr,
        then_s: &Stmt,
        else_s: Option<&Stmt>,
        b: &mut ProgramBuilder,
        line: usize,
    ) -> Result<Option<()>, LangError> {
        fn stores_only<'a>(s: &'a Stmt, out: &mut Vec<&'a Stmt>) -> bool {
            match s {
                Stmt::Store { .. } => {
                    out.push(s);
                    true
                }
                Stmt::Block(body) => body.iter().all(|s| stores_only(s, out)),
                Stmt::Empty => true,
                _ => false,
            }
        }
        let mut then_stores = Vec::new();
        let mut else_stores = Vec::new();
        if !stores_only(then_s, &mut then_stores) {
            return Ok(None);
        }
        if let Some(e) = else_s {
            if !stores_only(e, &mut else_stores) {
                return Ok(None);
            }
        }

        let t_cond = self.gen_expr(cond, b, line)?;
        let emit = |cg: &mut Codegen,
                    b: &mut ProgramBuilder,
                    mask: Reg,
                    stores: &[&Stmt]|
         -> Result<(), LangError> {
            for s in stores {
                if let Stmt::Store {
                    name,
                    index,
                    value,
                    line,
                } = s
                {
                    let addr = cg
                        .globals
                        .get(name)
                        .ok_or_else(|| cg.sema(*line, format!("unknown shared `{name}`")))?
                        .addr;
                    let tv = cg.gen_expr(value, b, *line)?;
                    match index {
                        None => {
                            b.stm(mask, tv, Reg::ZERO, addr as Word);
                        }
                        Some(idx) => {
                            let ti = cg.gen_expr(idx, b, *line)?;
                            b.stm(mask, tv, ti, addr as Word);
                            cg.free_if_temp(ti);
                        }
                    }
                    cg.free_if_temp(tv);
                }
            }
            Ok(())
        };
        emit(self, b, t_cond, &then_stores)?;
        if !else_stores.is_empty() {
            let t_inv = self.alloc_temp(line)?;
            b.alu(AluOp::Seq, t_inv, t_cond, 0_i64);
            emit(self, b, t_inv, &else_stores)?;
            self.free_temp(t_inv);
        }
        self.free_if_temp(t_cond);
        Ok(Some(()))
    }
}

fn builtin_special(b: Builtin) -> SpecialReg {
    match b {
        Builtin::Tid => SpecialReg::Tid,
        Builtin::Thickness => SpecialReg::Thickness,
        Builtin::Fid => SpecialReg::Fid,
        Builtin::Pid => SpecialReg::Pid,
        Builtin::NProcs => SpecialReg::NProcs,
        Builtin::NThreads => SpecialReg::NThreads,
        Builtin::Gid => SpecialReg::Gid,
    }
}

fn bin_alu(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Mod => AluOp::Mod,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::Lt => AluOp::Slt,
        BinOp::Le => AluOp::Sle,
        BinOp::Gt => AluOp::Sgt,
        BinOp::Ge => AluOp::Sge,
        BinOp::Eq => AluOp::Seq,
        BinOp::Ne => AluOp::Sne,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::LAnd | BinOp::LOr => unreachable!("handled in gen_bin"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_flagship_example() {
        let p = compile(
            "shared int a[256] @ 1000;
             shared int b[256] @ 2000;
             shared int c[256] @ 3000;
             void main() {
                 #256;
                 c[.] = a[.] + b[.];
             }",
        )
        .unwrap();
        let listing = p.listing();
        assert!(listing.contains("setthick"));
        assert!(listing.contains("mfs"));
        assert!(!listing.contains("jmp @for"), "no loop should be emitted");
    }

    #[test]
    fn auto_placement_is_sequential() {
        let p = compile(
            "shared int x;
             shared int y[10];
             shared int z;
             void main() { x = 1; y[0] = 2; z = 3; }",
        )
        .unwrap();
        let l = p.listing();
        // x at 4096, y at 4097..4106, z at 4107.
        assert!(l.contains("+4096]"));
        assert!(l.contains("+4097]"));
        assert!(l.contains("+4107]"));
    }

    #[test]
    fn unknown_variable_reports_sema() {
        let e = compile("void main() { x = 1; }").unwrap_err();
        assert!(matches!(e, LangError::Sema { .. }));
        assert!(e.to_string().contains("unknown variable"));
    }

    #[test]
    fn missing_main_rejected() {
        let e = compile("void helper() { }").unwrap_err();
        assert!(e.to_string().contains("no `main`"));
    }

    #[test]
    fn functions_get_ret_main_gets_halt() {
        let p = compile(
            "void helper() { int x = 1; }
             void main() { helper(); }",
        )
        .unwrap();
        let l = p.listing();
        assert!(l.contains("call helper"));
        assert!(l.contains("ret"));
        assert!(l.contains("halt"));
        assert_eq!(p.entry, p.label("main").unwrap());
    }

    #[test]
    fn masked_conditionals_emit_stm() {
        let src = "shared int c[16] @ 500;
             void main() {
                 int sel = . < 8;
                 if (sel) c[.] = 7; else c[.] = 9;
             }";
        let plain = compile(src).unwrap();
        assert!(plain.listing().contains("beqz"));
        let masked = compile_with(
            src,
            CompileOptions {
                masked_conditionals: true,
                ..Default::default()
            },
        )
        .unwrap();
        let l = masked.listing();
        assert!(l.contains("stm"), "{l}");
        assert!(!l.contains("beqz"), "{l}");
    }

    #[test]
    fn parallel_compiles_to_split() {
        let p = compile(
            "shared int c[8] @ 100;
             void main() {
                 parallel {
                     #4: c[.] = 1;
                     #4: c[. + 4] = 2;
                 }
             }",
        )
        .unwrap();
        let l = p.listing();
        assert!(l.contains("split"));
        assert_eq!(l.matches("join").count(), 2);
    }

    #[test]
    fn fork_compiles_to_spawn() {
        let p = compile(
            "shared int c[8] @ 100;
             void main() {
                 fork (i = 2; i < 8) c[i] = i;
             }",
        )
        .unwrap();
        let l = p.listing();
        assert!(l.contains("spawn"));
        assert!(l.contains("sjoin"));
    }

    #[test]
    fn numa_block_wraps_body() {
        let p = compile("void main() { numa (4) { int x = 1; } }").unwrap();
        let l = p.listing();
        assert!(l.contains("numa"));
        assert!(l.contains("endnuma"));
    }

    #[test]
    fn thickness_after_numa_statement_exits_numa() {
        let p = compile(
            "void main() {
                 #1/4;
                 int x = 1;
                 #16;
             }",
        )
        .unwrap();
        let l = p.listing();
        let numa_pos = l.find("numa").unwrap();
        let endnuma_pos = l.find("endnuma").unwrap();
        let setthick_pos = l.find("setthick").unwrap();
        assert!(numa_pos < endnuma_pos);
        assert!(endnuma_pos < setthick_pos);
    }
}
