//! Tokenizer for tce source.

use crate::error::LangError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `.` (the tid builtin in expression position).
    Dot,
    /// `#`
    Hash,
    /// `@`
    At,
    /// Punctuation and operators, by their exact spelling.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "{",
    "}", "[", "]", ";", ",", ":",
];

/// Tokenizes tce source.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LangError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;

    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // to end of line, /* ... */ nested-free.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                return Err(LangError::Lex {
                    line,
                    msg: "unterminated block comment".into(),
                });
            }
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let text = &src[start..i];
            let v = text.parse::<i64>().map_err(|_| LangError::Lex {
                line,
                msg: format!("integer literal `{text}` out of range"),
            })?;
            out.push(SpannedTok {
                tok: Tok::Int(v),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        match c {
            '.' => {
                out.push(SpannedTok {
                    tok: Tok::Dot,
                    line,
                });
                i += 1;
                continue;
            }
            '#' => {
                out.push(SpannedTok {
                    tok: Tok::Hash,
                    line,
                });
                i += 1;
                continue;
            }
            '@' => {
                out.push(SpannedTok { tok: Tok::At, line });
                i += 1;
                continue;
            }
            _ => {}
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LangError::Lex {
            line,
            msg: format!("unexpected character `{c}`"),
        });
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x = 42;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multichar_operators_win() {
        assert_eq!(
            toks("a <= b << 2 != c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Int(2),
                Tok::Punct("!="),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn thickness_and_dot() {
        assert_eq!(
            toks("#256; c[.] = 0;"),
            vec![
                Tok::Hash,
                Tok::Int(256),
                Tok::Punct(";"),
                Tok::Ident("c".into()),
                Tok::Punct("["),
                Tok::Dot,
                Tok::Punct("]"),
                Tok::Punct("="),
                Tok::Int(0),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_tracked() {
        let ts = lex("// line one\nx /* multi\nline */ = 1;\n").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("x".into()));
        assert_eq!(ts[0].line, 2);
        assert_eq!(ts[1].tok, Tok::Punct("="));
        assert_eq!(ts[1].line, 3);
    }

    #[test]
    fn errors_carry_line() {
        let e = lex("x\n$\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = lex("/* oops").unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }
}
