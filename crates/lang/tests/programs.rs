//! End-to-end tests: tce source → compiled program → executed on the
//! extended PRAM-NUMA machine, reproducing the §4 programming examples.

use tcf_core::{TcfMachine, Variant};
use tcf_isa::word::Word;
use tcf_lang::{compile, compile_with, CompileOptions};
use tcf_machine::MachineConfig;

fn run(variant: Variant, src: &str) -> TcfMachine {
    run_with(variant, src, |_| {})
}

fn run_with(variant: Variant, src: &str, init: impl FnOnce(&mut TcfMachine)) -> TcfMachine {
    let program = compile(src).unwrap();
    let mut m = TcfMachine::new(MachineConfig::small(), variant, program);
    init(&mut m);
    m.run(50_000).unwrap();
    m
}

#[test]
fn flagship_thick_vector_add() {
    // Paper §4: `#size;  c = a + b;` with no loop, no guard, no thread
    // arithmetic.
    let m = run_with(
        Variant::SingleInstruction,
        "shared int a[256] @ 1000;
         shared int b[256] @ 2000;
         shared int c[256] @ 3000;
         void main() {
             #256;
             c[.] = a[.] + b[.];
         }",
        |m| {
            for i in 0..256 {
                m.poke(1000 + i, i as Word).unwrap();
                m.poke(2000 + i, 3 * i as Word).unwrap();
            }
        },
    );
    for i in 0..256 {
        assert_eq!(m.peek(3000 + i).unwrap(), 4 * i as Word);
    }
}

#[test]
fn thread_loop_version_on_single_operation() {
    // Paper §4: the PRAM-NUMA / Single-operation version needs the loop
    // and the thread arithmetic.
    let m = run_with(
        Variant::SingleOperation,
        "shared int a[256] @ 1000;
         shared int b[256] @ 2000;
         shared int c[256] @ 3000;
         void main() {
             int total = nprocs * nthreads;
             int i = gid;
             while (i < 256) {
                 c[i] = a[i] + b[i];
                 i = i + total;
             }
         }",
        |m| {
            for i in 0..256 {
                m.poke(1000 + i, 10 + i as Word).unwrap();
                m.poke(2000 + i, i as Word).unwrap();
            }
        },
    );
    for i in 0..256 {
        assert_eq!(m.peek(3000 + i).unwrap(), 10 + 2 * i as Word);
    }
}

#[test]
fn one_way_conditional_as_scoped_thickness() {
    // `if (thread_id < size/2) c[t]=a[t]+b[t]` becomes `#size/2: c.=a.+b.;`
    let m = run_with(
        Variant::SingleInstruction,
        "shared int a[16] @ 100;
         shared int c[16] @ 200;
         void main() {
             #16;
             c[.] = 1;
             #8: c[.] = a[.] + 5;
         }",
        |m| {
            for i in 0..16 {
                m.poke(100 + i, i as Word).unwrap();
            }
        },
    );
    for i in 0..8 {
        assert_eq!(m.peek(200 + i).unwrap(), i as Word + 5);
    }
    for i in 8..16 {
        assert_eq!(m.peek(200 + i).unwrap(), 1);
    }
}

#[test]
fn two_way_conditional_as_parallel() {
    // Paper §4: the two-way conditional becomes `parallel { #n/2: ...;
    // #n/2: ...; }` creating two TCFs for the duration of the construct.
    let m = run_with(
        Variant::SingleInstruction,
        "shared int a[16] @ 100;
         shared int b[16] @ 150;
         shared int c[16] @ 200;
         void main() {
             parallel {
                 #8: c[.] = a[.] + b[.];
                 #8: c[. + 8] = 0 - 1;
             }
         }",
        |m| {
            for i in 0..16 {
                m.poke(100 + i, 2 * i as Word).unwrap();
                m.poke(150 + i, i as Word).unwrap();
            }
        },
    );
    for i in 0..8 {
        assert_eq!(m.peek(200 + i).unwrap(), 3 * i as Word);
    }
    for i in 8..16 {
        assert_eq!(m.peek(200 + i).unwrap(), -1);
    }
}

#[test]
fn multiprefix_without_looping() {
    // Paper §4: `prefix(source, MPADD, &sum, source)` without the loop.
    let m = run(
        Variant::SingleInstruction,
        "shared int sum @ 50;
         shared int out[64] @ 300;
         void main() {
             #64;
             out[.] = prefix(sum, MPADD, . + 1);
         }",
    );
    // sum = 1 + 2 + ... + 64.
    assert_eq!(m.peek(50).unwrap(), 65 * 32);
    // Thread t's prefix = sum of (1..=t).
    for t in 0..64i64 {
        assert_eq!(m.peek(300 + t as usize).unwrap(), t * (t + 1) / 2);
    }
}

#[test]
fn dependent_loop_scan() {
    // Paper §4's dependent loop: log-step Hillis–Steele scan. Lockstep
    // PRAM semantics make the unguarded TCF version correct.
    let m = run_with(
        Variant::SingleInstruction,
        "shared int src[64] @ 1000;
         void main() {
             int size = 64;
             int i = 1;
             while (i < size) {
                 #size - i: src[. + i] = src[. + i] + src[.];
                 i = i << 1;
             }
         }",
        |m| {
            for j in 0..64 {
                m.poke(1000 + j, 1).unwrap();
            }
        },
    );
    for j in 0..64 {
        assert_eq!(m.peek(1000 + j).unwrap(), j as Word + 1, "scan[{j}]");
    }
}

#[test]
fn dependent_loop_scan_balanced_variant() {
    let program = compile(
        "shared int src[64] @ 1000;
         void main() {
             int size = 64;
             int i = 1;
             while (i < size) {
                 #size - i: src[. + i] = src[. + i] + src[.];
                 i = i << 1;
             }
         }",
    )
    .unwrap();
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::Balanced { bound: 4 },
        program,
    );
    for j in 0..64 {
        m.poke(1000 + j, 1).unwrap();
    }
    m.run(50_000).unwrap();
    for j in 0..64 {
        assert_eq!(m.peek(1000 + j).unwrap(), j as Word + 1);
    }
}

#[test]
fn fork_on_multi_instruction() {
    // Paper §4: the Multi-instruction variant expresses parallelism with
    // `fork` instead of thickness.
    let m = run(
        Variant::MultiInstruction,
        "shared int c[16] @ 400;
         shared int total @ 450;
         void main() {
             fork (i = 0; i < 16) {
                 c[i] = i * i;
                 multi(total, MPADD, i);
             }
         }",
    );
    for i in 0..16i64 {
        assert_eq!(m.peek(400 + i as usize).unwrap(), i * i);
    }
    assert_eq!(m.peek(450).unwrap(), 120);
}

#[test]
fn fork_with_start_offset() {
    let m = run(
        Variant::MultiInstruction,
        "shared int c[16] @ 400;
         void main() {
             fork (i = 4; i < 12) c[i] = i + 100;
         }",
    );
    for i in 0..16i64 {
        let expect = if (4..12).contains(&i) { i + 100 } else { 0 };
        assert_eq!(m.peek(400 + i as usize).unwrap(), expect);
    }
}

#[test]
fn numa_block_for_sequential_section() {
    let m = run(
        Variant::SingleInstruction,
        "shared int acc @ 70;
         void main() {
             numa (8) {
                 int i = 0;
                 while (i < 100) {
                     i = i + 1;
                 }
                 acc = i;
             }
         }",
    );
    assert_eq!(m.peek(70).unwrap(), 100);
}

#[test]
fn flow_wise_function_calls() {
    // A flow of thickness 32 calls `store_squares` once (flow-wise call
    // semantics — the paper's claimed-novel method call behaviour).
    let m = run(
        Variant::SingleInstruction,
        "shared int c[32] @ 600;
         shared int calls @ 660;
         void store_squares() {
             c[.] = . * .;
             multi(calls, MPADD, 1);
         }
         void main() {
             #32;
             store_squares();
         }",
    );
    for i in 0..32i64 {
        assert_eq!(m.peek(600 + i as usize).unwrap(), i * i);
    }
    // 32 contributions: one call, thickness-many multiop participants.
    assert_eq!(m.peek(660).unwrap(), 32);
}

#[test]
fn masked_conditionals_on_fixed_thickness() {
    // The SIMD variant cannot branch per-thread; the compiler's masked
    // mode turns the two-way conditional into two masked passes.
    let src = "shared int c[16] @ 500;
         void main() {
             int sel = . < 8;
             if (sel) { c[.] = 7; } else { c[.] = 9; }
         }";
    let program = compile_with(
        src,
        CompileOptions {
            masked_conditionals: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut m = TcfMachine::new(
        MachineConfig::small(),
        Variant::FixedThickness { width: 16 },
        program,
    );
    m.run(1000).unwrap();
    for i in 0..8 {
        assert_eq!(m.peek(500 + i).unwrap(), 7);
        assert_eq!(m.peek(508 + i).unwrap(), 9);
    }
}

#[test]
fn divergent_branch_rejected_at_runtime_without_masking() {
    // The same program WITHOUT masked compilation faults on the TCF
    // machine: the whole flow must take one path.
    let src = "shared int c[16] @ 500;
         void main() {
             #16;
             int sel = . < 8;
             if (sel) { c[.] = 7; } else { c[.] = 9; }
         }";
    let program = compile(src).unwrap();
    let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
    let e = m.run(1000).unwrap_err();
    assert!(matches!(
        e.fault,
        tcf_core::TcfFault::DivergentBranch { .. }
    ));
}

#[test]
fn for_loops_and_nested_functions() {
    let m = run(
        Variant::SingleInstruction,
        "shared int table[10] @ 800;
         void fill() {
             int k;
             for (k = 0; k < 10; k = k + 1) {
                 table[k] = k * 3;
             }
         }
         void main() {
             fill();
         }",
    );
    for k in 0..10i64 {
        assert_eq!(m.peek(800 + k as usize).unwrap(), 3 * k);
    }
}

#[test]
fn thickness_matches_problem_size_costs_constant_steps() {
    // The §4 claim quantified: the TCF version's step count is flat in
    // the data size, while the looping thread version's grows.
    let tcf_src = |n: usize| {
        format!(
            "shared int a[{n}] @ 1000;
             shared int c[{n}] @ 20000;
             void main() {{
                 #{n};
                 c[.] = a[.] + 1;
             }}"
        )
    };
    let m1 = {
        let p = compile(&tcf_src(64)).unwrap();
        let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, p);
        m.run(10_000).unwrap()
    };
    let m2 = {
        let p = compile(&tcf_src(4096)).unwrap();
        let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, p);
        m.run(10_000).unwrap()
    };
    assert_eq!(m1.steps, m2.steps, "TCF steps must not depend on size");
}

#[test]
fn compound_assignment_forms() {
    let m = run_with(
        Variant::SingleInstruction,
        "shared int src[32] @ 1000;
         shared int total @ 50;
         void main() {
             #32;
             src[.] += . * 2;       // indexed compound
             int x = 10;
             x <<= 2;               // local compound
             x -= 8;                // x = 32
             total = x;
             src[.] *= 3;
         }",
        |m| {
            for j in 0..32 {
                m.poke(1000 + j, 1).unwrap();
            }
        },
    );
    assert_eq!(m.peek(50).unwrap(), 32);
    for j in 0..32i64 {
        assert_eq!(m.peek(1000 + j as usize).unwrap(), 3 * (1 + 2 * j));
    }
}

#[test]
fn paper_product_scan_with_compound_assignment() {
    // The §4 dependent loop exactly as written in the paper:
    // `source[.+i] *= source[.];` per log-level.
    let m = run_with(
        Variant::SingleInstruction,
        "shared int src[16] @ 1000;
         void main() {
             int i = 1;
             while (i < 16) {
                 #16 - i: src[. + i] *= src[.];
                 i <<= 1;
             }
         }",
        |m| {
            for j in 0..16 {
                m.poke(1000 + j, 2).unwrap();
            }
        },
    );
    // Product scan over constant 2: src[j] = 2^(j+1).
    for j in 0..16 {
        assert_eq!(m.peek(1000 + j).unwrap(), 1 << (j + 1), "scan[{j}]");
    }
}

#[test]
fn compound_assignment_rejects_prefix_index() {
    let e = compile(
        "shared int a[8] @ 100;
         shared int s @ 50;
         void main() { a[prefix(s, MPADD, 1)] += 1; }",
    )
    .unwrap_err();
    assert!(e.to_string().contains("prefix"), "{e}");
}
