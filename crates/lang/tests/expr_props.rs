//! Property test: random constant expressions compiled and executed on
//! the machine must match a host-side reference evaluator implementing
//! the documented semantics (wrapping arithmetic, `x/0 = 0`, masked
//! shifts, 0/1 comparisons, eager booleanized `&&`/`||`).

use proptest::prelude::*;

use tcf_core::{TcfMachine, Variant};
use tcf_lang::compile;
use tcf_machine::MachineConfig;

#[derive(Debug, Clone)]
enum E {
    Int(i64),
    Bin(&'static str, Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
}

const OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "<<", ">>", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^", "&&",
    "||",
];

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i64..1000).prop_map(E::Int);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (prop::sample::select(OPS), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::Int(v) => {
            if *v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        E::Bin(op, a, b) => format!("({} {} {})", render(a), op, render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
        E::Not(a) => format!("(!{})", render(a)),
    }
}

fn eval(e: &E) -> i64 {
    match e {
        E::Int(v) => *v,
        E::Neg(a) => eval(a).wrapping_neg(),
        E::Not(a) => (eval(a) == 0) as i64,
        E::Bin(op, a, b) => {
            let (x, y) = (eval(a), eval(b));
            match *op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                "%" => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                "<<" => x.wrapping_shl((y as u64 & 63) as u32),
                ">>" => ((x as u64).wrapping_shr((y as u64 & 63) as u32)) as i64,
                "<" => (x < y) as i64,
                "<=" => (x <= y) as i64,
                ">" => (x > y) as i64,
                ">=" => (x >= y) as i64,
                "==" => (x == y) as i64,
                "!=" => (x != y) as i64,
                "&" => x & y,
                "|" => x | y,
                "^" => x ^ y,
                "&&" => ((x != 0) && (y != 0)) as i64,
                "||" => ((x | y) != 0) as i64,
                other => unreachable!("op {other}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compiled_expressions_match_reference(e in arb_expr()) {
        let src = format!(
            "shared int out @ 10;
             void main() {{ out = {}; }}",
            render(&e)
        );
        let program = compile(&src).unwrap_or_else(|err| panic!("compile failed: {err}\n{src}"));
        let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
        m.run(10_000).unwrap();
        prop_assert_eq!(m.peek(10).unwrap(), eval(&e), "source: {}", src);
    }

    /// The same expression assigned through a thick store must agree per
    /// thread with the reference evaluated with `.` substituted.
    #[test]
    fn thick_expressions_match_reference(base in -50i64..50, scale in -8i64..8) {
        let src = format!(
            "shared int out[16] @ 100;
             void main() {{
                 #16;
                 out[.] = (. * {scale}) + {b};
             }}",
            b = if base < 0 { format!("(0 - {})", -base) } else { base.to_string() },
            scale = if scale < 0 { format!("(0 - {})", -scale) } else { scale.to_string() },
        );
        let program = compile(&src).unwrap();
        let mut m = TcfMachine::new(MachineConfig::small(), Variant::SingleInstruction, program);
        m.run(10_000).unwrap();
        for t in 0..16i64 {
            prop_assert_eq!(m.peek(100 + t as usize).unwrap(), t * scale + base);
        }
    }
}
