//! Network traffic statistics.

use serde::{Deserialize, Serialize};
use tcf_obs::LatencyHistogram;

/// Aggregate statistics of a [`crate::Network`]'s lifetime (or since the
/// last reset).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages routed.
    pub messages: usize,
    /// Total hops traversed by all messages.
    pub hops: usize,
    /// Total cycles messages spent queued behind busy links (delivery time
    /// minus the contention-free lower bound).
    pub queue_cycles: u64,
    /// Worst single-message queueing delay observed.
    pub max_queue_cycles: u64,
    /// Messages delivered to the sender's own node (distance 0).
    pub local_deliveries: usize,
    /// Messages routed through a precomputed [`Route`] handle
    /// ([`Network::send_on`]) instead of per-hop topology arithmetic —
    /// the bulk-lane reuse the `net.route_sends` metric surfaces.
    ///
    /// [`Route`]: crate::Route
    /// [`Network::send_on`]: crate::Network::send_on
    pub route_sends: usize,
    /// Distribution of per-message queueing delays (routed messages only;
    /// local deliveries never queue).
    pub queue: LatencyHistogram,
}

impl NetStats {
    /// Mean hops per message; 0.0 when nothing was sent.
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.hops as f64 / self.messages as f64
        }
    }

    /// Mean queueing delay per message in cycles.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / self.messages as f64
        }
    }

    /// Median per-message queueing delay (log2-bucket resolution).
    pub fn p50_queue_cycles(&self) -> u64 {
        self.queue.p50()
    }

    /// 95th-percentile per-message queueing delay (log2-bucket
    /// resolution).
    pub fn p95_queue_cycles(&self) -> u64 {
        self.queue.p95()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_empty() {
        let s = NetStats::default();
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.mean_queue_cycles(), 0.0);
    }

    #[test]
    fn means_divide() {
        let s = NetStats {
            messages: 4,
            hops: 10,
            queue_cycles: 6,
            ..Default::default()
        };
        assert_eq!(s.mean_hops(), 2.5);
        assert_eq!(s.mean_queue_cycles(), 1.5);
    }

    #[test]
    fn percentiles_follow_the_histogram() {
        let mut s = NetStats::default();
        for _ in 0..19 {
            s.queue.record(0);
        }
        s.queue.record(12);
        assert_eq!(s.p50_queue_cycles(), 0);
        assert_eq!(s.p95_queue_cycles(), 0);
        assert_eq!(s.queue.percentile(1.0), 12);
    }
}
