//! Network topologies, distance metrics and deterministic routes.

use serde::{Deserialize, Serialize};

/// Physical layout of the machine's nodes.
///
/// A node hosts one processor group together with one shared-memory module
/// and the group's local memory block (the organisation of the paper's
/// Figures 2 and 5). Distances are expressed in *hops*; the model's
/// "latency proportional to distance" requirement follows from charging
/// [`crate::Network::hop_latency`] cycles per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A bidirectional ring of `nodes` nodes; distance is the shorter way
    /// around.
    Ring {
        /// Number of nodes.
        nodes: usize,
    },
    /// A `width × height` 2-D mesh with XY dimension-ordered routing;
    /// distance is the Manhattan metric.
    Mesh2D {
        /// Nodes per row.
        width: usize,
        /// Number of rows.
        height: usize,
    },
    /// An ideal crossbar: every pair of distinct nodes is one hop apart.
    /// Contention still arises on the destination port.
    Crossbar {
        /// Number of nodes.
        nodes: usize,
    },
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Ring { nodes } | Topology::Crossbar { nodes } => nodes,
            Topology::Mesh2D { width, height } => width * height,
        }
    }

    /// Hop distance between two nodes.
    pub fn distance(&self, from: usize, to: usize) -> usize {
        self.check(from);
        self.check(to);
        match *self {
            Topology::Ring { nodes } => {
                let d = from.abs_diff(to);
                d.min(nodes - d)
            }
            Topology::Mesh2D { width, .. } => {
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                fx.abs_diff(tx) + fy.abs_diff(ty)
            }
            Topology::Crossbar { .. } => usize::from(from != to),
        }
    }

    /// The maximum distance between any two nodes.
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Ring { nodes } => nodes / 2,
            Topology::Mesh2D { width, height } => (width - 1) + (height - 1),
            Topology::Crossbar { nodes } => usize::from(nodes > 1),
        }
    }

    /// The deterministic shortest route from `from` to `to` as the sequence
    /// of nodes *entered* (excluding `from`, including `to`). An empty
    /// route means `from == to`.
    ///
    /// Rings route the shorter way (ties broken towards increasing node
    /// numbers); meshes use XY dimension order — first along the row, then
    /// along the column — which is deadlock-free and matches common NoC
    /// practice.
    pub fn route(&self, from: usize, to: usize) -> Vec<usize> {
        self.check(from);
        self.check(to);
        let mut path = Vec::with_capacity(self.distance(from, to));
        match *self {
            Topology::Ring { nodes } => {
                let fwd = (to + nodes - from) % nodes;
                let bwd = (from + nodes - to) % nodes;
                let mut cur = from;
                if fwd <= bwd {
                    while cur != to {
                        cur = (cur + 1) % nodes;
                        path.push(cur);
                    }
                } else {
                    while cur != to {
                        cur = (cur + nodes - 1) % nodes;
                        path.push(cur);
                    }
                }
            }
            Topology::Mesh2D { width, .. } => {
                let (mut x, mut y) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                while x != tx {
                    x = if x < tx { x + 1 } else { x - 1 };
                    path.push(y * width + x);
                }
                while y != ty {
                    y = if y < ty { y + 1 } else { y - 1 };
                    path.push(y * width + x);
                }
            }
            Topology::Crossbar { .. } => {
                if from != to {
                    path.push(to);
                }
            }
        }
        path
    }

    /// The next node entered on the deterministic route from `from` to
    /// `to` (`from != to`). Stepping `next_hop` until reaching `to`
    /// produces exactly [`route`](Topology::route), one hop at a time and
    /// without materializing the path.
    #[inline]
    pub fn next_hop(&self, from: usize, to: usize) -> usize {
        debug_assert_ne!(from, to, "next_hop of a delivered message");
        match *self {
            Topology::Ring { nodes } => {
                let fwd = (to + nodes - from) % nodes;
                let bwd = (from + nodes - to) % nodes;
                if fwd <= bwd {
                    (from + 1) % nodes
                } else {
                    (from + nodes - 1) % nodes
                }
            }
            Topology::Mesh2D { width, .. } => {
                let (x, y) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                if x != tx {
                    let nx = if x < tx { x + 1 } else { x - 1 };
                    y * width + nx
                } else {
                    let ny = if y < ty { y + 1 } else { y - 1 };
                    ny * width + x
                }
            }
            Topology::Crossbar { .. } => to,
        }
    }

    /// Number of dense directed-link ids (see
    /// [`link_id`](Topology::link_id)). Some ids may be unused (mesh edge
    /// nodes have fewer than four neighbours); the table is sized for
    /// direct indexing, not for counting physical links.
    pub fn link_count(&self) -> usize {
        match *self {
            // Two directions per node: +1 and -1 around the ring.
            Topology::Ring { nodes } => 2 * nodes,
            // Four directions per node: east, west, south, north.
            Topology::Mesh2D { width, height } => 4 * width * height,
            // A dedicated point-to-point link per ordered pair.
            Topology::Crossbar { nodes } => nodes * nodes,
        }
    }

    /// Dense id of the directed link `from -> to`, where `to` is a
    /// one-hop neighbour of `from`. A pure function of the pair: every
    /// traversal of one physical link resolves to the same id, which is
    /// what lets the router keep per-link state in a flat vector instead
    /// of a hash map.
    #[inline]
    pub fn link_id(&self, from: usize, to: usize) -> usize {
        match *self {
            Topology::Ring { nodes } => {
                if to == (from + 1) % nodes {
                    2 * from
                } else {
                    debug_assert_eq!(to, (from + nodes - 1) % nodes, "not a ring link");
                    2 * from + 1
                }
            }
            Topology::Mesh2D { width, .. } => {
                let dir = if to == from + 1 {
                    0 // east
                } else if from > 0 && to == from - 1 {
                    1 // west
                } else if to == from + width {
                    2 // south
                } else {
                    debug_assert_eq!(to + width, from, "not a mesh link");
                    3 // north
                };
                4 * from + dir
            }
            Topology::Crossbar { nodes } => from * nodes + to,
        }
    }

    fn check(&self, node: usize) {
        assert!(
            node < self.nodes(),
            "node {node} out of range for {self:?} ({} nodes)",
            self.nodes()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring { nodes: 8 };
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.distance(0, 5), 3); // shorter backwards
        assert_eq!(t.distance(7, 0), 1);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 3,
        };
        assert_eq!(t.nodes(), 12);
        assert_eq!(t.distance(0, 11), 3 + 2);
        assert_eq!(t.distance(5, 6), 1);
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn crossbar_is_one_hop() {
        let t = Topology::Crossbar { nodes: 16 };
        assert_eq!(t.distance(3, 3), 0);
        assert_eq!(t.distance(3, 9), 1);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn routes_have_distance_length_and_end_at_target() {
        let topologies = [
            Topology::Ring { nodes: 9 },
            Topology::Mesh2D {
                width: 4,
                height: 4,
            },
            Topology::Crossbar { nodes: 6 },
        ];
        for t in topologies {
            for from in 0..t.nodes() {
                for to in 0..t.nodes() {
                    let route = t.route(from, to);
                    assert_eq!(route.len(), t.distance(from, to), "{t:?} {from}->{to}");
                    if from != to {
                        assert_eq!(*route.last().unwrap(), to);
                    } else {
                        assert!(route.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_routes_are_xy_ordered() {
        let t = Topology::Mesh2D {
            width: 4,
            height: 4,
        };
        // 0 -> 15: row first (1,2,3), then column (7,11,15).
        assert_eq!(t.route(0, 15), vec![1, 2, 3, 7, 11, 15]);
    }

    #[test]
    fn ring_route_steps_are_adjacent() {
        let t = Topology::Ring { nodes: 10 };
        let route = t.route(8, 2); // wraps through 9, 0, 1, 2
        assert_eq!(route, vec![9, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        Topology::Ring { nodes: 4 }.distance(0, 4);
    }

    #[test]
    fn next_hop_reproduces_route() {
        let topologies = [
            Topology::Ring { nodes: 2 },
            Topology::Ring { nodes: 9 },
            Topology::Mesh2D {
                width: 4,
                height: 3,
            },
            Topology::Crossbar { nodes: 6 },
        ];
        for t in topologies {
            for from in 0..t.nodes() {
                for to in 0..t.nodes() {
                    let mut stepped = Vec::new();
                    let mut cur = from;
                    while cur != to {
                        cur = t.next_hop(cur, to);
                        stepped.push(cur);
                    }
                    assert_eq!(stepped, t.route(from, to), "{t:?} {from}->{to}");
                }
            }
        }
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        let topologies = [
            Topology::Ring { nodes: 2 },
            Topology::Ring { nodes: 9 },
            Topology::Mesh2D {
                width: 4,
                height: 3,
            },
            Topology::Crossbar { nodes: 6 },
        ];
        for t in topologies {
            // Collect every directed link any route traverses.
            let mut ids = std::collections::HashMap::new();
            for from in 0..t.nodes() {
                for to in 0..t.nodes() {
                    let mut prev = from;
                    for next in t.route(from, to) {
                        let id = t.link_id(prev, next);
                        assert!(id < t.link_count(), "{t:?} id {id} out of range");
                        // Same pair, same id; different pair, different id.
                        if let Some(&(pf, pn)) = ids.get(&id) {
                            assert_eq!((pf, pn), (prev, next), "{t:?} id {id} collides");
                        }
                        ids.insert(id, (prev, next));
                        prev = next;
                    }
                }
            }
        }
    }
}
